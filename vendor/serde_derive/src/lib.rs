//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! the workspace vendors a simplified serde: `Serialize` converts a value
//! into `serde::value::Value` (a JSON-like tree) and `Deserialize` converts
//! back. These derives generate those impls for the shapes the workspace
//! actually uses: named-field structs, unit structs, tuple structs, and
//! enums whose variants are unit, tuple, or struct-like. Generic types and
//! `#[serde(...)]` attributes are intentionally unsupported.
//!
//! The parser walks the raw `TokenStream` by hand (no `syn`/`quote`,
//! which would themselves need the network) and emits the impl as a
//! string, which rustc re-parses.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Shape of one parsed item.
enum Item {
    /// `struct Name { a: T, b: U }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T, U);` — `arity` is the field count.
    TupleStruct { name: String, arity: usize },
    /// `struct Name;`
    UnitStruct { name: String },
    /// `enum Name { ... }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

/// Derives the vendored `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kw = ident_at(&toks, i).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_at(&toks, i).expect("expected item name");
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic types (derive on `{name}`)");
    }
    match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            _ => Item::UnitStruct { name },
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("malformed enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Advances past `#[...]` attributes, doc comments, and `pub`/`pub(...)`.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Field names of `{ a: T, b: U }`.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).expect("expected field name");
        i += 1;
        assert!(
            matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "expected `:` after field `{name}`"
        );
        i += 1;
        skip_type(&toks, &mut i);
        fields.push(name);
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a top-level `,`.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

/// Number of fields in a tuple-struct/tuple-variant body `(T, U, ...)`.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        skip_type(&toks, &mut i);
        n += 1;
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    n
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(&toks, i).expect("expected variant name");
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_top_level_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        while i < toks.len() && !matches!(&toks[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        if i < toks.len() {
            i += 1; // the comma
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from("let mut m = ::std::vec::Vec::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "m.push((\"{f}\".to_string(), ::serde::ser::Serialize::serialize(&self.{f})));\n"
                ));
            }
            body.push_str("::serde::value::Value::Map(m)");
            impl_ser(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => {
            impl_ser(name, "::serde::ser::Serialize::serialize(&self.0)")
        }
        Item::TupleStruct { name, arity } => {
            let mut body = String::from("let mut s = ::std::vec::Vec::new();\n");
            for k in 0..*arity {
                body.push_str(&format!(
                    "s.push(::serde::ser::Serialize::serialize(&self.{k}));\n"
                ));
            }
            body.push_str("::serde::value::Value::Seq(s)");
            impl_ser(name, &body)
        }
        Item::UnitStruct { name } => impl_ser(name, "::serde::value::Value::Null"),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::value::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), ::serde::ser::Serialize::serialize(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let pats: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let sers: Vec<String> = pats
                            .iter()
                            .map(|p| format!("::serde::ser::Serialize::serialize({p})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), ::serde::value::Value::Seq(vec![{}]))]),\n",
                            pats.join(", "),
                            sers.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pats = fields.join(", ");
                        let mut inner = String::from("{ let mut m = ::std::vec::Vec::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "m.push((\"{f}\".to_string(), ::serde::ser::Serialize::serialize({f})));\n"
                            ));
                        }
                        inner.push_str("::serde::value::Value::Map(m) }");
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pats} }} => ::serde::value::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),\n"
                        ));
                    }
                }
            }
            impl_ser(name, &format!("match self {{\n{arms}\n}}"))
        }
    }
}

fn impl_ser(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::ser::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::value::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = format!(
                "let m = v.as_map().ok_or_else(|| ::serde::de::Error::expected(\"map\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                body.push_str(&format!("{f}: ::serde::de::map_field(m, \"{f}\")?,\n"));
            }
            body.push_str("})");
            impl_de(name, &body)
        }
        Item::TupleStruct { name, arity: 1 } => impl_de(
            name,
            &format!(
                "::std::result::Result::Ok({name}(::serde::de::Deserialize::deserialize(v)?))"
            ),
        ),
        Item::TupleStruct { name, arity } => {
            let mut body = format!(
                "let s = v.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"seq\", \"{name}\"))?;\n\
                 if s.len() != {arity} {{ return ::std::result::Result::Err(::serde::de::Error::expected(\"{arity}-tuple\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}(\n"
            );
            for k in 0..*arity {
                body.push_str(&format!(
                    "::serde::de::Deserialize::deserialize(&s[{k}])?,\n"
                ));
            }
            body.push_str("))");
            impl_de(name, &body)
        }
        Item::UnitStruct { name } => impl_de(name, &format!("::std::result::Result::Ok({name})")),
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => str_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => map_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::de::Deserialize::deserialize(content)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let mut inner = format!(
                            "{{ let s = content.as_seq().ok_or_else(|| ::serde::de::Error::expected(\"seq\", \"{name}::{vn}\"))?;\n\
                             if s.len() != {n} {{ return ::std::result::Result::Err(::serde::de::Error::expected(\"{n}-tuple\", \"{name}::{vn}\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}(\n"
                        );
                        for k in 0..*n {
                            inner.push_str(&format!(
                                "::serde::de::Deserialize::deserialize(&s[{k}])?,\n"
                            ));
                        }
                        inner.push_str(")) }");
                        map_arms.push_str(&format!("\"{vn}\" => {inner},\n"));
                    }
                    VariantKind::Struct(fields) => {
                        let mut inner = format!(
                            "{{ let m = content.as_map().ok_or_else(|| ::serde::de::Error::expected(\"map\", \"{name}::{vn}\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n"
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "{f}: ::serde::de::map_field(m, \"{f}\")?,\n"
                            ));
                        }
                        inner.push_str("}) }");
                        map_arms.push_str(&format!("\"{vn}\" => {inner},\n"));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::value::Value::Str(s) => match s.as_str() {{\n{str_arms}\
                 other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n}},\n\
                 ::serde::value::Value::Map(m) if m.len() == 1 => {{\n\
                 let (tag, content) = &m[0];\n\
                 match tag.as_str() {{\n{map_arms}\
                 other => ::std::result::Result::Err(::serde::de::Error::unknown_variant(other, \"{name}\")),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::de::Error::expected(\"string or single-key map\", \"{name}\")),\n\
                 }}"
            );
            impl_de(name, &body)
        }
    }
}

fn impl_de(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::de::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n}}\n"
    )
}
