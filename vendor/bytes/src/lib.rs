//! Offline stand-in for `bytes`.
//!
//! [`Bytes`] is an immutable, cheaply-cloneable byte buffer (an `Arc`'d
//! vector plus a cursor window); [`BytesMut`] is a growable builder that
//! freezes into one. The [`Buf`]/[`BufMut`] traits carry the big-endian
//! accessors the workspace's wire codec uses.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than four bytes remain.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than eight bytes remain.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

/// Write-side sink for big-endian values.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// An immutable, cheaply-cloneable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static slice (copied; cheapness is not load-bearing here).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", &self[..])
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of Bytes");
        self.start += n;
    }
}

/// A growable byte-buffer builder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_be_values() {
        let mut out = BytesMut::with_capacity(16);
        out.put_u8(7);
        out.put_u32(0xDEAD_BEEF);
        out.put_u64(42);
        let mut b = out.freeze();
        assert_eq!(b.len(), 13);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64(), 42);
        assert!(!b.has_remaining());
    }

    #[test]
    fn clones_share_storage() {
        let b = Bytes::from(vec![1, 2, 3]);
        let mut c = b.clone();
        c.advance(1);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(&c[..], &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        b.advance(2);
    }
}
