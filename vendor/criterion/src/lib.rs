//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the measurement-only subset this workspace uses:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_batched`, `BenchmarkId`, `BatchSize`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//! Reports a simple min/mean per-iteration time to stdout instead of the
//! full statistical pipeline.
//!
//! Passing `--test` (as `cargo test` does for bench targets) runs each
//! routine once as a smoke test and skips timing.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier re-exported for API parity.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost. The stand-in times whole
/// batches regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; large batches.
    SmallInput,
    /// Large per-iteration inputs; batches of one.
    LargeInput,
    /// One input per timing measurement.
    PerIteration,
}

/// Identifies one benchmark within a group, e.g. `push_back_dedup/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Top-level benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo/libtest pass through that we can ignore.
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                s if s.starts_with('-') => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }

    /// Registers a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = 20;
        run_benchmark(self, None, &id.into(), sample_size, f);
    }

    /// Prints the closing line `criterion_main!` ends with.
    pub fn final_summary(&self) {
        if !self.test_mode {
            println!("benchmarks complete");
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f`, labelling it `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = self.name.clone();
        run_benchmark(self.criterion, Some(&name), &id.into(), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (The stand-in reports eagerly, so this is a no-op.)
    pub fn finish(self) {}
}

/// Passed to benchmark closures; owns the timing loop.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    criterion: &mut Criterion,
    group: Option<&str>,
    id: &BenchmarkId,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = match group {
        Some(g) => format!("{g}/{}", id.label),
        None => id.label.clone(),
    };
    if let Some(filter) = &criterion.filter {
        if !label.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {label} ... ok");
        return;
    }

    // Calibrate: grow the per-sample iteration count until one sample takes
    // at least ~1ms, so short routines are not drowned by timer noise.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{label:<48} min {:>12}  mean {:>12}  ({sample_size} samples x {iters} iters)",
        format_ns(min),
        format_ns(mean),
    );
}

fn format_ns(seconds: f64) -> String {
    let ns = seconds * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.2} ms", ns / 1_000_000.0)
    }
}

/// Bundles benchmark functions into one registration function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &n| {
            b.iter_batched(|| n, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
        c.bench_function("standalone", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }
}
