//! Offline stand-in for `crossbeam`.
//!
//! Provides the `crossbeam::channel` surface this workspace uses —
//! `unbounded`, `bounded`, cloneable `Sender`s, `recv`/`recv_timeout`/
//! `try_recv`, and matching error types — implemented with a
//! `Mutex`+`Condvar` queue. Unlike `std::sync::mpsc`, the same `Sender`
//! type fronts both bounded and unbounded channels (which the workspace
//! relies on), and receivers are cloneable.

pub mod channel;
