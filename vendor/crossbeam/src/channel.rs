//! Multi-producer multi-consumer channels with blocking, timeout, and
//! non-blocking receive, mirroring `crossbeam::channel` semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; the
/// unsent message is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived before the deadline.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    cap: Option<usize>,
    /// Signalled when a message is pushed or the last sender leaves.
    recv_ready: Condvar,
    /// Signalled when a message is popped or the last receiver leaves.
    send_ready: Condvar,
}

/// The sending half of a channel. Clone freely.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Clone freely.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel of unlimited capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_cap(None)
}

/// Creates a channel holding at most `cap` in-flight messages; sends
/// block while full. A capacity of zero is treated as one (the workspace
/// never uses rendezvous channels).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_cap(Some(cap.max(1)))
}

fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        cap,
        recv_ready: Condvar::new(),
        send_ready: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            match self.chan.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .chan
                        .send_ready
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(msg);
        drop(st);
        self.chan.recv_ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        st.senders += 1;
        drop(st);
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.chan.recv_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty and sender-less.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .chan
                .recv_ready
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until a message arrives or `timeout` elapses.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on deadline,
    /// [`RecvTimeoutError::Disconnected`] once empty and sender-less.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now().checked_add(timeout);
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.chan.send_ready.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = match deadline {
                // `Duration::MAX` overflows Instant: wait unboundedly.
                None => {
                    st = self
                        .chan
                        .recv_ready
                        .wait(st)
                        .unwrap_or_else(|e| e.into_inner());
                    continue;
                }
                Some(d) => d.saturating_duration_since(Instant::now()),
            };
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .chan
                .recv_ready
                .wait_timeout(st, remaining)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] once empty and sender-less.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = st.queue.pop_front() {
            drop(st);
            self.chan.send_ready.notify_one();
            return Ok(msg);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        st.receivers += 1;
        drop(st);
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.chan.send_ready.notify_all();
        }
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert_eq!(tx2.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_expires_and_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Ok(7));
    }

    #[test]
    fn duration_max_means_wait_forever() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::MAX), Ok(42));
        h.join().unwrap();
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        h.join().unwrap().unwrap();
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(rx.recv(), Err(RecvError));
        for h in handles {
            h.join().unwrap();
        }
    }
}
