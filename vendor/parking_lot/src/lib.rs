//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered
//! rather than propagated, matching parking_lot's no-poisoning behaviour).
//! Only the surface this workspace uses is provided.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock()` cannot fail.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning its data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(t: T) -> Self {
        Mutex::new(t)
    }
}

/// A reader-writer lock whose acquisition methods cannot fail.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(t: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(t),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_reads_and_writes() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
