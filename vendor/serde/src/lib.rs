//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched. This shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` and `use serde::{Serialize, Deserialize}` source lines
//! compiling against a *simplified* data model: serialization produces a
//! [`value::Value`] tree (JSON-shaped), deserialization consumes one.
//! `tokq-obs` renders `Value` trees to JSON text and parses them back,
//! which is all the workspace needs (JSONL reports and round-trip tests).
//!
//! Deliberate differences from real serde:
//! - no `Serializer`/`Deserializer` visitor machinery — one concrete tree;
//! - no `#[serde(...)]` attributes, no generic derives;
//! - non-finite floats serialize as `Null` and deserialize as `NaN`
//!   (mirroring what `serde_json` does to them).

pub mod de;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use ser::Serialize;
#[doc(hidden)]
pub use serde_derive::{Deserialize, Serialize};
