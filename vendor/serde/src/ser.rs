//! Serialization: a value renders itself into a [`Value`] tree.

use std::collections::BTreeMap;

use crate::value::Value;

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn serialize(&self) -> Value;
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::U64(v as u64)
                } else {
                    Value::I64(v)
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        (*self as f64).serialize()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for BTreeMap<&'static str, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| ((*k).to_owned(), v.serialize()))
                .collect(),
        )
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
    )+};
}
ser_tuple!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);
