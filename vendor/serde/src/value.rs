//! The JSON-shaped value tree at the centre of the shimmed data model.

/// A serialized value.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps) so that serialization is deterministic and round-trips exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed (negative) integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, as an ordered association list.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A `u64` view of any integer value that fits.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) if *v >= 0 => Some(*v as u64),
            Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// An `i64` view of any integer value that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            Value::U64(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// An `f64` view of any numeric value (`Null` reads as `NaN`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(f) => Some(*f),
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// True for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}
