//! Deserialization: types rebuild themselves from a [`Value`] tree.

use std::collections::BTreeMap;
use std::fmt;

use crate::value::Value;

/// Deserialization failure: what was expected, and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// "expected X while deserializing Y".
    pub fn expected(what: &str, ty: &str) -> Self {
        Error {
            msg: format!("expected {what} while deserializing {ty}"),
        }
    }

    /// An unrecognized enum variant tag.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        Error {
            msg: format!("unknown variant `{tag}` for {ty}"),
        }
    }

    /// A missing struct field.
    pub fn missing_field(field: &str) -> Self {
        Error {
            msg: format!("missing field `{field}`"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses a value tree into `Self`.
    ///
    /// # Errors
    ///
    /// Returns an [`Error`] when the tree does not have the expected shape.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Reads one struct field out of a map, treating a missing entry like an
/// explicit `null` (so `Option` fields tolerate omission).
///
/// # Errors
///
/// Propagates the field type's own deserialization error; a missing
/// non-nullable field surfaces as that type's "expected ..." error.
pub fn map_field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::deserialize(v),
        None => T::deserialize(&Value::Null).map_err(|_| Error::missing_field(name)),
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| Error::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::expected("in-range unsigned integer", stringify!($t)))
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::expected("string", "char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", "String"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "Vec"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("sequence", "VecDeque"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("map", "BTreeMap"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($(($($name:ident . $idx:tt),+; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::expected("sequence", "tuple"))?;
                if s.len() != $len {
                    return Err(Error::expected("tuple of matching length", "tuple"));
                }
                Ok(($($name::deserialize(&s[$idx])?,)+))
            }
        }
    )+};
}
de_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);
