//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing vectors whose length is drawn from `len` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_in_range() {
        let mut rng = TestRng::new(7);
        let s = vec(1u32..4, 2..6);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|x| (1..4).contains(x)));
        }
    }
}
