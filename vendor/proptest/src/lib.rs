//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, ranges and tuples as
//! strategies, `Just`, [`arbitrary::any`], `prop_oneof!`,
//! `proptest::collection::vec`, `proptest::option::of`, the `proptest!`
//! test macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test RNG (seeded by the test name), there is no
//! shrinking, and failure persistence files are ignored. A failing case
//! reports its case index and seed so it can be replayed by rerunning the
//! test (generation is deterministic).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Unions a list of same-valued strategies, picking one uniformly per
/// sample. Weighted arms are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body runs
/// for `config.cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident(
            $($arg:ident in $strat:expr),* $(,)?
        ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    let case_seed = rng.state();
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| {
                            $(let $arg = $crate::strategy::Strategy::sample(
                                &$strat, &mut rng);)*
                            $body
                        }),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest {}: case {}/{} failed (rng state {:#x})",
                            stringify!($name), case + 1, config.cases, case_seed,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
