//! Deterministic RNG and per-test configuration.

/// Per-test configuration consumed by the `proptest!` macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` samples.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64: tiny, fast, and deterministic — the same generator the
/// workspace's simulator uses for reproducible runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded explicitly.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// An RNG seeded from a test's name, so every test draws a distinct
    /// but reproducible stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The raw generator state (reported on failure for replay).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `u64` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test generation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::new(9);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }
}
