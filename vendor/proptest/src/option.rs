//! Option strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `None` a quarter of the time and `Some` of the inner
/// strategy otherwise (matching real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}
