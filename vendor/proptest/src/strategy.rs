//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so differently-typed strategies with the
    /// same value type can be unioned.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            sample: Rc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    sample: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        (self.sample)(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between same-valued strategies (see `prop_oneof!`).
pub fn union<V>(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }
}

/// Result of [`union`] / `prop_oneof!`.
#[derive(Debug, Clone)]
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let k = rng.below(self.arms.len() as u64) as usize;
        self.arms[k].sample(rng)
    }
}

macro_rules! range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end as u64 - self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy_uint!(u8, u16, u32);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (i64::from(self.end) - i64::from(self.start)) as u64;
        (i64::from(self.start) + rng.below(span) as i64) as i32
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn map_union_and_just_compose() {
        let mut rng = TestRng::new(2);
        let s = crate::prop_oneof![(0u32..5).prop_map(|v| v * 10), Just(99u32),];
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(v == 99 || (v % 10 == 0 && v < 50), "{v}");
        }
    }

    #[test]
    fn tuples_draw_componentwise() {
        let mut rng = TestRng::new(3);
        let (a, b, c) = (0u32..2, 10u64..12, 0.0f64..1.0).sample(&mut rng);
        assert!(a < 2 && (10..12).contains(&b) && (0.0..1.0).contains(&c));
    }
}
