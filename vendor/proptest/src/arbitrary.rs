//! `any::<T>()` — full-domain strategies for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one uniformly random value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only: property tests over NaN/inf are opted into
        // explicitly in real proptest too.
        rng.unit_f64() * 2e9 - 1e9
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // ASCII printable keeps generated strings readable.
        (0x20u8 + rng.below(0x5f) as u8) as char
    }
}
