//! Configuration for the rotating-arbiter algorithm and its variants.

use serde::{Deserialize, Serialize};

use crate::api::ProtocolFactory;
use crate::arbiter::ArbiterNode;
use crate::types::{NodeId, Priority, TimeDelta};

/// How an arbiter orders the requests it collected into the Q-list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default, Hash)]
pub enum Fairness {
    /// First-come-first-served by arrival at the arbiter (paper §2.1: "the
    /// requests are ordered according to their arrival times at the queue").
    #[default]
    Fcfs,
    /// Within one batch, grant nodes with smaller request sequence numbers
    /// first — the Suzuki–Kasami-style "least CS entries wins" refinement
    /// sketched in paper §2.4/§5.1. Ties keep arrival order.
    SeqNumFair,
    /// Order by descending static node priority (paper §5.2). Starvation of
    /// low-priority nodes is avoided structurally: they sink to the tail,
    /// and the tail is the next arbiter.
    Priority,
}

/// How often the token is routed through the monitor node
/// (starvation-free variant, paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Hash)]
pub enum MonitorPeriod {
    /// Adaptive period: route to the monitor when the NEW-ARBITER counter
    /// reaches `ceil(average Q-list size)`, the average taken over a moving
    /// window of the given size (paper §4.1's proposal).
    Adaptive {
        /// Number of recent Q-list lengths averaged.
        window: usize,
    },
    /// Fixed period: route to the monitor every `every` NEW-ARBITER
    /// broadcasts. Used by the ablation experiment.
    Fixed {
        /// NEW-ARBITER broadcasts between monitor visits.
        every: u32,
    },
}

impl Default for MonitorPeriod {
    fn default() -> Self {
        MonitorPeriod::Adaptive { window: 16 }
    }
}

/// Configuration of the starvation-free variant (paper §4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Hash)]
pub struct MonitorConfig {
    /// The initial monitor node.
    pub monitor: NodeId,
    /// Forwarding threshold τ: requests forwarded more than `tau` times are
    /// dropped by arbiters, and a requester escalates to the monitor after
    /// `tau` consecutive NEW-ARBITER broadcasts that fail to schedule it.
    pub tau: u32,
    /// Token-to-monitor period policy.
    pub period: MonitorPeriod,
    /// Rotate the monitor role round-robin on every monitor visit
    /// (paper §5.1's load-balancing refinement).
    pub rotate: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            monitor: NodeId(0),
            tau: 3,
            period: MonitorPeriod::default(),
            rotate: false,
        }
    }
}

/// Configuration of failure recovery (paper §6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Hash)]
pub struct RecoveryConfig {
    /// Base timeout a scheduled node waits for the token before sending a
    /// WARNING to the arbiter.
    pub token_wait_base: TimeDelta,
    /// Additional wait per position in the Q-list (a node scheduled deeper
    /// in the list expects the token later).
    pub token_wait_per_position: TimeDelta,
    /// How long the arbiter waits for ENQUIRY replies before declaring the
    /// token lost (phase 2 of the invalidation protocol).
    pub enquiry_timeout: TimeDelta,
    /// How long a previous arbiter waits to observe the next NEW-ARBITER
    /// broadcast before probing the current arbiter.
    pub handover_watch: TimeDelta,
    /// How long a probing previous arbiter waits for a PROBE-ACK before
    /// proclaiming itself the arbiter again.
    pub probe_timeout: TimeDelta,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(1_000),
            token_wait_per_position: TimeDelta::from_millis(300),
            enquiry_timeout: TimeDelta::from_millis(500),
            handover_watch: TimeDelta::from_millis(2_000),
            probe_timeout: TimeDelta::from_millis(500),
        }
    }
}

/// Full configuration of the Banerjee–Chrysanthis arbiter algorithm.
///
/// The default configuration is the paper's *basic* algorithm (§2) with the
/// simulation parameters of §3.3 (`T_req = T_fwd = 0.1 s`). Enable
/// [`ArbiterConfig::monitor`] for the starvation-free variant (§4.1) and
/// [`ArbiterConfig::recovery`] for failure recovery (§6).
///
/// `ArbiterConfig` implements [`ProtocolFactory`], so it can be handed
/// directly to the simulator or the runtime:
///
/// ```
/// use tokq_protocol::api::ProtocolFactory;
/// use tokq_protocol::arbiter::ArbiterConfig;
///
/// let nodes = ArbiterConfig::default().build_all(5);
/// assert_eq!(nodes.len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Hash)]
pub struct ArbiterConfig {
    /// The node initially designated as arbiter (and initial token holder).
    pub initial_arbiter: NodeId,
    /// Request collection phase duration `T_req` (paper §2.1, tuned in §3.3).
    pub t_collect: TimeDelta,
    /// Request forwarding phase duration `T_fwd`.
    pub t_forward: TimeDelta,
    /// Q-list ordering policy.
    pub fairness: Fairness,
    /// Retransmit a request to the new arbiter when a NEW-ARBITER broadcast
    /// arrives without it (paper §6, "Lost Request": the NEW-ARBITER acts as
    /// an implicit acknowledgment). Required for liveness of the basic
    /// algorithm when requests are dropped after the forwarding phase.
    pub retransmit_on_miss: bool,
    /// Consecutive unscheduled NEW-ARBITER broadcasts tolerated before the
    /// miss retransmission fires. A request that arrives just after a seal
    /// is in the *next* batch, not dropped; one broadcast of grace avoids
    /// retransmitting those (they would be duplicate-suppressed anyway, but
    /// each costs a message).
    pub miss_grace: u32,
    /// Static per-node priorities (indexed by node id); empty means all
    /// default. Only consulted when `fairness` is [`Fairness::Priority`].
    pub priorities: Vec<Priority>,
    /// Retransmission timeout for a request that was never scheduled and
    /// never contradicted by a NEW-ARBITER broadcast (paper §6:
    /// "appropriate timeouts may also be used to retransmit a request").
    /// `None` disables the timeout.
    pub request_retry: Option<TimeDelta>,
    /// **Test-only sabotage switch**: suppress the NEW-ARBITER broadcast
    /// when sealing a Q-list. This silently breaks the implicit
    /// acknowledgment of paper §6 — nodes never learn the arbiter moved, so
    /// requests sent to a stale arbiter are lost and miss-detection never
    /// fires. It exists solely so the model-checker regression test can
    /// prove the explorer detects the resulting starvation; never enable it
    /// in a deployment.
    pub suppress_new_arbiter: bool,
    /// Starvation-free variant (paper §4.1); `None` = basic algorithm.
    pub monitor: Option<MonitorConfig>,
    /// Failure recovery (paper §6); `None` = fault-free deployment.
    pub recovery: Option<RecoveryConfig>,
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        ArbiterConfig {
            initial_arbiter: NodeId(0),
            t_collect: TimeDelta::from_millis(100),
            t_forward: TimeDelta::from_millis(100),
            fairness: Fairness::default(),
            retransmit_on_miss: true,
            miss_grace: 2,
            priorities: Vec::new(),
            request_retry: Some(TimeDelta::from_secs(2)),
            suppress_new_arbiter: false,
            monitor: None,
            recovery: None,
        }
    }
}

impl ArbiterConfig {
    /// The basic algorithm of paper §2 with the §3.3 parameters.
    pub fn basic() -> Self {
        Self::default()
    }

    /// The starvation-free variant of paper §4.1 with default monitor
    /// settings.
    pub fn starvation_free() -> Self {
        ArbiterConfig {
            monitor: Some(MonitorConfig::default()),
            ..Self::default()
        }
    }

    /// The full fault-tolerant configuration (§4.1 + §6).
    pub fn fault_tolerant() -> Self {
        ArbiterConfig {
            monitor: Some(MonitorConfig::default()),
            recovery: Some(RecoveryConfig::default()),
            ..Self::default()
        }
    }

    /// Sets the collection phase duration, returning `self` for chaining.
    #[must_use]
    pub fn with_t_collect(mut self, t: TimeDelta) -> Self {
        self.t_collect = t;
        self
    }

    /// Sets the forwarding phase duration, returning `self` for chaining.
    #[must_use]
    pub fn with_t_forward(mut self, t: TimeDelta) -> Self {
        self.t_forward = t;
        self
    }

    /// The priority of `node` under this configuration.
    pub fn priority_of(&self, node: NodeId) -> Priority {
        self.priorities
            .get(node.index())
            .copied()
            .unwrap_or_default()
    }
}

impl ProtocolFactory for ArbiterConfig {
    type Node = ArbiterNode;

    fn build(&self, id: NodeId, n: usize) -> ArbiterNode {
        ArbiterNode::new(id, n, self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_simulation_parameters() {
        let c = ArbiterConfig::default();
        assert_eq!(c.t_collect, TimeDelta::from_secs_f64(0.1));
        assert_eq!(c.t_forward, TimeDelta::from_secs_f64(0.1));
        assert_eq!(c.initial_arbiter, NodeId(0));
        assert_eq!(c.fairness, Fairness::Fcfs);
        assert!(c.monitor.is_none());
        assert!(c.recovery.is_none());
    }

    #[test]
    fn builder_helpers() {
        let c = ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(200))
            .with_t_forward(TimeDelta::from_millis(50));
        assert_eq!(c.t_collect, TimeDelta::from_millis(200));
        assert_eq!(c.t_forward, TimeDelta::from_millis(50));
    }

    #[test]
    fn variant_constructors() {
        assert!(ArbiterConfig::starvation_free().monitor.is_some());
        let ft = ArbiterConfig::fault_tolerant();
        assert!(ft.monitor.is_some());
        assert!(ft.recovery.is_some());
    }

    #[test]
    fn priority_lookup_defaults() {
        let mut c = ArbiterConfig::default();
        assert_eq!(c.priority_of(NodeId(3)), Priority(0));
        c.priorities = vec![Priority(1), Priority(9)];
        assert_eq!(c.priority_of(NodeId(1)), Priority(9));
        assert_eq!(c.priority_of(NodeId(7)), Priority(0));
    }
}
