//! Message and token types of the arbiter algorithm.

use serde::{Deserialize, Serialize};

use crate::api::ProtocolMessage;
use crate::qlist::QList;
use crate::types::{NodeId, Priority, SeqNum};

/// The PRIVILEGE token (paper §2.1): at most one exists per epoch.
///
/// Beyond the paper's `PRIVILEGE(Q, L)` form (§2.4) the token carries a
/// `round` (monotone seal counter used to order NEW-ARBITER broadcasts) and
/// an `epoch` (bumped by token regeneration, paper §6, so that a slow old
/// token resurfacing after regeneration can be recognized and discarded).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub struct Token {
    /// The ordered list of scheduled requesters; head executes next, tail is
    /// the next arbiter.
    pub q: QList,
    /// `L` array: per node, the sequence number of the last granted request
    /// (paper §2.4). Lets arbiters discard stale retransmitted requests.
    pub last_granted: Vec<SeqNum>,
    /// Monotone seal counter; incremented every time an arbiter seals a
    /// Q-list into the token.
    pub round: u64,
    /// Regeneration epoch; incremented when an arbiter declares the token
    /// lost and mints a replacement.
    pub epoch: u64,
    /// Set when the sealing arbiter routed the token through the monitor
    /// node (starvation-free variant, paper §4.1); cleared by the monitor.
    pub via_monitor: bool,
}

impl Token {
    /// The initial token held by the initial arbiter of an `n`-node system.
    pub fn initial(n: usize) -> Self {
        Token {
            q: QList::new(),
            last_granted: vec![SeqNum::ZERO; n],
            round: 0,
            epoch: 0,
            via_monitor: false,
        }
    }

    /// The last granted sequence number for `node`.
    pub fn last_granted_for(&self, node: NodeId) -> SeqNum {
        self.last_granted
            .get(node.index())
            .copied()
            .unwrap_or(SeqNum::ZERO)
    }

    /// Records that `node`'s request `seq` has been granted.
    pub fn record_grant(&mut self, node: NodeId, seq: SeqNum) {
        if let Some(slot) = self.last_granted.get_mut(node.index()) {
            if seq > *slot {
                *slot = seq;
            }
        }
    }
}

/// Reply statuses of the two-phase token invalidation protocol (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum TokenStatus {
    /// "I had the token, and have executed my CS."
    HadToken,
    /// "I have the token." (The replier suspends until RESUME.)
    HaveToken,
    /// "I am waiting for the token."
    Waiting,
    /// The replier is not involved (engineering addition for robustness when
    /// the enquiry set over-approximates).
    Idle,
}

/// The arbiter algorithm's message alphabet.
///
/// The three basic messages are exactly the paper's (§2.1); the remainder
/// implement the starvation-free variant (§4.1) and recovery (§6).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum ArbiterMsg {
    /// `REQUEST(j, n)`: node `requester` wants its `seq`-th critical
    /// section. `hops` counts forwarding steps (0 = sent directly).
    Request {
        /// The requesting node.
        requester: NodeId,
        /// The request's sequence number.
        seq: SeqNum,
        /// Requester's static priority (paper §5.2).
        priority: Priority,
        /// Times this request has been forwarded arbiter-to-arbiter.
        hops: u32,
    },
    /// `PRIVILEGE(Q, L)`: the token.
    Privilege(Token),
    /// `NEW-ARBITER(j)`: broadcast declaring `arbiter` the new arbiter,
    /// carrying the sealed Q-list (which doubles as the implicit
    /// acknowledgment of scheduling, paper §6) and bookkeeping fields.
    NewArbiter {
        /// The newly elected arbiter (tail of `q`).
        arbiter: NodeId,
        /// The Q-list just sealed into the token.
        q: QList,
        /// The node that sealed this list (the previous arbiter); recovery
        /// includes it in the ENQUIRY set.
        prev: NodeId,
        /// Token seal round; receivers ignore broadcasts out of order.
        round: u64,
        /// Monitor-period counter (paper §4.1); reset to zero by the
        /// monitor.
        counter: u32,
        /// Token regeneration epoch.
        epoch: u64,
        /// Current monitor node, when the monitor role rotates (paper §5.1).
        monitor: Option<NodeId>,
    },
    /// Resubmission of a starving request directly to the monitor node
    /// (paper §4.1).
    MonitorSubmit {
        /// The requesting node.
        requester: NodeId,
        /// The request's sequence number.
        seq: SeqNum,
        /// Requester's static priority.
        priority: Priority,
    },
    /// A scheduled node timed out waiting for the token (paper §6).
    Warning {
        /// The NEW-ARBITER round the warner believes current; lets a node
        /// that missed its own election recognize the warner knows more.
        round: u64,
    },
    /// Phase 1 of token invalidation: "do you hold the token?"
    Enquiry {
        /// The epoch the enquiring arbiter believes current.
        epoch: u64,
    },
    /// Reply to an ENQUIRY.
    EnquiryReply {
        /// The replier's token status.
        status: TokenStatus,
    },
    /// The token was found alive; the suspended holder may resume.
    Resume,
    /// The token was declared lost; discard any token with an older epoch
    /// and keep waiting — the regenerated token will honor the Q-list.
    Invalidate {
        /// The new epoch minted by the regenerating arbiter.
        epoch: u64,
    },
    /// A previous arbiter probing a silent current arbiter (paper §6).
    Probe,
    /// Liveness acknowledgment of a PROBE.
    ProbeAck {
        /// Whether the probed node currently considers itself the arbiter;
        /// `false` tells the watcher its handover announcement was lost.
        arbiter: bool,
    },
}

impl ProtocolMessage for ArbiterMsg {
    fn kind(&self) -> &'static str {
        match self {
            ArbiterMsg::Request { .. } => "REQUEST",
            ArbiterMsg::Privilege(_) => "PRIVILEGE",
            ArbiterMsg::NewArbiter { .. } => "NEW-ARBITER",
            ArbiterMsg::MonitorSubmit { .. } => "MONITOR-SUBMIT",
            ArbiterMsg::Warning { .. } => "WARNING",
            ArbiterMsg::Enquiry { .. } => "ENQUIRY",
            ArbiterMsg::EnquiryReply { .. } => "ENQUIRY-REPLY",
            ArbiterMsg::Resume => "RESUME",
            ArbiterMsg::Invalidate { .. } => "INVALIDATE",
            ArbiterMsg::Probe => "PROBE",
            ArbiterMsg::ProbeAck { .. } => "PROBE-ACK",
        }
    }

    /// Every handler except the token's is idempotent — REQUEST and
    /// MONITOR-SUBMIT land in Q-lists with set semantics plus the `L`-array
    /// stale check, NEW-ARBITER and WARNING are round-guarded, ENQUIRY /
    /// ENQUIRY-REPLY / PROBE / PROBE-ACK belong to retransmitting
    /// timeout-driven exchanges that already tolerate late and repeated
    /// copies, and INVALIDATE takes an epoch maximum. Only PRIVILEGE is
    /// excluded: the token is unique by channel assumption.
    fn duplication_tolerant(&self) -> bool {
        !matches!(self, ArbiterMsg::Privilege(_))
    }
}

/// Timers used by the arbiter algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ArbiterTimer {
    /// End of the current request collection window (`T_req`).
    CollectionEnd,
    /// End of the request forwarding phase (`T_fwd`).
    ForwardEnd,
    /// A scheduled requester's token-wait timeout (recovery).
    TokenWait,
    /// The arbiter's own token-wait timeout (recovery).
    ArbiterWait,
    /// Phase-1 reply collection timeout of token invalidation (recovery).
    EnquiryTimeout,
    /// Previous arbiter watching for the successor's first NEW-ARBITER
    /// broadcast (recovery).
    HandoverWatch,
    /// Waiting for a PROBE-ACK from a probed arbiter (recovery).
    ProbeTimeout,
    /// Retransmission timeout for an unscheduled request (paper §6).
    RequestRetry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_initial_state() {
        let t = Token::initial(4);
        assert!(t.q.is_empty());
        assert_eq!(t.last_granted.len(), 4);
        assert_eq!(t.round, 0);
        assert_eq!(t.epoch, 0);
        assert!(!t.via_monitor);
    }

    #[test]
    fn grant_recording_is_monotone() {
        let mut t = Token::initial(2);
        t.record_grant(NodeId(1), SeqNum(5));
        assert_eq!(t.last_granted_for(NodeId(1)), SeqNum(5));
        t.record_grant(NodeId(1), SeqNum(3));
        assert_eq!(t.last_granted_for(NodeId(1)), SeqNum(5));
        // Out-of-range ids are tolerated (defensive).
        t.record_grant(NodeId(9), SeqNum(1));
        assert_eq!(t.last_granted_for(NodeId(9)), SeqNum::ZERO);
    }

    #[test]
    fn message_kinds_cover_paper_vocabulary() {
        let req = ArbiterMsg::Request {
            requester: NodeId(2),
            seq: SeqNum(1),
            priority: Priority(0),
            hops: 0,
        };
        assert_eq!(req.kind(), "REQUEST");
        assert_eq!(ArbiterMsg::Privilege(Token::initial(1)).kind(), "PRIVILEGE");
        assert_eq!(ArbiterMsg::Warning { round: 1 }.kind(), "WARNING");
        assert_eq!(ArbiterMsg::Probe.kind(), "PROBE");
    }
}
