//! The rotating-arbiter node state machine (paper §2.1, Figure 1).
//!
//! One `ArbiterNode` implements the *basic* algorithm; the starvation-free
//! variant (§4.1) and failure recovery (§6) are enabled through
//! [`ArbiterConfig`] and implemented in the sibling `monitor` and `recovery`
//! modules as additional `impl` blocks over the same state.

use std::collections::VecDeque;

use crate::api::Protocol;
use crate::arbiter::config::{ArbiterConfig, Fairness};
use crate::arbiter::messages::{ArbiterMsg, ArbiterTimer, Token};
use crate::arbiter::recovery::RecoveryState;
use crate::event::{Action, Input, Note};
use crate::qlist::{Entry, QList};
use crate::types::{NodeId, Priority, SeqNum};

/// Actions accumulated while processing one input.
pub(crate) type Outbox = Vec<Action<ArbiterMsg, ArbiterTimer>>;

/// A node running the Banerjee–Chrysanthis token-passing algorithm.
///
/// Construct via [`ArbiterConfig`] (which implements
/// [`crate::api::ProtocolFactory`]); drive via [`Protocol::step`].
///
/// # Examples
///
/// A single-node system grants its own request after one collection window:
///
/// ```
/// use tokq_protocol::api::{Protocol, ProtocolFactory};
/// use tokq_protocol::arbiter::{ArbiterConfig, ArbiterTimer};
/// use tokq_protocol::event::{Action, Input};
/// use tokq_protocol::types::NodeId;
///
/// let mut node = ArbiterConfig::basic().build(NodeId(0), 1);
/// node.step(Input::Start);
/// let actions = node.step(Input::RequestCs);
/// // A collection window opens for the arbiter's own request.
/// assert!(actions
///     .iter()
///     .any(|a| matches!(a, Action::SetTimer { timer: ArbiterTimer::CollectionEnd, .. })));
/// let actions = node.step(Input::Timer(ArbiterTimer::CollectionEnd));
/// assert!(actions.iter().any(|a| matches!(a, Action::EnterCs)));
/// ```
#[derive(Debug, Clone, Hash)]
pub struct ArbiterNode {
    pub(crate) id: NodeId,
    pub(crate) n: usize,
    pub(crate) cfg: ArbiterConfig,
    pub(crate) priority: Priority,

    pub(crate) alive: bool,
    /// Believed current arbiter.
    pub(crate) arbiter: NodeId,
    pub(crate) is_arbiter: bool,
    /// Requests collected while acting as arbiter (`q` in Figure 1).
    pub(crate) collect: QList,
    /// Whether a `CollectionEnd` timer is pending.
    pub(crate) window_armed: bool,
    /// Forwarding phase target, while active.
    pub(crate) forwarding_to: Option<NodeId>,
    pub(crate) token: Option<Token>,
    pub(crate) in_cs: bool,
    /// The application has an unserviced `RequestCs`.
    pub(crate) want_cs: bool,
    pub(crate) my_seq: SeqNum,
    /// Our outstanding request appeared in a NEW-ARBITER Q-list.
    pub(crate) waiting_confirmed: bool,
    /// Consecutive NEW-ARBITER broadcasts that did not schedule us.
    pub(crate) miss_count: u32,
    /// Highest NEW-ARBITER round observed; stale broadcasts are ignored.
    pub(crate) last_round: u64,
    /// `last_round` when our outstanding request was (re)issued; the coarse
    /// retry timeout only fires if no round progress happened since.
    pub(crate) round_at_request: u64,
    /// Consecutive retry-timeout firings with zero NEW-ARBITER progress;
    /// escalates to probing (and, unanswered, replacing) the arbiter.
    pub(crate) silent_retries: u32,
    /// Which node our outstanding request was last sent to. A NEW-ARBITER
    /// that omits us *and* names a different arbiter is the signature of a
    /// dropped request (ours went to a node that is no longer collecting);
    /// an omission by the same arbiter merely means we landed in the next
    /// batch.
    pub(crate) request_sent_to: Option<NodeId>,

    // --- starvation-free variant (paper §4.1) ---
    /// Current monitor node (may rotate, paper §5.1).
    pub(crate) monitor_cur: Option<NodeId>,
    /// Requests stored at the monitor awaiting the next token visit.
    pub(crate) monitor_store: QList,
    /// NEW-ARBITER counter (reset by the monitor).
    pub(crate) na_counter: u32,
    /// Moving window of observed Q-list sizes.
    pub(crate) q_window: VecDeque<u32>,

    // --- failure recovery (paper §6) ---
    /// Current token epoch this node knows of.
    pub(crate) epoch: u64,
    /// Cached copy of the token's `L` array from our last possession;
    /// seeds a regenerated token.
    pub(crate) lg_cache: Vec<SeqNum>,
    /// The Q-list from the most recent NEW-ARBITER (enquiry set).
    pub(crate) last_q_seen: QList,
    /// The previous arbiter named in the most recent NEW-ARBITER.
    pub(crate) prev_arbiter: NodeId,
    /// The successor arbiter this node is monitoring (paper §6: the
    /// previous arbiter watches the current one).
    pub(crate) watching: Option<NodeId>,
    /// The arbiter of an enquiry we answered that is still open; a token
    /// landing here meanwhile is self-reported to it.
    pub(crate) enquiring_arbiter: Option<NodeId>,
    pub(crate) recovery_state: RecoveryState,
    /// Token holder suspended by an ENQUIRY; must not pass until RESUME.
    pub(crate) suspended: bool,
    /// A token pass deferred because we were suspended.
    pub(crate) deferred_pass: bool,
    /// We held and released the token since the last NEW-ARBITER.
    pub(crate) had_token_recently: bool,
}

impl ArbiterNode {
    /// Creates the node `id` of an `n`-node system under `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `id` is out of range, or the configured initial
    /// arbiter / monitor node is out of range.
    pub fn new(id: NodeId, n: usize, cfg: ArbiterConfig) -> Self {
        assert!(n > 0, "system must have at least one node");
        assert!(id.index() < n, "node id {id} out of range for n={n}");
        assert!(
            cfg.initial_arbiter.index() < n,
            "initial arbiter out of range"
        );
        if let Some(m) = &cfg.monitor {
            assert!(m.monitor.index() < n, "monitor node out of range");
        }
        let priority = cfg.priority_of(id);
        let monitor_cur = cfg.monitor.as_ref().map(|m| m.monitor);
        let initial = cfg.initial_arbiter;
        ArbiterNode {
            id,
            n,
            arbiter: initial,
            priority,
            cfg,
            alive: false,
            is_arbiter: false,
            collect: QList::new(),
            window_armed: false,
            forwarding_to: None,
            token: None,
            in_cs: false,
            want_cs: false,
            my_seq: SeqNum::ZERO,
            waiting_confirmed: false,
            miss_count: 0,
            last_round: 0,
            round_at_request: 0,
            silent_retries: 0,
            request_sent_to: None,
            monitor_cur,
            monitor_store: QList::new(),
            na_counter: 0,
            q_window: VecDeque::new(),
            epoch: 0,
            lg_cache: vec![SeqNum::ZERO; n],
            last_q_seen: QList::new(),
            prev_arbiter: initial,
            watching: None,
            enquiring_arbiter: None,
            recovery_state: RecoveryState::Idle,
            suspended: false,
            deferred_pass: false,
            had_token_recently: false,
        }
    }

    /// The believed current arbiter (for tests and diagnostics).
    pub fn believed_arbiter(&self) -> NodeId {
        self.arbiter
    }

    /// True while this node acts as arbiter.
    pub fn is_arbiter(&self) -> bool {
        self.is_arbiter
    }

    /// True while this node is inside its critical section.
    pub fn in_cs(&self) -> bool {
        self.in_cs
    }

    /// The current token epoch this node knows of.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    // ---------------------------------------------------------------
    // Input dispatch
    // ---------------------------------------------------------------

    fn on_start(&mut self, out: &mut Outbox) {
        self.alive = true;
        if self.id == self.cfg.initial_arbiter {
            self.is_arbiter = true;
            self.token = Some(Token::initial(self.n));
            out.push(Action::Note(Note::BecameArbiter));
            self.arm_arbiter_wait(out);
        }
    }

    fn on_request_cs(&mut self, out: &mut Outbox) {
        debug_assert!(!self.want_cs, "driver issued overlapping RequestCs");
        self.want_cs = true;
        self.my_seq = self.my_seq.next();
        self.miss_count = 0;
        self.silent_retries = 0;
        self.waiting_confirmed = false;
        if self.is_arbiter {
            // The arbiter's own request joins its queue without a message.
            self.collect.push_back(self.own_entry());
            self.maybe_arm_collection(out);
        } else {
            self.request_sent_to = Some(self.arbiter);
            out.push(Action::Send {
                to: self.arbiter,
                msg: ArbiterMsg::Request {
                    requester: self.id,
                    seq: self.my_seq,
                    priority: self.priority,
                    hops: 0,
                },
            });
            self.arm_request_retry(out);
        }
    }

    /// Arms the unscheduled-request retransmission timeout (paper §6:
    /// "appropriate timeouts may also be used to retransmit a request").
    /// This guards liveness in the rare race where a request reaches a
    /// node that is past its forwarding phase while no further NEW-ARBITER
    /// broadcast is ever produced to trigger miss-detection.
    fn arm_request_retry(&mut self, out: &mut Outbox) {
        if let Some(base) = self.cfg.request_retry {
            self.round_at_request = self.last_round;
            // This timeout exists only for the total-silence deadlock
            // (request lost and no NEW-ARBITER ever broadcast again), so
            // it is scaled far beyond one full token rotation — the
            // NEW-ARBITER miss detection owns every faster rescue. The
            // small per-node stagger avoids resonating with periodic
            // broadcasts under deterministic delays.
            let stagger = base * (u64::from(self.id.0) + 1) / (2 * self.n as u64);
            out.push(Action::SetTimer {
                timer: ArbiterTimer::RequestRetry,
                after: base * self.n as u64 + stagger,
            });
        }
    }

    /// The retry timeout fired with the request still unscheduled.
    fn on_request_retry(&mut self, out: &mut Outbox) {
        if !self.want_cs || self.waiting_confirmed || self.in_cs || self.is_arbiter {
            return;
        }
        if self.last_round > self.round_at_request {
            // NEW-ARBITER rounds advanced since we asked: the system is
            // live and the miss-detection path owns retransmission. Only a
            // total absence of broadcasts indicates the deadlock this
            // timeout exists for.
            self.silent_retries = 0;
            self.arm_request_retry(out);
            return;
        }
        self.silent_retries += 1;
        // Repeated retries into total silence suggest the arbiter itself
        // is dead (e.g. it crashed holding the token before its first
        // handover, so no previous arbiter is watching it). Probe it; an
        // unanswered probe triggers the §6 takeover. The threshold grows
        // with the node id so concurrent requesters escalate one at a
        // time, 20+ seconds apart, rather than racing each other.
        if self.cfg.recovery.is_some()
            && self.arbiter != self.id
            && self.silent_retries >= 2 + self.id.0
        {
            if self.watching.is_none() {
                self.watching = Some(self.arbiter);
            }
            out.push(Action::Send {
                to: self.arbiter,
                msg: ArbiterMsg::Probe,
            });
            if let Some(rc) = &self.cfg.recovery {
                out.push(Action::SetTimer {
                    timer: ArbiterTimer::ProbeTimeout,
                    after: rc.probe_timeout,
                });
            }
        }
        self.request_sent_to = Some(self.arbiter);
        out.push(Action::Send {
            to: self.arbiter,
            msg: ArbiterMsg::Request {
                requester: self.id,
                seq: self.my_seq,
                priority: self.priority,
                hops: 0,
            },
        });
        out.push(Action::Note(Note::RequestRetransmitted {
            requester: self.id,
            misses: self.miss_count,
        }));
        self.arm_request_retry(out);
    }

    pub(crate) fn own_entry(&self) -> Entry {
        Entry::with_priority(self.id, self.my_seq, self.priority)
    }

    fn on_request(
        &mut self,
        requester: NodeId,
        seq: SeqNum,
        priority: Priority,
        hops: u32,
        out: &mut Outbox,
    ) {
        if self.is_arbiter {
            // Starvation-free τ check: over-forwarded requests are dropped
            // by the arbiter even inside the phases (paper §4.1).
            if let Some(mc) = &self.cfg.monitor {
                if hops > mc.tau {
                    out.push(Action::Note(Note::RequestDropped { requester }));
                    return;
                }
            }
            if self.is_stale(requester, seq) {
                out.push(Action::Note(Note::StaleRequestDiscarded { requester, seq }));
                return;
            }
            self.collect
                .push_back(Entry::with_priority(requester, seq, priority));
            self.maybe_arm_collection(out);
        } else if let Some(next) = self.forwarding_to {
            // Request forwarding phase (paper §2.1).
            out.push(Action::Send {
                to: next,
                msg: ArbiterMsg::Request {
                    requester,
                    seq,
                    priority,
                    hops: hops + 1,
                },
            });
            out.push(Action::Note(Note::RequestForwarded {
                requester,
                hops: hops + 1,
            }));
        } else if self.monitor_cur == Some(self.id) {
            // The monitor stores strays instead of dropping them (§4.1).
            self.monitor_store
                .push_back(Entry::with_priority(requester, seq, priority));
        } else {
            // Outside both phases: dropped; the requester will notice its
            // absence from the next NEW-ARBITER Q-list and retransmit.
            out.push(Action::Note(Note::RequestDropped { requester }));
        }
    }

    /// Stale-request check against the token's `L` array (paper §2.4).
    pub(crate) fn is_stale(&self, requester: NodeId, seq: SeqNum) -> bool {
        match &self.token {
            Some(tok) => seq <= tok.last_granted_for(requester),
            None => {
                seq <= self
                    .lg_cache
                    .get(requester.index())
                    .copied()
                    .unwrap_or(SeqNum::ZERO)
            }
        }
    }

    /// Arms the collection window if the arbiter holds the token, is not in
    /// its critical section, and has something to schedule.
    ///
    /// Windows are *lazy*: an idle arbiter does not spin empty collection
    /// windows (as the literal Figure 1 pseudocode would); instead the
    /// window opens when the first request arrives. The schedule a request
    /// observes is identical — it waits exactly `T_req` — and matches the
    /// paper's light-load service-time formula (Eq. 3), which charges the
    /// full `T_req`.
    pub(crate) fn maybe_arm_collection(&mut self, out: &mut Outbox) {
        if self.is_arbiter
            && self.token.is_some()
            && !self.in_cs
            && !self.window_armed
            && !self.collect.is_empty()
        {
            self.window_armed = true;
            out.push(Action::SetTimer {
                timer: ArbiterTimer::CollectionEnd,
                after: self.cfg.t_collect,
            });
            out.push(Action::Note(Note::CollectionOpened));
        }
    }

    /// End of the collection window: seal the Q-list into the token and
    /// dispatch it (paper §2.1 "request collection phase" end).
    fn on_collection_end(&mut self, out: &mut Outbox) {
        self.window_armed = false;
        if !self.is_arbiter || self.token.is_none() || self.in_cs {
            return; // stale timer after role change
        }
        self.seal(out);
    }

    pub(crate) fn seal(&mut self, out: &mut Outbox) {
        // If we *are* the monitor, this seal doubles as a monitor visit:
        // merge the stored requests, reset the period counter, and rotate
        // the role onward if configured (otherwise the role would wedge on
        // a long-lived arbiter and visits would stop).
        let mut acted_as_monitor = false;
        if self.cfg.monitor.is_some() && self.monitor_cur == Some(self.id) {
            acted_as_monitor = true;
            if !self.monitor_store.is_empty() {
                let stored = std::mem::take(&mut self.monitor_store);
                out.push(Action::Note(Note::MonitorFlush {
                    merged: stored.len() as u32,
                }));
                self.collect.append(stored);
            }
            out.push(Action::Note(Note::MonitorVisit));
            if self.cfg.monitor.as_ref().is_some_and(|m| m.rotate) {
                let next = NodeId::from_index((self.id.index() + 1) % self.n);
                self.monitor_cur = Some(next);
            }
        }
        // Drop entries that were granted since being collected (the
        // token's L array, paper §2.4).
        let tok_ref = self.token.as_ref().expect("seal requires token");
        let lg = tok_ref.last_granted.clone();
        let mut q = QList::new();
        for e in std::mem::take(&mut self.collect) {
            let granted = lg.get(e.node.index()).copied().unwrap_or(SeqNum::ZERO);
            if e.seq > granted {
                q.push_back(e);
            }
        }
        match self.cfg.fairness {
            Fairness::Fcfs => {}
            Fairness::SeqNumFair => {
                let mut v: Vec<Entry> = q.into_iter().collect();
                v.sort_by_key(|e| e.seq);
                q = v.into_iter().collect();
            }
            Fairness::Priority => q.sort_by_priority(),
        }
        if q.is_empty() {
            // Nothing to schedule: remain the (idle) arbiter.
            return;
        }

        let head = q.head().expect("sealed list is non-empty");
        let new_arbiter = q.tail().expect("sealed list is non-empty");
        let q_len = q.len();
        let (round, epoch) = {
            let tok = self.token.as_mut().expect("seal requires token");
            tok.q = q.clone();
            tok.round += 1;
            (tok.round, tok.epoch)
        };
        out.push(Action::Note(Note::QListSealed { len: q_len as u32 }));
        self.observe_q_len(q_len);

        // Starvation-free: route the token through the monitor when the
        // NEW-ARBITER counter reaches the period (paper §4.1).
        if self.should_route_via_monitor() {
            self.route_via_monitor(round, out);
            return;
        }

        if acted_as_monitor {
            self.na_counter = 0;
        } else {
            self.na_counter = self.na_counter.saturating_add(1);
        }
        let q_for_broadcast = q;

        // Low-load optimization (paper §3.1): with a single scheduled node,
        // the token alone proves its arbitership, so it is excluded from
        // the broadcast.

        let except = if q_for_broadcast.len() == 1 {
            vec![new_arbiter]
        } else {
            Vec::new()
        };
        if !self.cfg.suppress_new_arbiter {
            out.push(Action::Broadcast {
                msg: ArbiterMsg::NewArbiter {
                    arbiter: new_arbiter,
                    q: q_for_broadcast.clone(),
                    prev: self.id,
                    round,
                    counter: self.na_counter,
                    epoch,
                    monitor: self.monitor_cur,
                },
                except,
            });
        }
        self.last_round = round;
        self.last_q_seen = q_for_broadcast;
        self.prev_arbiter = self.id;
        self.arbiter = new_arbiter;

        if head == self.id {
            // We are scheduled first: enter the CS now; the token moves on
            // after CsDone.
            self.enter_cs(out);
        } else {
            let tok = self.token.take().expect("token present while sealing");
            self.note_token_departure();
            out.push(Action::Send {
                to: head,
                msg: ArbiterMsg::Privilege(tok),
            });
        }

        if new_arbiter != self.id {
            self.is_arbiter = false;
            self.begin_forwarding(new_arbiter, out);
            self.watch_handover(new_arbiter, out);
        } else {
            // We are our own successor (we were the tail); keep collecting.
            self.arm_arbiter_wait(out);
        }
        // If we are scheduled (not at head), arm the token-wait timeout.
        if self.want_cs && !self.in_cs {
            if let Some(pos) = self.last_q_seen.position(self.id) {
                if pos > 0 {
                    self.waiting_confirmed = true;
                    self.arm_token_wait(pos, out);
                }
            }
        }
    }

    pub(crate) fn begin_forwarding(&mut self, target: NodeId, out: &mut Outbox) {
        self.forwarding_to = Some(target);
        out.push(Action::SetTimer {
            timer: ArbiterTimer::ForwardEnd,
            after: self.cfg.t_forward,
        });
        out.push(Action::Note(Note::ForwardingOpened { successor: target }));
    }

    fn on_forward_end(&mut self, out: &mut Outbox) {
        if self.forwarding_to.take().is_some() {
            out.push(Action::Note(Note::ForwardingClosed));
        }
    }

    #[allow(clippy::too_many_arguments)] // mirrors the NEW-ARBITER message fields
    fn on_new_arbiter(
        &mut self,
        arbiter: NodeId,
        q: QList,
        prev: NodeId,
        round: u64,
        counter: u32,
        epoch: u64,
        monitor: Option<NodeId>,
        out: &mut Outbox,
    ) {
        // A watcher's point-to-point re-send of the broadcast that elected
        // us (paper §6 lost-handover repair) carries the round we already
        // observed before crashing: `on_crash` keeps `last_round`, so the
        // plain staleness check would discard the repair forever while we
        // answer probes as a healthy non-arbiter — a permanent wedge.
        // Accept the equal round iff it names us and we lost the role.
        let handover_repair = round == self.last_round && arbiter == self.id && !self.is_arbiter;
        if round <= self.last_round && !handover_repair {
            return; // out-of-date broadcast overtaken by a newer one
        }
        self.last_round = round;
        if epoch > self.epoch {
            self.epoch = epoch;
        }
        self.na_counter = counter;
        self.observe_q_len(q.len());
        self.arbiter = arbiter;
        self.prev_arbiter = prev;
        if let Some(m) = monitor {
            if self.cfg.monitor.is_some() {
                self.monitor_cur = Some(m);
            }
        }
        self.last_q_seen = q.clone();
        self.had_token_recently = false;
        self.enquiring_arbiter = None;
        self.note_arbiter_observed(arbiter, out);
        if arbiter != self.id {
            self.abort_invalidation_superseded(out);
        }

        // Forwarding targets track the freshest arbiter.
        if self.forwarding_to.is_some() {
            self.forwarding_to = Some(arbiter);
        }

        // Implicit-acknowledgment logic (paper §6 "Lost Request"). Runs
        // before any arbiter-role change so that `waiting_confirmed` is
        // accurate when `become_arbiter` decides whether to fold our own
        // request into the new queue.
        if self.want_cs && !self.in_cs {
            if let Some(pos) = q.position(self.id) {
                self.waiting_confirmed = true;
                self.miss_count = 0;
                self.silent_retries = 0;
                out.push(Action::CancelTimer(ArbiterTimer::RequestRetry));
                self.arm_token_wait(pos, out);
            } else {
                // The NEW-ARBITER Q-list is the authoritative schedule: a
                // broadcast without us voids any earlier confirmation (our
                // entry was lost to a drop, a crash, or a regeneration
                // that excluded us).
                self.waiting_confirmed = false;
                self.cancel_requester_wait(out);
                self.miss_count += 1;
                if arbiter != self.id {
                    self.handle_missing_from_q(out);
                }
                // Each NEW-ARBITER proves the system is making progress, so
                // push the coarse retry timeout back: it exists only for
                // the no-broadcast-ever deadlock case.
                self.arm_request_retry(out);
            }
        }

        if arbiter == self.id && !self.is_arbiter {
            self.become_arbiter(out);
        } else if arbiter != self.id && self.is_arbiter && self.token.is_none() {
            // Another node took over (recovery path); stand down.
            self.is_arbiter = false;
            self.window_armed = false;
        }
    }

    /// Our outstanding request was absent from a NEW-ARBITER Q-list:
    /// escalate to the monitor after τ misses (starvation-free, §4.1) or
    /// retransmit to the new arbiter (basic, §6 "Lost Request").
    ///
    /// Retransmission distinguishes two signatures. If the arbitership
    /// moved away from the node we sent to, our request reached a node
    /// that is no longer collecting — it was forwarded or dropped — so we
    /// retransmit immediately. If the same arbiter sealed without us, our
    /// request merely crossed the seal boundary and sits in the next
    /// batch; we only retransmit after `miss_grace` consecutive misses.
    fn handle_missing_from_q(&mut self, out: &mut Outbox) {
        if let Some(mc) = self.cfg.monitor.clone() {
            if self.miss_count >= mc.tau.max(1) {
                let monitor = self.monitor_cur.unwrap_or(mc.monitor);
                if monitor == self.id {
                    self.monitor_store.push_back(self.own_entry());
                } else {
                    out.push(Action::Send {
                        to: monitor,
                        msg: ArbiterMsg::MonitorSubmit {
                            requester: self.id,
                            seq: self.my_seq,
                            priority: self.priority,
                        },
                    });
                }
                out.push(Action::Note(Note::RequestEscalated { requester: self.id }));
                self.miss_count = 0;
                return;
            }
        }
        if !self.cfg.retransmit_on_miss || self.waiting_confirmed {
            return;
        }
        let arbiter_moved = self
            .request_sent_to
            .is_some_and(|sent| sent != self.arbiter);
        if arbiter_moved || self.miss_count >= self.cfg.miss_grace.max(1) {
            self.request_sent_to = Some(self.arbiter);
            out.push(Action::Send {
                to: self.arbiter,
                msg: ArbiterMsg::Request {
                    requester: self.id,
                    seq: self.my_seq,
                    priority: self.priority,
                    hops: 0,
                },
            });
            out.push(Action::Note(Note::RequestRetransmitted {
                requester: self.id,
                misses: self.miss_count,
            }));
        }
    }

    pub(crate) fn become_arbiter(&mut self, out: &mut Outbox) {
        self.is_arbiter = true;
        self.collect = QList::new();
        if self.want_cs && !self.waiting_confirmed && !self.in_cs {
            // Fold our not-yet-scheduled request into our own queue.
            self.collect.push_back(self.own_entry());
        }
        out.push(Action::Note(Note::BecameArbiter));
        self.arm_arbiter_wait(out);
        self.maybe_arm_collection(out);
    }

    fn on_privilege(&mut self, tok: Token, out: &mut Outbox) {
        if tok.epoch < self.epoch {
            // A regenerated token superseded this one (paper §6): discard.
            out.push(Action::Note(Note::StaleTokenDiscarded));
            return;
        }
        if let Some(cur) = &self.token {
            // Duplicate tokens can transiently coexist when concurrent
            // recoveries race; keep the stronger lineage and retire the
            // other so exactly one survives.
            if (tok.epoch, tok.round) <= (cur.epoch, cur.round) {
                out.push(Action::Note(Note::StaleTokenDiscarded));
                return;
            }
            out.push(Action::Note(Note::StaleTokenDiscarded));
            self.token = None;
        }
        self.epoch = tok.epoch;
        self.lg_cache.clone_from(&tok.last_granted);
        self.token = Some(tok);
        self.cancel_token_wait(out);
        self.abort_invalidation_token_arrived(out);
        self.self_report_token(out);

        let tok_ref = self.token.as_ref().expect("just stored");
        if tok_ref.via_monitor {
            // The sealing arbiter addressed us as the monitor; honor it
            // even if we believe the role has rotated onward (views of the
            // current monitor can lag — the flag is authoritative).
            self.monitor_flush(out);
            return;
        }

        match tok_ref.q.head() {
            Some(h) if h == self.id => {
                if self.want_cs {
                    self.enter_cs(out);
                } else {
                    out.push(Action::Note(Note::SpuriousGrant));
                    self.advance_token(out);
                }
                // The token is proof of arbitership (paper §3.1): if the
                // sealed list names us as its tail, we are the next
                // arbiter *now* — Figure 1's arbiter collects requests
                // while still executing its own critical section. (With
                // the single-entry broadcast optimization, no NEW-ARBITER
                // message ever tells us.)
                let is_tail = self
                    .token
                    .as_ref()
                    .is_some_and(|t| t.q.tail() == Some(self.id) || t.q.is_empty());
                if is_tail && !self.is_arbiter {
                    self.arbiter = self.id;
                    self.become_arbiter(out);
                }
            }
            Some(h) => {
                // Misrouted (can occur transiently during recovery):
                // forward toward the rightful head.
                let tok = self.token.take().expect("token present");
                self.note_token_departure();
                out.push(Action::Send {
                    to: h,
                    msg: ArbiterMsg::Privilege(tok),
                });
            }
            None => {
                // An empty token parks here; we act as arbiter-with-token.
                if !self.is_arbiter {
                    self.become_arbiter(out);
                } else {
                    self.maybe_arm_collection(out);
                }
            }
        }
    }

    pub(crate) fn enter_cs(&mut self, out: &mut Outbox) {
        debug_assert!(self.token.is_some(), "CS entry requires the token");
        self.in_cs = true;
        self.waiting_confirmed = false;
        self.deferred_pass = false;
        self.miss_count = 0;
        let seq = self.my_seq;
        if let Some(tok) = self.token.as_mut() {
            tok.record_grant(self.id, seq);
        }
        if let Some(slot) = self.lg_cache.get_mut(self.id.index()) {
            *slot = seq;
        }
        self.cancel_token_wait(out);
        if self.cfg.request_retry.is_some() {
            out.push(Action::CancelTimer(ArbiterTimer::RequestRetry));
        }
        out.push(Action::EnterCs);
    }

    fn on_cs_done(&mut self, out: &mut Outbox) {
        debug_assert!(self.in_cs, "CsDone without a critical section");
        self.in_cs = false;
        self.want_cs = false;
        self.advance_token(out);
    }

    /// After executing (or skipping) our turn: remove ourselves from the
    /// head and move the token along, or assume arbitership if the list is
    /// exhausted (we were the tail).
    pub(crate) fn advance_token(&mut self, out: &mut Outbox) {
        let Some(tok) = self.token.as_mut() else {
            return;
        };
        // Normally we sit at the head; after a recovery race we may hold
        // an adopted token that schedules us elsewhere (or not at all) —
        // remove our entry wherever it is.
        tok.q.remove(self.id);
        if self.suspended {
            // An ENQUIRY froze us; pass (or park) only after RESUME.
            self.deferred_pass = true;
            return;
        }
        self.dispatch_token(out);
    }

    /// Sends the token to the next head, or parks it here when we are the
    /// new arbiter (empty list).
    pub(crate) fn dispatch_token(&mut self, out: &mut Outbox) {
        let Some(tok) = self.token.as_ref() else {
            return;
        };
        if tok.epoch < self.epoch {
            // A regeneration superseded the token we hold (we learned the
            // new epoch mid-critical-section): retire it rather than keep
            // a dead token in circulation.
            self.token = None;
            out.push(Action::Note(Note::StaleTokenDiscarded));
            return;
        }
        match tok.q.head() {
            Some(next) if next == self.id => {
                // A recovery race re-scheduled us at the head of the very
                // token we hold (e.g. a regenerated list adopted while our
                // previous entry was mid-flight). Serve or skip ourselves.
                if self.want_cs && !self.in_cs {
                    self.enter_cs(out);
                } else {
                    let tok = self.token.as_mut().expect("token present");
                    tok.q.remove(self.id);
                    out.push(Action::Note(Note::SpuriousGrant));
                    self.dispatch_token(out);
                }
            }
            Some(next) => {
                let tok = self.token.take().expect("token present");
                self.note_token_departure();
                out.push(Action::Send {
                    to: next,
                    msg: ArbiterMsg::Privilege(tok),
                });
            }
            None => {
                // We were the tail: the token stays and we are the arbiter.
                if !self.is_arbiter {
                    self.become_arbiter(out);
                } else {
                    self.arm_arbiter_wait(out);
                    self.maybe_arm_collection(out);
                }
            }
        }
    }

    pub(crate) fn note_token_departure(&mut self) {
        self.had_token_recently = true;
        self.suspended = false;
        self.deferred_pass = false;
    }

    fn on_crash(&mut self) {
        self.alive = false;
        self.is_arbiter = false;
        self.collect = QList::new();
        self.window_armed = false;
        self.forwarding_to = None;
        self.token = None;
        self.in_cs = false;
        self.want_cs = false;
        self.waiting_confirmed = false;
        self.miss_count = 0;
        self.monitor_store = QList::new();
        self.recovery_state = RecoveryState::Idle;
        self.suspended = false;
        self.deferred_pass = false;
        self.had_token_recently = false;
        self.watching = None;
        self.enquiring_arbiter = None;
    }

    fn on_recover(&mut self) {
        self.alive = true;
        // Rejoin as a regular node; the next NEW-ARBITER teaches us the
        // current arbiter, round, and epoch.
    }
}

impl Protocol for ArbiterNode {
    type Msg = ArbiterMsg;
    type Timer = ArbiterTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<ArbiterMsg, ArbiterTimer>) -> Outbox {
        let mut out = Outbox::new();
        if !self.alive {
            match input {
                Input::Start => self.on_start(&mut out),
                Input::Recover => self.on_recover(),
                _ => {}
            }
            return out;
        }
        match input {
            Input::Start => self.on_start(&mut out),
            Input::RequestCs => self.on_request_cs(&mut out),
            Input::CsDone => self.on_cs_done(&mut out),
            Input::Crash => self.on_crash(),
            Input::Recover => self.on_recover(),
            Input::Timer(t) => match t {
                ArbiterTimer::CollectionEnd => self.on_collection_end(&mut out),
                ArbiterTimer::ForwardEnd => self.on_forward_end(&mut out),
                ArbiterTimer::TokenWait => self.on_token_wait(&mut out),
                ArbiterTimer::ArbiterWait => self.on_arbiter_wait(&mut out),
                ArbiterTimer::EnquiryTimeout => self.on_enquiry_timeout(&mut out),
                ArbiterTimer::HandoverWatch => self.on_handover_watch(&mut out),
                ArbiterTimer::ProbeTimeout => self.on_probe_timeout(&mut out),
                ArbiterTimer::RequestRetry => self.on_request_retry(&mut out),
            },
            Input::Deliver { from, msg } => match msg {
                ArbiterMsg::Request {
                    requester,
                    seq,
                    priority,
                    hops,
                } => self.on_request(requester, seq, priority, hops, &mut out),
                ArbiterMsg::Privilege(tok) => self.on_privilege(tok, &mut out),
                ArbiterMsg::NewArbiter {
                    arbiter,
                    q,
                    prev,
                    round,
                    counter,
                    epoch,
                    monitor,
                } => {
                    self.on_new_arbiter(arbiter, q, prev, round, counter, epoch, monitor, &mut out)
                }
                ArbiterMsg::MonitorSubmit {
                    requester,
                    seq,
                    priority,
                } => self.on_monitor_submit(requester, seq, priority, &mut out),
                ArbiterMsg::Warning { round } => self.on_warning(from, round, &mut out),
                ArbiterMsg::Enquiry { epoch } => self.on_enquiry(from, epoch, &mut out),
                ArbiterMsg::EnquiryReply { status } => {
                    self.on_enquiry_reply(from, status, &mut out)
                }
                ArbiterMsg::Resume => self.on_resume(&mut out),
                ArbiterMsg::Invalidate { epoch } => self.on_invalidate(epoch, &mut out),
                ArbiterMsg::Probe => self.on_probe(from, &mut out),
                ArbiterMsg::ProbeAck { arbiter } => self.on_probe_ack(from, arbiter, &mut out),
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.token.is_some()
    }

    fn algorithm(&self) -> &'static str {
        if self.cfg.recovery.is_some() {
            "arbiter-ft"
        } else if self.cfg.monitor.is_some() {
            "arbiter-sf"
        } else {
            "arbiter"
        }
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}
