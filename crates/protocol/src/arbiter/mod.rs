//! The Banerjee–Chrysanthis rotating-arbiter token-passing algorithm
//! (ICDCS 1996) — the paper's primary contribution.
//!
//! # Algorithm sketch
//!
//! A single PRIVILEGE *token* circulates; only the holder may execute its
//! critical section. The token carries an ordered *Q-list* of scheduled
//! requesters. One node at a time is the *arbiter*: it batches REQUEST
//! messages during a timed *request collection phase*, seals them into the
//! token's Q-list, sends the token to the list's head, and broadcasts
//! NEW-ARBITER naming the list's *tail* as the next arbiter. The old
//! arbiter forwards stragglers to its successor for a bounded *request
//! forwarding phase*, after which late requests are dropped (requesters
//! detect the omission in the NEW-ARBITER Q-list and retransmit).
//!
//! At heavy load this costs `3 − 2/N` messages per critical section
//! (approaching 3); at light load `(N² − 1)/N` (approaching `N`).
//!
//! # Variants
//!
//! * **Basic** — [`ArbiterConfig::basic`] (paper §2).
//! * **Starvation-free** — [`ArbiterConfig::starvation_free`] adds the
//!   *monitor* node of §4.1: requests forwarded more than τ times are
//!   dropped and escalated to the monitor, which the token visits with an
//!   adaptive period derived from the average Q-list size.
//! * **Fault-tolerant** — [`ArbiterConfig::fault_tolerant`] additionally
//!   enables §6 recovery: lost-request retransmission, the two-phase token
//!   invalidation protocol (WARNING/ENQUIRY/RESUME/INVALIDATE), and
//!   previous-arbiter takeover of a failed arbiter.

mod config;
mod messages;
mod monitor;
mod node;
mod recovery;

pub use config::{ArbiterConfig, Fairness, MonitorConfig, MonitorPeriod, RecoveryConfig};
pub use messages::{ArbiterMsg, ArbiterTimer, Token, TokenStatus};
pub use node::ArbiterNode;
