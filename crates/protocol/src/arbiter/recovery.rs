//! Failure recovery: token loss, lost requests, failed arbiters (paper §6).
//!
//! These methods extend [`ArbiterNode`]; they are inert unless
//! [`crate::arbiter::ArbiterConfig::recovery`] is set.

use crate::arbiter::messages::{ArbiterMsg, ArbiterTimer, Token, TokenStatus};
use crate::arbiter::node::{ArbiterNode, Outbox};
use crate::event::{Action, Note};
use crate::qlist::QList;
use crate::types::NodeId;

/// Progress of the two-phase token invalidation protocol at the arbiter.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub(crate) enum RecoveryState {
    /// Normal operation.
    #[default]
    Idle,
    /// Phase 1: ENQUIRY messages are out; collecting replies.
    Enquiring {
        /// Nodes that have not replied yet.
        pending: Vec<NodeId>,
        /// Nodes that replied "I am waiting for the token".
        waiting: Vec<NodeId>,
        /// Every node enquired this round (reused by the second round).
        targets: Vec<NodeId>,
        /// True once a second enquiry round has been issued.
        second_round: bool,
    },
}

impl ArbiterNode {
    fn recovery_enabled(&self) -> bool {
        self.cfg.recovery.is_some()
    }

    /// Arms the token-wait timeout for a node scheduled at Q-list position
    /// `pos` (deeper positions expect the token later).
    pub(crate) fn arm_token_wait(&mut self, pos: usize, out: &mut Outbox) {
        let Some(rc) = &self.cfg.recovery else {
            return;
        };
        out.push(Action::SetTimer {
            timer: ArbiterTimer::TokenWait,
            after: rc
                .token_wait_base
                .saturating_add(rc.token_wait_per_position * pos as u64),
        });
    }

    /// Cancels token-wait timeouts (the token arrived).
    pub(crate) fn cancel_token_wait(&mut self, out: &mut Outbox) {
        if !self.recovery_enabled() {
            return;
        }
        out.push(Action::CancelTimer(ArbiterTimer::TokenWait));
        out.push(Action::CancelTimer(ArbiterTimer::ArbiterWait));
    }

    /// Cancels only the requester-side wait (our scheduling was voided).
    pub(crate) fn cancel_requester_wait(&mut self, out: &mut Outbox) {
        if self.recovery_enabled() {
            out.push(Action::CancelTimer(ArbiterTimer::TokenWait));
        }
    }

    /// Arms the arbiter's own token-wait timeout (paper §6: "every
    /// requesting node (including the current arbiter) selects an
    /// appropriate timeout to receive the token").
    pub(crate) fn arm_arbiter_wait(&mut self, out: &mut Outbox) {
        let Some(rc) = &self.cfg.recovery else {
            return;
        };
        if self.token.is_some() {
            return;
        }
        let depth = self.last_q_seen.len().max(1);
        out.push(Action::SetTimer {
            timer: ArbiterTimer::ArbiterWait,
            after: rc
                .token_wait_base
                .saturating_add(rc.token_wait_per_position * depth as u64),
        });
    }

    /// A scheduled requester timed out: warn the arbiter (paper §6).
    pub(crate) fn on_token_wait(&mut self, out: &mut Outbox) {
        if !self.recovery_enabled() || !self.want_cs || self.token.is_some() || self.in_cs {
            return;
        }
        if self.arbiter == self.id {
            self.start_invalidation(out);
            return;
        }
        out.push(Action::Send {
            to: self.arbiter,
            msg: ArbiterMsg::Warning {
                round: self.last_round,
            },
        });
        out.push(Action::Note(Note::TokenWarning));
        // Re-arm: if recovery stalls (e.g. the WARNING is lost) we warn
        // again rather than hang forever.
        if let Some(pos) = self.last_q_seen.position(self.id) {
            self.arm_token_wait(pos, out);
        } else {
            self.arm_token_wait(0, out);
        }
    }

    /// The arbiter's own token-wait expired.
    pub(crate) fn on_arbiter_wait(&mut self, out: &mut Outbox) {
        if self.is_arbiter && self.token.is_none() {
            self.start_invalidation(out);
        }
    }

    /// A WARNING arrived (paper §6: "When the arbiter receives a WARNING
    /// message ... it starts a two-phase token invalidation protocol").
    ///
    /// A WARNING is addressed to the node the *warner* believes is the
    /// current arbiter. If we are not acting as arbiter but the warner's
    /// round is at least as fresh as ours, our own election announcement
    /// was lost in transit — accept the role and recover.
    pub(crate) fn on_warning(&mut self, _from: NodeId, round: u64, out: &mut Outbox) {
        if self.is_arbiter {
            self.start_invalidation(out);
            return;
        }
        if !self.recovery_enabled() || round < self.last_round {
            return; // stale warning from an out-of-date node
        }
        self.arbiter = self.id;
        self.become_arbiter(out);
        self.start_invalidation(out);
    }

    /// Phase 1 of the two-phase token invalidation protocol: enquire every
    /// node on the last sealed Q-list plus the previous arbiter (paper §6).
    pub(crate) fn start_invalidation(&mut self, out: &mut Outbox) {
        if !self.recovery_enabled()
            || self.token.is_some()
            || matches!(self.recovery_state, RecoveryState::Enquiring { .. })
        {
            return;
        }
        out.push(Action::Note(Note::InvalidationStarted));
        let mut targets: Vec<NodeId> = self.last_q_seen.nodes().collect();
        if !targets.contains(&self.prev_arbiter) {
            targets.push(self.prev_arbiter);
        }
        // The token also travels through the monitor (§4.1).
        if let Some(m) = self.monitor_cur {
            if !targets.contains(&m) {
                targets.push(m);
            }
        }
        targets.retain(|&t| t != self.id);
        if targets.is_empty() {
            self.recovery_state = RecoveryState::Enquiring {
                pending: Vec::new(),
                waiting: Vec::new(),
                targets: Vec::new(),
                second_round: true,
            };
            self.conclude_invalidation(out);
            return;
        }
        for &t in &targets {
            out.push(Action::Send {
                to: t,
                msg: ArbiterMsg::Enquiry { epoch: self.epoch },
            });
        }
        self.recovery_state = RecoveryState::Enquiring {
            pending: targets.clone(),
            waiting: Vec::new(),
            targets,
            second_round: false,
        };
        let timeout = self
            .cfg
            .recovery
            .as_ref()
            .expect("recovery enabled")
            .enquiry_timeout;
        out.push(Action::SetTimer {
            timer: ArbiterTimer::EnquiryTimeout,
            after: timeout,
        });
    }

    /// Answer an ENQUIRY with our token status; holders suspend until
    /// RESUME (paper §6 phase 1).
    pub(crate) fn on_enquiry(&mut self, from: NodeId, epoch: u64, out: &mut Outbox) {
        if epoch > self.epoch {
            self.epoch = epoch;
        }
        // Remember who is enquiring: should the token arrive here while
        // the enquiry is still open, we self-report (phase 1 would
        // otherwise miss a token that was in flight when it ran).
        self.enquiring_arbiter = Some(from);
        let status = if self.token.is_some() {
            self.suspended = true;
            TokenStatus::HaveToken
        } else if self.had_token_recently {
            TokenStatus::HadToken
        } else if self.want_cs && self.waiting_confirmed {
            TokenStatus::Waiting
        } else {
            TokenStatus::Idle
        };
        out.push(Action::Send {
            to: from,
            msg: ArbiterMsg::EnquiryReply { status },
        });
    }

    /// The token landed here while an enquiry was open: self-report as the
    /// holder and suspend until RESUME.
    pub(crate) fn self_report_token(&mut self, out: &mut Outbox) {
        if !self.recovery_enabled() {
            return;
        }
        if let Some(arbiter) = self.enquiring_arbiter.take() {
            if arbiter != self.id {
                self.suspended = true;
                out.push(Action::Send {
                    to: arbiter,
                    msg: ArbiterMsg::EnquiryReply {
                        status: TokenStatus::HaveToken,
                    },
                });
            }
        }
    }

    /// Collect phase-1 replies at the enquiring arbiter.
    pub(crate) fn on_enquiry_reply(&mut self, from: NodeId, status: TokenStatus, out: &mut Outbox) {
        let RecoveryState::Enquiring {
            pending, waiting, ..
        } = &mut self.recovery_state
        else {
            // Late reply after conclusion; if it claims the token lives,
            // let it resume (the regenerated epoch will win regardless).
            if status == TokenStatus::HaveToken {
                out.push(Action::Send {
                    to: from,
                    msg: ArbiterMsg::Resume,
                });
            }
            return;
        };
        pending.retain(|&p| p != from);
        match status {
            TokenStatus::HaveToken => {
                // Phase 2, token found: resume normal operation (paper §6).
                self.recovery_state = RecoveryState::Idle;
                out.push(Action::CancelTimer(ArbiterTimer::EnquiryTimeout));
                out.push(Action::Send {
                    to: from,
                    msg: ArbiterMsg::Resume,
                });
                out.push(Action::Note(Note::TokenFound));
                self.arm_arbiter_wait(out);
            }
            TokenStatus::Waiting => {
                if !waiting.contains(&from) {
                    waiting.push(from);
                }
                if pending.is_empty() {
                    self.conclude_invalidation(out);
                }
            }
            TokenStatus::HadToken | TokenStatus::Idle => {
                if pending.is_empty() {
                    self.conclude_invalidation(out);
                }
            }
        }
    }

    /// Phase-1 timeout: non-responders are treated as failed (paper §6).
    pub(crate) fn on_enquiry_timeout(&mut self, out: &mut Outbox) {
        if matches!(self.recovery_state, RecoveryState::Enquiring { .. }) {
            self.conclude_invalidation(out);
        }
    }

    /// Phase 2, token lost: mint a new epoch, INVALIDATE the waiters, and
    /// regenerate the token with the waiting nodes at the front of the
    /// Q-list (paper §6).
    pub(crate) fn conclude_invalidation(&mut self, out: &mut Outbox) {
        let RecoveryState::Enquiring {
            waiting,
            targets,
            second_round,
            ..
        } = std::mem::take(&mut self.recovery_state)
        else {
            return;
        };
        out.push(Action::CancelTimer(ArbiterTimer::EnquiryTimeout));
        if self.token.is_some() {
            // The "lost" token arrived (it was merely slow) while replies
            // were being collected: no regeneration needed.
            out.push(Action::Note(Note::TokenFound));
            return;
        }
        if !second_round && !targets.is_empty() {
            // A token that was *in flight* during round one has landed by
            // now (round duration far exceeds a message delay) and its
            // holder either self-reported or will answer this round. Only
            // a silent second round proves real loss.
            for &t in &targets {
                out.push(Action::Send {
                    to: t,
                    msg: ArbiterMsg::Enquiry { epoch: self.epoch },
                });
            }
            self.recovery_state = RecoveryState::Enquiring {
                pending: targets.clone(),
                waiting,
                targets,
                second_round: true,
            };
            let timeout = self
                .cfg
                .recovery
                .as_ref()
                .expect("recovery enabled")
                .enquiry_timeout;
            out.push(Action::SetTimer {
                timer: ArbiterTimer::EnquiryTimeout,
                after: timeout,
            });
            return;
        }
        self.epoch += 1;
        out.push(Action::Note(Note::TokenRegenerated));
        // Every live node must learn the new epoch immediately, or a slow
        // copy of the dead token could still grant a critical section at a
        // node that has not heard of the regeneration.
        out.push(Action::Broadcast {
            msg: ArbiterMsg::Invalidate { epoch: self.epoch },
            except: Vec::new(),
        });
        // Waiting nodes go to the front, in their original Q-list order;
        // non-responders are excluded.
        let mut front: QList = self
            .last_q_seen
            .iter()
            .filter(|e| waiting.contains(&e.node))
            .copied()
            .collect();
        let tail = std::mem::take(&mut self.collect);
        front.append(tail);
        self.collect = front;
        self.token = Some(Token {
            q: QList::new(),
            last_granted: self.lg_cache.clone(),
            round: self.last_round,
            epoch: self.epoch,
            via_monitor: false,
        });
        if !self.is_arbiter {
            self.become_arbiter(out);
        }
        self.maybe_arm_collection(out);
    }

    /// The token arrived while a two-phase invalidation was in flight:
    /// abort the enquiry — regular operation resumes.
    pub(crate) fn abort_invalidation_token_arrived(&mut self, out: &mut Outbox) {
        if matches!(self.recovery_state, RecoveryState::Enquiring { .. }) {
            self.recovery_state = RecoveryState::Idle;
            out.push(Action::CancelTimer(ArbiterTimer::EnquiryTimeout));
            out.push(Action::Note(Note::TokenFound));
        }
    }

    /// A NEW-ARBITER from another node supersedes any invalidation this
    /// node was running: custody has visibly moved on.
    pub(crate) fn abort_invalidation_superseded(&mut self, out: &mut Outbox) {
        if matches!(self.recovery_state, RecoveryState::Enquiring { .. }) {
            self.recovery_state = RecoveryState::Idle;
            out.push(Action::CancelTimer(ArbiterTimer::EnquiryTimeout));
        }
    }

    /// A suspended holder may proceed (paper §6 phase 2, token found).
    pub(crate) fn on_resume(&mut self, out: &mut Outbox) {
        self.suspended = false;
        self.enquiring_arbiter = None;
        if self.deferred_pass && !self.in_cs {
            self.deferred_pass = false;
            self.dispatch_token(out);
        }
    }

    /// The token was declared lost: discard any stale-epoch token we might
    /// later receive and keep waiting for the regenerated one (paper §6).
    pub(crate) fn on_invalidate(&mut self, epoch: u64, out: &mut Outbox) {
        if epoch > self.epoch {
            self.epoch = epoch;
        }
        self.enquiring_arbiter = None;
        if let Some(tok) = &self.token {
            if tok.epoch < self.epoch && !self.in_cs {
                self.token = None;
                self.suspended = false;
                self.deferred_pass = false;
                out.push(Action::Note(Note::StaleTokenDiscarded));
            }
        }
        if self.want_cs && !self.in_cs && self.waiting_confirmed {
            // The regenerated token schedules us at the front; re-arm the
            // wait so another loss is also caught.
            self.arm_token_wait(1, out);
        }
    }

    /// After handing the token to a successor arbiter, keep monitoring it
    /// (paper §6, "Failed Arbiter node": "The current arbiter is monitored
    /// by the previous arbiter"). The watch persists — re-armed by every
    /// NEW-ARBITER that re-elects the target and by every PROBE-ACK —
    /// until some *other* node becomes arbiter, at which point that NA's
    /// sealer takes over the watching duty.
    pub(crate) fn watch_handover(&mut self, target: NodeId, out: &mut Outbox) {
        let Some(rc) = &self.cfg.recovery else {
            return;
        };
        if target == self.id {
            return;
        }
        self.watching = Some(target);
        out.push(Action::SetTimer {
            timer: ArbiterTimer::HandoverWatch,
            after: rc.handover_watch,
        });
    }

    /// A NEW-ARBITER arrived: re-arm the watch if it re-elects our target,
    /// drop it if custody moved to another chain.
    pub(crate) fn note_arbiter_observed(&mut self, arbiter: NodeId, out: &mut Outbox) {
        let Some(rc) = &self.cfg.recovery else {
            return;
        };
        let Some(w) = self.watching else {
            return;
        };
        if arbiter == w {
            out.push(Action::SetTimer {
                timer: ArbiterTimer::HandoverWatch,
                after: rc.handover_watch,
            });
        } else {
            self.watching = None;
            out.push(Action::CancelTimer(ArbiterTimer::HandoverWatch));
            out.push(Action::CancelTimer(ArbiterTimer::ProbeTimeout));
        }
    }

    /// Handover watch expired without progress: probe the arbiter.
    pub(crate) fn on_handover_watch(&mut self, out: &mut Outbox) {
        let Some(rc) = &self.cfg.recovery else {
            return;
        };
        let Some(w) = self.watching else {
            return;
        };
        out.push(Action::Send {
            to: w,
            msg: ArbiterMsg::Probe,
        });
        out.push(Action::SetTimer {
            timer: ArbiterTimer::ProbeTimeout,
            after: rc.probe_timeout,
        });
    }

    /// Any live node answers a probe, reporting whether it actually holds
    /// the arbiter role.
    pub(crate) fn on_probe(&mut self, from: NodeId, out: &mut Outbox) {
        out.push(Action::Send {
            to: from,
            msg: ArbiterMsg::ProbeAck {
                arbiter: self.is_arbiter,
            },
        });
    }

    /// The probed arbiter is alive. If it does not consider itself the
    /// arbiter, the NEW-ARBITER announcing its election was lost: re-send
    /// it point-to-point (the watcher is the sealer, so its `last_q_seen`
    /// and `last_round` are exactly that announcement).
    pub(crate) fn on_probe_ack(&mut self, from: NodeId, arbiter: bool, out: &mut Outbox) {
        let Some(rc) = &self.cfg.recovery else {
            return;
        };
        out.push(Action::CancelTimer(ArbiterTimer::ProbeTimeout));
        if self.watching != Some(from) {
            return;
        }
        if !arbiter {
            out.push(Action::Send {
                to: from,
                msg: ArbiterMsg::NewArbiter {
                    arbiter: from,
                    q: self.last_q_seen.clone(),
                    prev: self.prev_arbiter,
                    round: self.last_round,
                    counter: self.na_counter,
                    epoch: self.epoch,
                    monitor: self.monitor_cur,
                },
            });
        }
        out.push(Action::SetTimer {
            timer: ArbiterTimer::HandoverWatch,
            after: rc.handover_watch,
        });
    }

    /// No PROBE-ACK: the arbiter failed; the previous arbiter proclaims
    /// itself the current arbiter and recovers the token (paper §6).
    pub(crate) fn on_probe_timeout(&mut self, out: &mut Outbox) {
        if !self.recovery_enabled() || self.watching.is_none() {
            return;
        }
        self.watching = None;
        out.push(Action::Note(Note::ArbiterTakeover));
        self.arbiter = self.id;
        self.last_round += 1;
        out.push(Action::Broadcast {
            msg: ArbiterMsg::NewArbiter {
                arbiter: self.id,
                q: self.last_q_seen.clone(),
                prev: self.id,
                round: self.last_round,
                counter: self.na_counter,
                epoch: self.epoch,
                monitor: self.monitor_cur,
            },
            except: Vec::new(),
        });
        if !self.is_arbiter {
            self.become_arbiter(out);
        }
        self.start_invalidation(out);
    }
}
