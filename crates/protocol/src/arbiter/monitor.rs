//! Starvation-free variant: the monitor node (paper §4.1).
//!
//! These methods extend [`ArbiterNode`]; they are inert unless
//! [`crate::arbiter::ArbiterConfig::monitor`] is set.

use crate::arbiter::config::MonitorPeriod;
use crate::arbiter::messages::ArbiterMsg;
use crate::arbiter::node::{ArbiterNode, Outbox};
use crate::event::{Action, Note};
use crate::qlist::Entry;
use crate::types::{NodeId, Priority, SeqNum};

impl ArbiterNode {
    /// Records an observed Q-list length in the moving window used by the
    /// adaptive monitor period (paper §4.1: "each node keeps track of the
    /// size of the Q-list by observing the NEW-ARBITER messages").
    pub(crate) fn observe_q_len(&mut self, len: usize) {
        let cap = match self.cfg.monitor.as_ref().map(|m| m.period) {
            Some(MonitorPeriod::Adaptive { window }) => window.max(1),
            _ => 16,
        };
        if self.q_window.len() == cap {
            self.q_window.pop_front();
        }
        self.q_window.push_back(len as u32);
    }

    /// The moving-window average Q-list size (1.0 when nothing observed).
    pub(crate) fn avg_q_len(&self) -> f64 {
        if self.q_window.is_empty() {
            return 1.0;
        }
        let sum: u64 = self.q_window.iter().map(|&v| u64::from(v)).sum();
        sum as f64 / self.q_window.len() as f64
    }

    /// Decides whether this seal must route the token through the monitor:
    /// the NEW-ARBITER counter has reached the period (paper §4.1).
    pub(crate) fn should_route_via_monitor(&self) -> bool {
        let Some(mc) = &self.cfg.monitor else {
            return false;
        };
        let monitor = self.monitor_cur.unwrap_or(mc.monitor);
        if monitor == self.id {
            // We are the monitor: our seal already merged the stored
            // requests; no detour needed.
            return false;
        }
        let next = self.na_counter.saturating_add(1);
        match mc.period {
            MonitorPeriod::Adaptive { .. } => f64::from(next) >= self.avg_q_len().ceil(),
            MonitorPeriod::Fixed { every } => next >= every.max(1),
        }
    }

    /// Sends the sealed token to the monitor instead of the Q-list head.
    /// No NEW-ARBITER is broadcast — the monitor broadcasts it after
    /// augmenting the Q-list (paper §4.1).
    pub(crate) fn route_via_monitor(&mut self, round: u64, out: &mut Outbox) {
        let monitor = self
            .monitor_cur
            .expect("route_via_monitor requires a monitor");
        {
            let tok = self.token.as_mut().expect("token present while sealing");
            tok.via_monitor = true;
        }
        // If we are scheduled in the outgoing list, remember it so the
        // token-wait timeout still guards us (recovery).
        if self.want_cs && !self.in_cs {
            let tok = self.token.as_ref().expect("token present");
            if let Some(pos) = tok.q.position(self.id) {
                self.waiting_confirmed = true;
                self.arm_token_wait(pos + 1, out);
            }
        }
        let tok = self.token.take().expect("token present while sealing");
        self.note_token_departure();
        out.push(Action::Send {
            to: monitor,
            msg: ArbiterMsg::Privilege(tok),
        });
        let _ = round;
        self.is_arbiter = false;
        self.begin_forwarding(monitor, out);
        self.watch_handover(monitor, out);
    }

    /// The monitor received a routed token: append stored requests, reset
    /// the period counter, broadcast NEW-ARBITER, and send the token to the
    /// head (paper §4.1).
    pub(crate) fn monitor_flush(&mut self, out: &mut Outbox) {
        out.push(Action::Note(Note::MonitorVisit));
        // Merge stored requests (stale ones filtered against the token).
        let stored = std::mem::take(&mut self.monitor_store);
        let mut merged = 0u32;
        {
            let tok = self.token.as_mut().expect("monitor_flush requires token");
            tok.via_monitor = false;
            for e in stored {
                if e.seq > tok.last_granted_for(e.node) && !tok.q.contains(e.node) {
                    tok.q.push_back(e);
                    merged += 1;
                }
            }
            tok.round += 1;
        }
        if merged > 0 {
            out.push(Action::Note(Note::MonitorFlush { merged }));
        }
        // Rotate the monitor role if configured (paper §5.1).
        let rotate = self.cfg.monitor.as_ref().is_some_and(|m| m.rotate);
        if rotate {
            let next = NodeId::from_index((self.id.index() + 1) % self.n);
            self.monitor_cur = Some(next);
        }
        self.na_counter = 0;

        let (q, round, epoch) = {
            let tok = self.token.as_ref().expect("token present");
            (tok.q.clone(), tok.round, tok.epoch)
        };
        let (Some(head), Some(new_arbiter)) = (q.head(), q.tail()) else {
            // A routed token with an empty list (possible only through a
            // corrupted or forged frame): park it and act as its arbiter.
            if !self.is_arbiter {
                self.arbiter = self.id;
                self.become_arbiter(out);
            } else {
                self.maybe_arm_collection(out);
            }
            return;
        };

        out.push(Action::Broadcast {
            msg: ArbiterMsg::NewArbiter {
                arbiter: new_arbiter,
                q: q.clone(),
                prev: self.id,
                round,
                counter: 0,
                epoch,
                monitor: self.monitor_cur,
            },
            except: Vec::new(),
        });
        self.last_round = round;
        self.last_q_seen = q.clone();
        self.prev_arbiter = self.id;
        self.arbiter = new_arbiter;

        if self.want_cs && !self.in_cs {
            if let Some(pos) = q.position(self.id) {
                self.waiting_confirmed = true;
                self.miss_count = 0;
                if pos > 0 {
                    self.arm_token_wait(pos, out);
                }
            }
        }

        if head == self.id {
            if self.want_cs {
                self.enter_cs(out);
            } else {
                out.push(Action::Note(Note::SpuriousGrant));
                self.advance_token(out);
            }
        } else {
            let tok = self.token.take().expect("token present");
            self.note_token_departure();
            out.push(Action::Send {
                to: head,
                msg: ArbiterMsg::Privilege(tok),
            });
        }

        if new_arbiter == self.id {
            if !self.is_arbiter {
                self.become_arbiter(out);
            }
        } else {
            if self.is_arbiter {
                self.is_arbiter = false;
                self.window_armed = false;
            }
            self.watch_handover(new_arbiter, out);
            let _ = round;
        }
    }

    /// A starving requester resubmitted directly to the monitor
    /// (paper §4.1). Stored until the next token visit.
    pub(crate) fn on_monitor_submit(
        &mut self,
        requester: NodeId,
        seq: SeqNum,
        priority: Priority,
        out: &mut Outbox,
    ) {
        if self.monitor_cur != Some(self.id) {
            // The monitor role moved; treat as an ordinary request so the
            // submission is not lost.
            self.on_request_like(requester, seq, priority, out);
            return;
        }
        if self.is_stale(requester, seq) {
            out.push(Action::Note(Note::StaleRequestDiscarded { requester, seq }));
            return;
        }
        if self.is_arbiter {
            self.collect
                .push_back(Entry::with_priority(requester, seq, priority));
            self.maybe_arm_collection(out);
        } else {
            self.monitor_store
                .push_back(Entry::with_priority(requester, seq, priority));
        }
    }

    /// Routes a misdelivered monitor submission like a plain request.
    fn on_request_like(
        &mut self,
        requester: NodeId,
        seq: SeqNum,
        priority: Priority,
        out: &mut Outbox,
    ) {
        if self.is_arbiter {
            if !self.is_stale(requester, seq) {
                self.collect
                    .push_back(Entry::with_priority(requester, seq, priority));
                self.maybe_arm_collection(out);
            }
        } else if let Some(next) = self.forwarding_to {
            out.push(Action::Send {
                to: next,
                msg: ArbiterMsg::Request {
                    requester,
                    seq,
                    priority,
                    hops: 1,
                },
            });
        } else {
            out.push(Action::Note(Note::RequestDropped { requester }));
        }
    }
}
