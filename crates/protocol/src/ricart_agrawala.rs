//! The Ricart–Agrawala permission-based algorithm (CACM 1981) — the
//! "static" comparator of the paper's Figure 6.
//!
//! Every critical section costs exactly `2(N−1)` messages: a Lamport-
//! timestamped REQUEST broadcast plus `N−1` REPLY messages. Replies to
//! lower-priority concurrent requests are deferred until the local critical
//! section completes.

use serde::{Deserialize, Serialize};

use crate::api::{NoTimer, Protocol, ProtocolFactory, ProtocolMessage};
use crate::event::{Action, Input};
use crate::types::NodeId;

/// Messages of the Ricart–Agrawala algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum RaMsg {
    /// Timestamped request for the critical section.
    Request {
        /// Lamport timestamp of the request.
        ts: u64,
    },
    /// Permission grant.
    Reply,
}

impl ProtocolMessage for RaMsg {
    fn kind(&self) -> &'static str {
        match self {
            RaMsg::Request { .. } => "REQUEST",
            RaMsg::Reply => "REPLY",
        }
    }
}

/// Configuration (and [`ProtocolFactory`]) for Ricart–Agrawala.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize, Hash)]
pub struct RaConfig;

impl ProtocolFactory for RaConfig {
    type Node = RaNode;
    fn build(&self, id: NodeId, n: usize) -> RaNode {
        RaNode {
            id,
            n,
            clock: 0,
            requesting: false,
            request_ts: 0,
            replies_outstanding: 0,
            deferred: Vec::new(),
            in_cs: false,
        }
    }
}

/// A node of the Ricart–Agrawala algorithm.
#[derive(Debug, Clone, Hash)]
pub struct RaNode {
    id: NodeId,
    n: usize,
    clock: u64,
    requesting: bool,
    request_ts: u64,
    replies_outstanding: usize,
    deferred: Vec<NodeId>,
    in_cs: bool,
}

impl RaNode {
    /// Lamport total order: `(ts, id)` pairs; lower wins.
    fn our_request_beats(&self, ts: u64, from: NodeId) -> bool {
        (self.request_ts, self.id) < (ts, from)
    }
}

impl Protocol for RaNode {
    type Msg = RaMsg;
    type Timer = NoTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<RaMsg, NoTimer>) -> Vec<Action<RaMsg, NoTimer>> {
        let mut out = Vec::new();
        match input {
            Input::Start | Input::Crash | Input::Recover => {}
            Input::RequestCs => {
                debug_assert!(!self.requesting && !self.in_cs);
                self.clock += 1;
                self.requesting = true;
                self.request_ts = self.clock;
                self.replies_outstanding = self.n - 1;
                if self.replies_outstanding == 0 {
                    self.in_cs = true;
                    out.push(Action::EnterCs);
                } else {
                    out.push(Action::Broadcast {
                        msg: RaMsg::Request {
                            ts: self.request_ts,
                        },
                        except: Vec::new(),
                    });
                }
            }
            Input::CsDone => {
                self.in_cs = false;
                self.requesting = false;
                for d in std::mem::take(&mut self.deferred) {
                    out.push(Action::Send {
                        to: d,
                        msg: RaMsg::Reply,
                    });
                }
            }
            Input::Timer(t) => match t {},
            Input::Deliver { from, msg } => match msg {
                RaMsg::Request { ts } => {
                    self.clock = self.clock.max(ts) + 1;
                    let defer = self.in_cs || (self.requesting && self.our_request_beats(ts, from));
                    if defer {
                        self.deferred.push(from);
                    } else {
                        out.push(Action::Send {
                            to: from,
                            msg: RaMsg::Reply,
                        });
                    }
                }
                RaMsg::Reply => {
                    if self.requesting && !self.in_cs {
                        self.replies_outstanding = self.replies_outstanding.saturating_sub(1);
                        if self.replies_outstanding == 0 {
                            self.in_cs = true;
                            out.push(Action::EnterCs);
                        }
                    }
                }
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.in_cs
    }

    fn algorithm(&self) -> &'static str {
        "ricart-agrawala"
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted(id: u32, n: usize) -> RaNode {
        let mut node = RaConfig.build(NodeId(id), n);
        node.step(Input::Start);
        node
    }

    #[test]
    fn request_broadcasts_then_enters_after_all_replies() {
        let mut a = booted(0, 3);
        let acts = a.step(Input::RequestCs);
        assert!(matches!(
            acts.as_slice(),
            [Action::Broadcast {
                msg: RaMsg::Request { .. },
                ..
            }]
        ));
        assert!(a
            .step(Input::Deliver {
                from: NodeId(1),
                msg: RaMsg::Reply
            })
            .is_empty());
        let acts = a.step(Input::Deliver {
            from: NodeId(2),
            msg: RaMsg::Reply,
        });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
    }

    #[test]
    fn lower_timestamp_wins_concurrent_conflict() {
        let mut a = booted(0, 2);
        let mut b = booted(1, 2);
        a.step(Input::RequestCs); // ts 1 at node 0
        b.step(Input::RequestCs); // ts 1 at node 1
                                  // a receives b's request: (1, n0) < (1, n1), so a defers.
        let acts = a.step(Input::Deliver {
            from: NodeId(1),
            msg: RaMsg::Request { ts: 1 },
        });
        assert!(acts.is_empty());
        // b receives a's request: a wins, b replies immediately.
        let acts = b.step(Input::Deliver {
            from: NodeId(0),
            msg: RaMsg::Request { ts: 1 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(0),
                msg: RaMsg::Reply
            }]
        ));
        // a enters; on exit it releases the deferred reply to b.
        let acts = a.step(Input::Deliver {
            from: NodeId(1),
            msg: RaMsg::Reply,
        });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        let acts = a.step(Input::CsDone);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: RaMsg::Reply
            }]
        ));
        let acts = b.step(Input::Deliver {
            from: NodeId(0),
            msg: RaMsg::Reply,
        });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
    }

    #[test]
    fn in_cs_always_defers() {
        let mut a = booted(0, 2);
        a.step(Input::RequestCs);
        a.step(Input::Deliver {
            from: NodeId(1),
            msg: RaMsg::Reply,
        });
        assert!(a.holds_token());
        let acts = a.step(Input::Deliver {
            from: NodeId(1),
            msg: RaMsg::Request { ts: 100 },
        });
        assert!(acts.is_empty(), "requests during CS must be deferred");
    }

    #[test]
    fn single_node_system_enters_immediately() {
        let mut a = booted(0, 1);
        let acts = a.step(Input::RequestCs);
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
    }

    #[test]
    fn lamport_clock_advances_on_receive() {
        let mut a = booted(0, 2);
        a.step(Input::Deliver {
            from: NodeId(1),
            msg: RaMsg::Request { ts: 41 },
        });
        let acts = a.step(Input::RequestCs);
        match acts.as_slice() {
            [Action::Broadcast {
                msg: RaMsg::Request { ts },
                ..
            }] => assert!(*ts > 41, "clock must exceed observed timestamps"),
            other => panic!("unexpected actions: {other:?}"),
        }
    }
}
