//! Singhal's dynamic information-structure algorithm (TPDS 1992) — the
//! "dynamic" comparator of the paper's Figure 6.
//!
//! Each node maintains a *state vector* `SV` (what it believes every other
//! node is doing) and sequence numbers `SN`; the token carries its own pair
//! (`TSV`, `TSN`). A requester sends REQUEST only to nodes it believes are
//! requesting — the staircase initialization guarantees the token holder is
//! always reachable — so message cost is `≈ N/2` at low load, `≈ N` at
//! high load.

use serde::{Deserialize, Serialize};

use crate::api::{NoTimer, Protocol, ProtocolFactory, ProtocolMessage};
use crate::event::{Action, Input};
use crate::types::NodeId;

/// A node's belief about another node (Singhal's `SV` entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum SiteState {
    /// Not requesting.
    N,
    /// Requesting.
    R,
    /// Executing its critical section.
    E,
    /// Holding the token idle.
    H,
}

/// The token of Singhal's algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub struct SinghalToken {
    /// `TSV[j]`: the token's view of node `j`'s state (`N` or `R`).
    pub tsv: Vec<SiteState>,
    /// `TSN[j]`: the token's view of node `j`'s freshest sequence number.
    pub tsn: Vec<u64>,
}

impl SinghalToken {
    /// The token before any requests.
    pub fn initial(n: usize) -> Self {
        SinghalToken {
            tsv: vec![SiteState::N; n],
            tsn: vec![0; n],
        }
    }
}

/// Messages of Singhal's algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum SinghalMsg {
    /// `REQUEST(i, sn)`.
    Request {
        /// The request's sequence number.
        seq: u64,
    },
    /// The token.
    Token(SinghalToken),
}

impl ProtocolMessage for SinghalMsg {
    fn kind(&self) -> &'static str {
        match self {
            SinghalMsg::Request { .. } => "REQUEST",
            SinghalMsg::Token(_) => "TOKEN",
        }
    }
}

/// Configuration (and [`ProtocolFactory`]) for Singhal's algorithm.
///
/// Node 0 initially holds the token; node `i` is initialized with the
/// staircase pattern `SV[j] = R` for `j < i` that guarantees requests can
/// always reach the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize, Hash)]
pub struct SinghalConfig;

impl ProtocolFactory for SinghalConfig {
    type Node = SinghalNode;
    fn build(&self, id: NodeId, n: usize) -> SinghalNode {
        let mut sv = vec![SiteState::N; n];
        for slot in sv.iter_mut().take(id.index()) {
            *slot = SiteState::R;
        }
        let token = if id.index() == 0 {
            sv[0] = SiteState::H;
            Some(SinghalToken::initial(n))
        } else {
            None
        };
        SinghalNode {
            id,
            n,
            sv,
            sn: vec![0; n],
            token,
            requesting: false,
            in_cs: false,
        }
    }
}

/// A node of Singhal's dynamic algorithm.
#[derive(Debug, Clone, Hash)]
pub struct SinghalNode {
    id: NodeId,
    n: usize,
    sv: Vec<SiteState>,
    sn: Vec<u64>,
    token: Option<SinghalToken>,
    requesting: bool,
    in_cs: bool,
}

impl SinghalNode {
    fn me(&self) -> usize {
        self.id.index()
    }

    /// Fair round-robin scan for the next requester, starting after us.
    fn next_requester(&self) -> Option<NodeId> {
        (1..=self.n)
            .map(|off| (self.me() + off) % self.n)
            .find(|&j| j != self.me() && self.sv[j] == SiteState::R)
            .map(NodeId::from_index)
    }

    /// Hand the token to `to`, recording its request inside the token.
    fn send_token(&mut self, to: NodeId, out: &mut Vec<Action<SinghalMsg, NoTimer>>) {
        let me = self.me();
        let mut tok = self.token.take().expect("send_token requires the token");
        tok.tsv[to.index()] = SiteState::R;
        tok.tsn[to.index()] = self.sn[to.index()];
        self.sv[me] = SiteState::N;
        out.push(Action::Send {
            to,
            msg: SinghalMsg::Token(tok),
        });
    }
}

impl Protocol for SinghalNode {
    type Msg = SinghalMsg;
    type Timer = NoTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<SinghalMsg, NoTimer>) -> Vec<Action<SinghalMsg, NoTimer>> {
        let mut out = Vec::new();
        let me = self.me();
        match input {
            Input::Start | Input::Crash | Input::Recover => {}
            Input::RequestCs => {
                debug_assert!(!self.requesting && !self.in_cs);
                self.requesting = true;
                self.sn[me] += 1;
                if self.token.is_some() {
                    // Idle holder: enter for free.
                    self.sv[me] = SiteState::E;
                    self.in_cs = true;
                    out.push(Action::EnterCs);
                } else {
                    self.sv[me] = SiteState::R;
                    let seq = self.sn[me];
                    for j in 0..self.n {
                        if j != me && self.sv[j] == SiteState::R {
                            out.push(Action::Send {
                                to: NodeId::from_index(j),
                                msg: SinghalMsg::Request { seq },
                            });
                        }
                    }
                }
            }
            Input::CsDone => {
                self.in_cs = false;
                self.requesting = false;
                self.sv[me] = SiteState::N;
                let tok = self.token.as_mut().expect("CS exit holds the token");
                tok.tsv[me] = SiteState::N;
                // Merge local and token knowledge, freshest wins (Singhal's
                // exit protocol).
                for j in 0..self.n {
                    if self.sn[j] > tok.tsn[j] {
                        tok.tsv[j] = match self.sv[j] {
                            SiteState::R => SiteState::R,
                            _ => SiteState::N,
                        };
                        tok.tsn[j] = self.sn[j];
                    } else {
                        self.sv[j] = tok.tsv[j];
                        self.sn[j] = tok.tsn[j];
                    }
                }
                self.sv[me] = SiteState::N;
                if let Some(next) = self.next_requester() {
                    self.send_token(next, &mut out);
                } else {
                    self.sv[me] = SiteState::H;
                }
            }
            Input::Timer(t) => match t {},
            Input::Deliver { from, msg } => match msg {
                SinghalMsg::Request { seq } => {
                    let j = from.index();
                    if seq <= self.sn[j] {
                        return out; // stale duplicate
                    }
                    self.sn[j] = seq;
                    match self.sv[me] {
                        SiteState::N | SiteState::E => {
                            self.sv[j] = SiteState::R;
                        }
                        SiteState::R => {
                            if self.sv[j] != SiteState::R {
                                self.sv[j] = SiteState::R;
                                // Tell the newly discovered requester about
                                // our own outstanding request.
                                out.push(Action::Send {
                                    to: from,
                                    msg: SinghalMsg::Request { seq: self.sn[me] },
                                });
                            }
                        }
                        SiteState::H => {
                            self.sv[j] = SiteState::R;
                            self.send_token(from, &mut out);
                        }
                    }
                }
                SinghalMsg::Token(tok) => {
                    debug_assert!(self.token.is_none(), "duplicate token");
                    self.token = Some(tok);
                    debug_assert!(self.requesting, "token arrives only on request");
                    self.sv[me] = SiteState::E;
                    self.in_cs = true;
                    out.push(Action::EnterCs);
                }
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.token.is_some()
    }

    fn algorithm(&self) -> &'static str {
        "singhal"
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted(id: u32, n: usize) -> SinghalNode {
        let mut node = SinghalConfig.build(NodeId(id), n);
        node.step(Input::Start);
        node
    }

    #[test]
    fn staircase_initialization() {
        let a = booted(3, 5);
        assert_eq!(a.sv[0], SiteState::R);
        assert_eq!(a.sv[1], SiteState::R);
        assert_eq!(a.sv[2], SiteState::R);
        assert_eq!(a.sv[3], SiteState::N);
        assert_eq!(a.sv[4], SiteState::N);
        let holder = booted(0, 5);
        assert_eq!(holder.sv[0], SiteState::H);
        assert!(holder.holds_token());
    }

    #[test]
    fn holder_enters_for_free() {
        let mut holder = booted(0, 4);
        let acts = holder.step(Input::RequestCs);
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        // Nobody else requesting: exit keeps the token.
        assert!(holder.step(Input::CsDone).is_empty());
        assert!(holder.holds_token());
    }

    #[test]
    fn request_reaches_holder_via_staircase() {
        // Node 1 believes only node 0 is requesting -> sends 1 message,
        // which happens to reach the holder.
        let mut a = booted(1, 4);
        let acts = a.step(Input::RequestCs);
        assert_eq!(acts.len(), 1);
        assert!(matches!(
            acts[0],
            Action::Send {
                to: NodeId(0),
                msg: SinghalMsg::Request { seq: 1 }
            }
        ));
        let mut holder = booted(0, 4);
        let acts = holder.step(Input::Deliver {
            from: NodeId(1),
            msg: SinghalMsg::Request { seq: 1 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: SinghalMsg::Token(_)
            }]
        ));
        assert!(!holder.holds_token());
        // Token grants entry at node 1.
        let tok = SinghalToken::initial(4);
        let acts = a.step(Input::Deliver {
            from: NodeId(0),
            msg: SinghalMsg::Token(tok),
        });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
    }

    #[test]
    fn concurrent_requesters_learn_about_each_other() {
        let mut a = booted(2, 4);
        a.step(Input::RequestCs); // a now requesting
                                  // A request from a node a did not know was requesting: a tells it
                                  // about its own request.
        let acts = a.step(Input::Deliver {
            from: NodeId(3),
            msg: SinghalMsg::Request { seq: 1 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(3),
                msg: SinghalMsg::Request { .. }
            }]
        ));
        // A duplicate does not trigger another exchange.
        let acts = a.step(Input::Deliver {
            from: NodeId(3),
            msg: SinghalMsg::Request { seq: 1 },
        });
        assert!(acts.is_empty());
    }

    #[test]
    fn exit_passes_token_to_known_requester() {
        let mut holder = booted(0, 3);
        holder.step(Input::RequestCs);
        holder.step(Input::Deliver {
            from: NodeId(2),
            msg: SinghalMsg::Request { seq: 1 },
        });
        let acts = holder.step(Input::CsDone);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(2),
                msg: SinghalMsg::Token(_)
            }]
        ));
    }

    #[test]
    fn token_merge_prefers_freshest_information() {
        let mut holder = booted(0, 3);
        holder.step(Input::RequestCs);
        // Token knows node 1 requested with seq 5 (from a past cycle);
        // locally we only saw seq 3.
        let tok = holder.token.as_mut().unwrap();
        tok.tsv[1] = SiteState::R;
        tok.tsn[1] = 5;
        holder.sn[1] = 3;
        holder.sv[1] = SiteState::N;
        let acts = holder.step(Input::CsDone);
        // Merge adopts the token's fresher R state, so the token moves on.
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: SinghalMsg::Token(_)
            }]
        ));
    }
}
