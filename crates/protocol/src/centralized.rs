//! Central-coordinator baseline: the simplest mutual exclusion protocol.
//!
//! One fixed coordinator grants access FIFO. Every remote critical section
//! costs exactly 3 messages (REQUEST, GRANT, RELEASE); the coordinator's
//! own sections are free. Used to calibrate the experiment harness — its
//! message count is known in closed form.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::api::{NoTimer, Protocol, ProtocolFactory, ProtocolMessage};
use crate::event::{Action, Input};
use crate::types::NodeId;

/// Messages of the centralized protocol.
///
/// Grants carry a generation number echoed by the release, so duplicated
/// messages (a re-delivered RELEASE racing a re-grant to the same node)
/// cannot double-free the coordinator's grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum CentralMsg {
    /// A node asks the coordinator for the critical section.
    Request,
    /// The coordinator grants the critical section.
    Grant {
        /// Generation of this grant.
        gen: u64,
    },
    /// The holder tells the coordinator it has finished with grant `gen`.
    Release {
        /// Generation being released.
        gen: u64,
    },
}

impl ProtocolMessage for CentralMsg {
    fn kind(&self) -> &'static str {
        match self {
            CentralMsg::Request => "REQUEST",
            CentralMsg::Grant { .. } => "GRANT",
            CentralMsg::Release { .. } => "RELEASE",
        }
    }
}

/// Configuration (and [`ProtocolFactory`]) for the centralized protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub struct CentralConfig {
    /// The coordinator node.
    pub coordinator: NodeId,
}

impl Default for CentralConfig {
    fn default() -> Self {
        CentralConfig {
            coordinator: NodeId(0),
        }
    }
}

impl ProtocolFactory for CentralConfig {
    type Node = CentralNode;
    fn build(&self, id: NodeId, n: usize) -> CentralNode {
        assert!(self.coordinator.index() < n, "coordinator out of range");
        CentralNode {
            id,
            n,
            coordinator: self.coordinator,
            queue: VecDeque::new(),
            holder: None,
            grant_gen: 0,
            my_gen: 0,
            requesting: false,
            in_cs: false,
        }
    }
}

/// A node of the centralized protocol.
#[derive(Debug, Clone, Hash)]
pub struct CentralNode {
    id: NodeId,
    n: usize,
    coordinator: NodeId,
    /// Coordinator state: pending grants, FIFO (one entry per node —
    /// duplicated REQUESTs are coalesced).
    queue: VecDeque<NodeId>,
    /// Coordinator state: who currently holds the grant, and its
    /// generation.
    holder: Option<(NodeId, u64)>,
    /// Coordinator state: generation counter.
    grant_gen: u64,
    /// Requester state: generation of the grant we hold.
    my_gen: u64,
    /// Requester state: an unanswered request is outstanding.
    requesting: bool,
    in_cs: bool,
}

impl CentralNode {
    fn coordinator_enqueue(&mut self, node: NodeId, out: &mut Vec<Action<CentralMsg, NoTimer>>) {
        if self.holder.map(|(h, _)| h) == Some(node) || self.queue.contains(&node) {
            return; // duplicated request
        }
        self.queue.push_back(node);
        self.coordinator_grant(out);
    }

    fn coordinator_grant(&mut self, out: &mut Vec<Action<CentralMsg, NoTimer>>) {
        if self.holder.is_some() {
            return;
        }
        if let Some(next) = self.queue.pop_front() {
            self.grant_gen += 1;
            self.holder = Some((next, self.grant_gen));
            if next == self.id {
                self.my_gen = self.grant_gen;
                self.in_cs = true;
                out.push(Action::EnterCs);
            } else {
                out.push(Action::Send {
                    to: next,
                    msg: CentralMsg::Grant {
                        gen: self.grant_gen,
                    },
                });
            }
        }
    }
}

impl Protocol for CentralNode {
    type Msg = CentralMsg;
    type Timer = NoTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<CentralMsg, NoTimer>) -> Vec<Action<CentralMsg, NoTimer>> {
        let mut out = Vec::new();
        match input {
            Input::Start | Input::Crash | Input::Recover => {}
            Input::RequestCs => {
                self.requesting = true;
                if self.id == self.coordinator {
                    self.coordinator_enqueue(self.id, &mut out);
                } else {
                    out.push(Action::Send {
                        to: self.coordinator,
                        msg: CentralMsg::Request,
                    });
                }
            }
            Input::CsDone => {
                self.in_cs = false;
                self.requesting = false;
                if self.id == self.coordinator {
                    self.holder = None;
                    self.coordinator_grant(&mut out);
                } else {
                    out.push(Action::Send {
                        to: self.coordinator,
                        msg: CentralMsg::Release { gen: self.my_gen },
                    });
                }
            }
            Input::Timer(t) => match t {},
            Input::Deliver { from, msg } => match msg {
                CentralMsg::Request => {
                    debug_assert_eq!(self.id, self.coordinator);
                    self.coordinator_enqueue(from, &mut out);
                }
                CentralMsg::Grant { gen } => {
                    if self.requesting && !self.in_cs {
                        self.my_gen = gen;
                        self.in_cs = true;
                        out.push(Action::EnterCs);
                    } else {
                        // Spurious or duplicated grant: hand it back.
                        out.push(Action::Send {
                            to: self.coordinator,
                            msg: CentralMsg::Release { gen },
                        });
                    }
                }
                CentralMsg::Release { gen } => {
                    debug_assert_eq!(self.id, self.coordinator);
                    // Only the exact outstanding grant can be released —
                    // a duplicated or stale RELEASE must not double-free.
                    if self.holder == Some((from, gen)) {
                        self.holder = None;
                        self.coordinator_grant(&mut out);
                    }
                }
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.in_cs
    }

    fn algorithm(&self) -> &'static str {
        "centralized"
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ProtocolFactory;

    fn deliver(
        node: &mut CentralNode,
        from: NodeId,
        msg: CentralMsg,
    ) -> Vec<Action<CentralMsg, NoTimer>> {
        node.step(Input::Deliver { from, msg })
    }

    #[test]
    fn remote_cs_costs_three_messages() {
        let cfg = CentralConfig::default();
        let mut coord = cfg.build(NodeId(0), 3);
        let mut other = cfg.build(NodeId(1), 3);
        coord.step(Input::Start);
        other.step(Input::Start);

        // REQUEST (1 message).
        let acts = other.step(Input::RequestCs);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(0),
                msg: CentralMsg::Request
            }]
        ));
        // GRANT (1 message).
        let acts = deliver(&mut coord, NodeId(1), CentralMsg::Request);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: CentralMsg::Grant { .. }
            }]
        ));
        // Enter, then RELEASE (1 message).
        let acts = deliver(&mut other, NodeId(0), CentralMsg::Grant { gen: 1 });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        let acts = other.step(Input::CsDone);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(0),
                msg: CentralMsg::Release { gen: 1 }
            }]
        ));
    }

    #[test]
    fn coordinator_own_cs_is_free() {
        let mut coord = CentralConfig::default().build(NodeId(0), 2);
        coord.step(Input::Start);
        let acts = coord.step(Input::RequestCs);
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        let acts = coord.step(Input::CsDone);
        assert!(acts.is_empty());
    }

    #[test]
    fn grants_are_fifo() {
        let mut coord = CentralConfig::default().build(NodeId(0), 4);
        coord.step(Input::Start);
        deliver(&mut coord, NodeId(2), CentralMsg::Request);
        // Node 2 holds the grant; 1 and 3 queue behind it.
        assert!(deliver(&mut coord, NodeId(1), CentralMsg::Request).is_empty());
        assert!(deliver(&mut coord, NodeId(3), CentralMsg::Request).is_empty());
        let acts = deliver(&mut coord, NodeId(2), CentralMsg::Release { gen: 1 });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: CentralMsg::Grant { gen: 2 }
            }]
        ));
        let acts = deliver(&mut coord, NodeId(1), CentralMsg::Release { gen: 2 });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(3),
                msg: CentralMsg::Grant { gen: 3 }
            }]
        ));
    }

    #[test]
    fn mixed_local_and_remote_queueing() {
        let mut coord = CentralConfig::default().build(NodeId(0), 2);
        coord.step(Input::Start);
        deliver(&mut coord, NodeId(1), CentralMsg::Request);
        // Coordinator's own request queues behind the outstanding grant.
        assert!(coord.step(Input::RequestCs).is_empty());
        let acts = deliver(&mut coord, NodeId(1), CentralMsg::Release { gen: 1 });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        assert!(coord.holds_token());
    }
}
