//! The ordered Q-list carried inside the token (paper §2.1).
//!
//! The Q-list is the heart of the Banerjee–Chrysanthis algorithm: the token
//! carries an ordered list of every node scheduled to execute its critical
//! section, the token is passed head-to-head down the list, and the *tail*
//! of the list is always the next arbiter.
//!
//! Invariants maintained by [`QList`]:
//!
//! * no node appears twice;
//! * entries preserve insertion (scheduling) order unless explicitly sorted
//!   by priority (paper §5.2);
//! * `head()` is the node currently entitled to the token and `tail()` is
//!   the next arbiter.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::{NodeId, Priority, SeqNum};

/// One scheduled request inside a [`QList`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Entry {
    /// The node that will execute a critical section.
    pub node: NodeId,
    /// The request's per-node sequence number (paper §2.4 fairness
    /// refinement; lets stale duplicates be recognized).
    pub seq: SeqNum,
    /// The requesting node's static priority (paper §5.2); ignored under
    /// FCFS scheduling.
    pub priority: Priority,
}

impl Entry {
    /// Convenience constructor for an entry with default priority.
    pub fn new(node: NodeId, seq: SeqNum) -> Self {
        Entry {
            node,
            seq,
            priority: Priority::default(),
        }
    }

    /// Constructor including a priority.
    pub fn with_priority(node: NodeId, seq: SeqNum, priority: Priority) -> Self {
        Entry {
            node,
            seq,
            priority,
        }
    }
}

/// The ordered list of nodes scheduled to enter their critical sections.
///
/// # Examples
///
/// ```
/// use tokq_protocol::qlist::{Entry, QList};
/// use tokq_protocol::types::{NodeId, SeqNum};
///
/// let mut q = QList::new();
/// q.push_back(Entry::new(NodeId(2), SeqNum(1)));
/// q.push_back(Entry::new(NodeId(5), SeqNum(1)));
/// assert_eq!(q.head(), Some(NodeId(2)));
/// assert_eq!(q.tail(), Some(NodeId(5))); // next arbiter
/// assert_eq!(q.pop_head().unwrap().node, NodeId(2));
/// assert_eq!(q.head(), Some(NodeId(5)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize, Hash)]
pub struct QList {
    entries: VecDeque<Entry>,
}

impl QList {
    /// Creates an empty Q-list.
    pub fn new() -> Self {
        QList {
            entries: VecDeque::new(),
        }
    }

    /// Number of scheduled requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no requests are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The node at the head — the one entitled to the token next.
    pub fn head(&self) -> Option<NodeId> {
        self.entries.front().map(|e| e.node)
    }

    /// The node at the tail — the next arbiter (paper §2.1: "The last node
    /// in Q is always the next arbiter node").
    pub fn tail(&self) -> Option<NodeId> {
        self.entries.back().map(|e| e.node)
    }

    /// The full head entry, if any.
    pub fn head_entry(&self) -> Option<&Entry> {
        self.entries.front()
    }

    /// Appends `entry` unless its node is already scheduled.
    ///
    /// Returns `true` if the entry was added, `false` if a request from the
    /// same node was already present (duplicate suppression).
    pub fn push_back(&mut self, entry: Entry) -> bool {
        if self.contains(entry.node) {
            return false;
        }
        self.entries.push_back(entry);
        true
    }

    /// Prepends `entry` unless its node is already scheduled. Used by token
    /// regeneration (paper §6: the arbiter "adds them on the front of its
    /// Q-list").
    ///
    /// Returns `true` if the entry was added.
    pub fn push_front(&mut self, entry: Entry) -> bool {
        if self.contains(entry.node) {
            return false;
        }
        self.entries.push_front(entry);
        true
    }

    /// Removes and returns the head entry.
    pub fn pop_head(&mut self) -> Option<Entry> {
        self.entries.pop_front()
    }

    /// True if `node` is scheduled anywhere in the list.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|e| e.node == node)
    }

    /// Zero-based position of `node` in the list, if scheduled.
    pub fn position(&self, node: NodeId) -> Option<usize> {
        self.entries.iter().position(|e| e.node == node)
    }

    /// Removes every entry for `node`, returning how many were removed
    /// (0 or 1 given the uniqueness invariant, but defensive against
    /// deserialized lists).
    pub fn remove(&mut self, node: NodeId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.node != node);
        before - self.entries.len()
    }

    /// Retains only entries whose nodes satisfy `keep`. Used by recovery to
    /// drop entries for nodes that failed to answer an ENQUIRY (paper §6).
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId) -> bool) {
        self.entries.retain(|e| keep(e.node));
    }

    /// Stable-sorts entries by descending priority (paper §5.2: "the arbiter
    /// will order the requests in the order of the node priorities").
    /// Ties keep FCFS order.
    pub fn sort_by_priority(&mut self) {
        let mut v: Vec<Entry> = self.entries.drain(..).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.priority));
        self.entries = v.into();
    }

    /// Iterates over scheduled entries head-to-tail.
    pub fn iter(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// The scheduled node ids head-to-tail.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|e| e.node)
    }

    /// Appends all entries of `other` (duplicates suppressed), consuming it.
    /// Used by the monitor node to append its stored requests (paper §4.1).
    pub fn append(&mut self, other: QList) {
        for e in other.entries {
            self.push_back(e);
        }
    }

    /// Checks the structural invariant (no duplicate nodes). Intended for
    /// assertions and property tests.
    pub fn invariant_holds(&self) -> bool {
        let mut seen: Vec<NodeId> = self.entries.iter().map(|e| e.node).collect();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        seen.len() == before
    }
}

impl FromIterator<Entry> for QList {
    fn from_iter<I: IntoIterator<Item = Entry>>(iter: I) -> Self {
        let mut q = QList::new();
        for e in iter {
            q.push_back(e);
        }
        q
    }
}

impl Extend<Entry> for QList {
    fn extend<I: IntoIterator<Item = Entry>>(&mut self, iter: I) {
        for e in iter {
            self.push_back(e);
        }
    }
}

impl<'a> IntoIterator for &'a QList {
    type Item = &'a Entry;
    type IntoIter = std::collections::vec_deque::Iter<'a, Entry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for QList {
    type Item = Entry;
    type IntoIter = std::collections::vec_deque::IntoIter<Entry>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl fmt::Display for QList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", e.node)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> Entry {
        Entry::new(NodeId(n), SeqNum(1))
    }

    #[test]
    fn head_tail_and_pop() {
        let mut q: QList = [e(2), e(5), e(4)].into_iter().collect();
        assert_eq!(q.len(), 3);
        assert_eq!(q.head(), Some(NodeId(2)));
        assert_eq!(q.tail(), Some(NodeId(4)));
        assert_eq!(q.pop_head().unwrap().node, NodeId(2));
        assert_eq!(q.head(), Some(NodeId(5)));
        assert_eq!(q.tail(), Some(NodeId(4)));
    }

    #[test]
    fn duplicate_nodes_rejected() {
        let mut q = QList::new();
        assert!(q.push_back(e(1)));
        assert!(!q.push_back(Entry::new(NodeId(1), SeqNum(9))));
        assert!(!q.push_front(e(1)));
        assert_eq!(q.len(), 1);
        assert!(q.invariant_holds());
    }

    #[test]
    fn push_front_for_regeneration() {
        let mut q: QList = [e(3)].into_iter().collect();
        assert!(q.push_front(e(7)));
        assert_eq!(q.head(), Some(NodeId(7)));
        assert_eq!(q.tail(), Some(NodeId(3)));
    }

    #[test]
    fn remove_and_retain() {
        let mut q: QList = [e(1), e(2), e(3)].into_iter().collect();
        assert_eq!(q.remove(NodeId(2)), 1);
        assert_eq!(q.remove(NodeId(2)), 0);
        q.retain(|n| n != NodeId(3));
        assert_eq!(q.nodes().collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn position_and_contains() {
        let q: QList = [e(4), e(9)].into_iter().collect();
        assert!(q.contains(NodeId(9)));
        assert!(!q.contains(NodeId(1)));
        assert_eq!(q.position(NodeId(9)), Some(1));
        assert_eq!(q.position(NodeId(1)), None);
    }

    #[test]
    fn priority_sort_is_stable() {
        let mut q = QList::new();
        q.push_back(Entry::with_priority(NodeId(1), SeqNum(1), Priority(1)));
        q.push_back(Entry::with_priority(NodeId(2), SeqNum(1), Priority(5)));
        q.push_back(Entry::with_priority(NodeId(3), SeqNum(1), Priority(5)));
        q.push_back(Entry::with_priority(NodeId(4), SeqNum(1), Priority(3)));
        q.sort_by_priority();
        let order: Vec<u32> = q.nodes().map(|n| n.0).collect();
        // Descending priority, FCFS within equal priority.
        assert_eq!(order, vec![2, 3, 4, 1]);
    }

    #[test]
    fn append_suppresses_duplicates() {
        let mut a: QList = [e(1), e(2)].into_iter().collect();
        let b: QList = [e(2), e(3)].into_iter().collect();
        a.append(b);
        assert_eq!(a.nodes().map(|n| n.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn display_matches_paper_notation() {
        let q: QList = [e(2), e(5)].into_iter().collect();
        assert_eq!(q.to_string(), "{n2,n5}");
        assert_eq!(QList::new().to_string(), "{}");
    }

    #[test]
    fn empty_list_edges() {
        let mut q = QList::new();
        assert!(q.is_empty());
        assert_eq!(q.head(), None);
        assert_eq!(q.tail(), None);
        assert_eq!(q.pop_head(), None);
        assert!(q.invariant_holds());
    }
}
