//! The [`Protocol`] trait: the contract between a mutual exclusion state
//! machine and whatever drives it (the simulator or the threaded runtime).

use std::fmt::Debug;
use std::hash::Hash;

use crate::event::{Action, Input};
use crate::types::NodeId;

/// A protocol message. Drivers only need to clone, debug-print, hash
/// (the model checker folds in-flight messages into its state
/// fingerprints), and classify messages for per-kind counters.
pub trait ProtocolMessage: Clone + Debug + Hash + Send + 'static {
    /// A stable, human-readable message-kind label (e.g. `"REQUEST"`,
    /// `"PRIVILEGE"`, `"NEW-ARBITER"`) used for the per-kind message
    /// counters that back Figures 3–6.
    fn kind(&self) -> &'static str;

    /// True if delivering a *second copy* of this message is within the
    /// channel model the protocol is specified under — i.e. the receiving
    /// handler is idempotent (sequence-number/round guards, set-semantics
    /// queues, epoch maxima), so a duplicate can change timing but never
    /// correctness.
    ///
    /// The model checker's duplication fault only branches on messages
    /// that return true. The default is `false`: most handlers here assume
    /// at-most-once delivery (e.g. Ricart–Agrawala counts REPLYs with a
    /// plain counter, Maekawa counts LOCKED votes), and duplicating such a
    /// message would make the checker report a violation of an assumption
    /// the algorithm never claimed to tolerate.
    fn duplication_tolerant(&self) -> bool {
        false
    }
}

/// A protocol timer identity. `SetTimer` with an equal timer value replaces
/// the pending instance, so protocols can re-arm without cancelling.
pub trait ProtocolTimer: Copy + Clone + Debug + Eq + Hash + Send + 'static {}

impl<T: Copy + Clone + Debug + Eq + Hash + Send + 'static> ProtocolTimer for T {}

/// Timer alphabet for protocols that never set timers (the permission- and
/// broadcast-based baselines). Uninhabited, so a `Timer` input can never be
/// constructed for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NoTimer {}

/// A sans-io distributed mutual exclusion state machine.
///
/// Drivers must uphold:
///
/// * [`Input::Start`] is the first input;
/// * at most one application request is outstanding: after
///   [`Input::RequestCs`], no further `RequestCs` until the protocol has
///   emitted [`Action::EnterCs`] and consumed the matching
///   [`Input::CsDone`];
/// * every emitted action is executed (messages may be *lost in transit*
///   by a lossy network, but the driver must at least attempt them).
///
/// Protocols must uphold:
///
/// * safety — across all nodes, at most one un-`CsDone`d `EnterCs` exists
///   at any time, provided the network delivers at most one copy of each
///   token message (token-based protocols) or delivers reliably
///   (permission-based protocols);
/// * liveness — under a reliable network, every `RequestCs` is eventually
///   answered with `EnterCs`.
pub trait Protocol: Send {
    /// The protocol's message alphabet.
    type Msg: ProtocolMessage;
    /// The protocol's timer alphabet.
    type Timer: ProtocolTimer;

    /// This node's identity.
    fn id(&self) -> NodeId;

    /// Total number of nodes in the system.
    fn num_nodes(&self) -> usize;

    /// Feeds one input; returns the actions to execute, in order.
    fn step(&mut self, input: Input<Self::Msg, Self::Timer>)
        -> Vec<Action<Self::Msg, Self::Timer>>;

    /// True if this node currently believes it holds the token (or, for
    /// permission-based protocols, is executing its critical section).
    /// Drivers use this only for diagnostics and traces.
    fn holds_token(&self) -> bool;

    /// Short algorithm name for reports (e.g. `"arbiter"`,
    /// `"ricart-agrawala"`).
    fn algorithm(&self) -> &'static str;

    /// Feeds a canonical fingerprint of this node's *complete* protocol
    /// state into `h`.
    ///
    /// Two nodes that write the same byte stream must be observationally
    /// equivalent: identical behaviour on every future input sequence. The
    /// simnet model checker relies on this for visited-state deduplication,
    /// so omitting a behaviour-relevant field makes the checker unsound
    /// (it would prune schedules that are actually distinct). The derive of
    /// [`std::hash::Hash`] over the full node struct is the recommended
    /// implementation — a newly added field is then included automatically.
    fn fingerprint(&self, h: &mut dyn std::hash::Hasher);
}

/// Constructs the `n` protocol instances of a homogeneous system.
///
/// Implemented by per-algorithm config types so simulators and runtimes can
/// be generic over "an algorithm" rather than a concrete node type.
pub trait ProtocolFactory {
    /// The node state machine this factory builds.
    type Node: Protocol;

    /// Builds the instance for node `id` of `n`.
    fn build(&self, id: NodeId, n: usize) -> Self::Node;

    /// Builds the instance for node `id` of `n` serving `shard` of a
    /// sharded lock service. Shards are fully independent protocol
    /// instances, so the default implementation ignores the shard index
    /// and builds an identical node; factories may override to vary
    /// configuration per shard (e.g. phase durations).
    fn build_shard(&self, id: NodeId, n: usize, shard: u16) -> Self::Node {
        let _ = shard;
        self.build(id, n)
    }

    /// Builds all `n` instances.
    fn build_all(&self, n: usize) -> Vec<Self::Node> {
        (0..n)
            .map(|i| self.build(NodeId::from_index(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Action, Input};

    #[derive(Clone, Debug, Hash)]
    struct NullMsg;
    impl ProtocolMessage for NullMsg {
        fn kind(&self) -> &'static str {
            "NULL"
        }
    }

    struct Null {
        id: NodeId,
        n: usize,
    }

    impl Protocol for Null {
        type Msg = NullMsg;
        type Timer = u8;
        fn id(&self) -> NodeId {
            self.id
        }
        fn num_nodes(&self) -> usize {
            self.n
        }
        fn step(&mut self, input: Input<NullMsg, u8>) -> Vec<Action<NullMsg, u8>> {
            match input {
                Input::RequestCs => vec![Action::EnterCs],
                _ => vec![],
            }
        }
        fn holds_token(&self) -> bool {
            true
        }
        fn algorithm(&self) -> &'static str {
            "null"
        }
        fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
            Hash::hash(&(self.id, self.n), &mut h);
        }
    }

    struct NullFactory;
    impl ProtocolFactory for NullFactory {
        type Node = Null;
        fn build(&self, id: NodeId, n: usize) -> Null {
            Null { id, n }
        }
    }

    #[test]
    fn factory_builds_all_nodes() {
        let nodes = NullFactory.build_all(4);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[2].id(), NodeId(2));
        assert_eq!(nodes[3].num_nodes(), 4);
    }

    #[test]
    fn null_protocol_grants_immediately() {
        let mut node = NullFactory.build(NodeId(0), 1);
        let acts = node.step(Input::RequestCs);
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        assert_eq!(node.algorithm(), "null");
        assert!(node.holds_token());
    }
}
