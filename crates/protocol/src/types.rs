//! Core identifier and time newtypes shared by every protocol.
//!
//! All protocols in this crate are *sans-io*: they never read clocks or
//! sockets. Durations are expressed as [`TimeDelta`] values that the driver
//! (simulator or threaded runtime) maps onto its own notion of time.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identity of a node in the distributed system.
///
/// Node ids are dense indices `0..n`, assigned by the driver. The paper
/// numbers nodes from 1; we use 0-based ids and render them 0-based
/// everywhere for consistency with the code.
///
/// # Examples
///
/// ```
/// use tokq_protocol::types::NodeId;
///
/// let a = NodeId(0);
/// let b = NodeId(1);
/// assert!(a < b);
/// assert_eq!(a.index(), 0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the id as a `usize` index, for indexing per-node tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a `NodeId` from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Per-node request sequence number.
///
/// The paper's §2.4 fairness refinement tags `REQUEST(j, n)` with the count
/// `n` of critical sections node `j` has requested. Sequence numbers let an
/// arbiter discard stale duplicates created by retransmission, exactly as in
/// Suzuki–Kasami.
///
/// # Examples
///
/// ```
/// use tokq_protocol::types::SeqNum;
///
/// let mut s = SeqNum::ZERO;
/// s = s.next();
/// assert_eq!(s, SeqNum(1));
/// assert!(SeqNum(2) > s);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SeqNum(pub u64);

impl SeqNum {
    /// The zero sequence number (no request issued yet).
    pub const ZERO: SeqNum = SeqNum(0);

    /// Returns the successor sequence number.
    #[inline]
    #[must_use]
    pub fn next(self) -> SeqNum {
        SeqNum(self.0 + 1)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Static node priority for the paper's §5.2 prioritized-access mode.
///
/// Larger values are *more* important and are ordered first in the Q-list
/// when [`crate::arbiter::Fairness::Priority`] is selected.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Priority(pub u32);

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A span of virtual or real time, in nanoseconds.
///
/// `TimeDelta` is the only time vocabulary protocols use: they request
/// timers "`delta` from now" and never observe absolute time. The simulator
/// interprets deltas on its virtual clock; the threaded runtime maps them to
/// [`std::time::Duration`].
///
/// # Examples
///
/// ```
/// use tokq_protocol::types::TimeDelta;
///
/// let t = TimeDelta::from_millis(100);
/// assert_eq!(t.as_nanos(), 100_000_000);
/// assert_eq!(t * 3, TimeDelta::from_millis(300));
/// assert_eq!(TimeDelta::from_secs_f64(0.1), t);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TimeDelta(u64);

impl TimeDelta {
    /// A zero-length span.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Creates a span from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        TimeDelta(nanos)
    }

    /// Creates a span from whole microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros * 1_000)
    }

    /// Creates a span from whole milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis * 1_000_000)
    }

    /// Creates a span from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time delta must be finite and non-negative, got {secs}"
        );
        TimeDelta((secs * 1e9).round() as u64)
    }

    /// This span in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This span in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating addition of two spans.
    #[inline]
    #[must_use]
    pub fn saturating_add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction of two spans.
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(rhs.0))
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for TimeDelta {
    type Output = TimeDelta;
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl std::ops::Sub for TimeDelta {
    type Output = TimeDelta;
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl std::ops::Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl std::ops::Div<u64> for TimeDelta {
    type Output = TimeDelta;
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl From<TimeDelta> for std::time::Duration {
    fn from(d: TimeDelta) -> Self {
        std::time::Duration::from_nanos(d.as_nanos())
    }
}

impl From<std::time::Duration> for TimeDelta {
    fn from(d: std::time::Duration) -> Self {
        TimeDelta(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(NodeId::from(7u32), id);
    }

    #[test]
    fn seq_num_ordering_and_next() {
        assert_eq!(SeqNum::ZERO.next(), SeqNum(1));
        assert!(SeqNum(3) > SeqNum(2));
        assert_eq!(SeqNum(5).to_string(), "#5");
    }

    #[test]
    fn time_delta_constructors_agree() {
        assert_eq!(TimeDelta::from_micros(1), TimeDelta::from_nanos(1_000));
        assert_eq!(TimeDelta::from_millis(1), TimeDelta::from_micros(1_000));
        assert_eq!(TimeDelta::from_secs(1), TimeDelta::from_millis(1_000));
        assert_eq!(TimeDelta::from_secs_f64(0.5), TimeDelta::from_millis(500));
    }

    #[test]
    fn time_delta_arithmetic() {
        let a = TimeDelta::from_millis(3);
        let b = TimeDelta::from_millis(2);
        assert_eq!(a + b, TimeDelta::from_millis(5));
        assert_eq!(a - b, TimeDelta::from_millis(1));
        assert_eq!(b * 4, TimeDelta::from_millis(8));
        assert_eq!(a / 3, TimeDelta::from_millis(1));
        assert_eq!(b.saturating_sub(a), TimeDelta::ZERO);
        assert_eq!(
            TimeDelta::from_nanos(u64::MAX).saturating_add(b),
            TimeDelta::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn time_delta_secs_f64_roundtrip() {
        let d = TimeDelta::from_secs_f64(0.123_456_789);
        assert!((d.as_secs_f64() - 0.123_456_789).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn time_delta_rejects_negative() {
        let _ = TimeDelta::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_conversions() {
        let d = TimeDelta::from_millis(250);
        let sd: std::time::Duration = d.into();
        assert_eq!(sd, std::time::Duration::from_millis(250));
        assert_eq!(TimeDelta::from(sd), d);
    }

    #[test]
    fn is_zero() {
        assert!(TimeDelta::ZERO.is_zero());
        assert!(!TimeDelta::from_nanos(1).is_zero());
    }
}
