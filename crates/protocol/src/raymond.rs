//! Raymond's tree-based token algorithm (TOCS 1989) — the algorithm the
//! paper cites as the previous best (≈ 4 messages per critical section at
//! heavy load, `O(log N)` under light load on a balanced tree).
//!
//! Nodes form a static logical spanning tree. Each node keeps a `holder`
//! pointer toward the token and a FIFO `request_q` of neighbors (or
//! itself) wanting the token. Requests and the PRIVILEGE travel along tree
//! edges only.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::api::{NoTimer, Protocol, ProtocolFactory, ProtocolMessage};
use crate::event::{Action, Input};
use crate::types::NodeId;

/// Messages of Raymond's algorithm (tree-neighbor hop granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum RaymondMsg {
    /// Ask the neighbor closer to the token to send it this way.
    Request,
    /// The token moves one tree edge.
    Privilege,
}

impl ProtocolMessage for RaymondMsg {
    fn kind(&self) -> &'static str {
        match self {
            RaymondMsg::Request => "REQUEST",
            RaymondMsg::Privilege => "PRIVILEGE",
        }
    }
}

/// Configuration (and [`ProtocolFactory`]) for Raymond's algorithm.
///
/// Nodes are arranged in a complete `branching`-ary tree rooted at node 0
/// (node `i > 0` has parent `(i − 1) / branching`); node 0 initially holds
/// the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub struct RaymondConfig {
    /// Tree branching factor (≥ 1). 2 gives the balanced binary tree used
    /// in Raymond's own analysis.
    pub branching: usize,
}

impl Default for RaymondConfig {
    fn default() -> Self {
        RaymondConfig { branching: 2 }
    }
}

impl RaymondConfig {
    /// Parent of `node` in the tree, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        if node.index() == 0 {
            None
        } else {
            Some(NodeId::from_index(
                (node.index() - 1) / self.branching.max(1),
            ))
        }
    }
}

impl ProtocolFactory for RaymondConfig {
    type Node = RaymondNode;
    fn build(&self, id: NodeId, n: usize) -> RaymondNode {
        assert!(self.branching >= 1, "branching factor must be at least 1");
        let holder = self.parent(id).unwrap_or(id);
        RaymondNode {
            id,
            n,
            holder,
            request_q: VecDeque::new(),
            asked: false,
            in_cs: false,
        }
    }
}

/// A node of Raymond's algorithm.
#[derive(Debug, Clone, Hash)]
pub struct RaymondNode {
    id: NodeId,
    n: usize,
    /// Neighbor in the direction of the token (self when holding it).
    holder: NodeId,
    /// FIFO of neighbors (or self) that want the token.
    request_q: VecDeque<NodeId>,
    /// Whether we already asked `holder` for the token.
    asked: bool,
    in_cs: bool,
}

impl RaymondNode {
    /// Raymond's ASSIGN_PRIVILEGE procedure.
    fn assign_privilege(&mut self, out: &mut Vec<Action<RaymondMsg, NoTimer>>) {
        if self.holder != self.id || self.in_cs {
            return;
        }
        let Some(next) = self.request_q.pop_front() else {
            return;
        };
        if next == self.id {
            self.in_cs = true;
            out.push(Action::EnterCs);
        } else {
            self.holder = next;
            self.asked = false;
            out.push(Action::Send {
                to: next,
                msg: RaymondMsg::Privilege,
            });
        }
    }

    /// Raymond's MAKE_REQUEST procedure.
    fn make_request(&mut self, out: &mut Vec<Action<RaymondMsg, NoTimer>>) {
        if self.holder == self.id || self.request_q.is_empty() || self.asked {
            return;
        }
        self.asked = true;
        out.push(Action::Send {
            to: self.holder,
            msg: RaymondMsg::Request,
        });
    }

    fn pump(&mut self, out: &mut Vec<Action<RaymondMsg, NoTimer>>) {
        self.assign_privilege(out);
        self.make_request(out);
    }
}

impl Protocol for RaymondNode {
    type Msg = RaymondMsg;
    type Timer = NoTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<RaymondMsg, NoTimer>) -> Vec<Action<RaymondMsg, NoTimer>> {
        let mut out = Vec::new();
        match input {
            Input::Start | Input::Crash | Input::Recover => {}
            Input::RequestCs => {
                if !self.request_q.contains(&self.id) {
                    self.request_q.push_back(self.id);
                }
                self.pump(&mut out);
            }
            Input::CsDone => {
                self.in_cs = false;
                self.pump(&mut out);
            }
            Input::Timer(t) => match t {},
            Input::Deliver { from, msg } => match msg {
                RaymondMsg::Request => {
                    if !self.request_q.contains(&from) {
                        self.request_q.push_back(from);
                    }
                    self.pump(&mut out);
                }
                RaymondMsg::Privilege => {
                    self.holder = self.id;
                    self.pump(&mut out);
                }
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.holder == self.id
    }

    fn algorithm(&self) -> &'static str {
        "raymond"
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted(id: u32, n: usize) -> RaymondNode {
        let mut node = RaymondConfig::default().build(NodeId(id), n);
        node.step(Input::Start);
        node
    }

    #[test]
    fn tree_shape_is_binary_by_default() {
        let c = RaymondConfig::default();
        assert_eq!(c.parent(NodeId(0)), None);
        assert_eq!(c.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(c.parent(NodeId(2)), Some(NodeId(0)));
        assert_eq!(c.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(c.parent(NodeId(6)), Some(NodeId(2)));
    }

    #[test]
    fn root_enters_directly() {
        let mut root = booted(0, 3);
        let acts = root.step(Input::RequestCs);
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
    }

    #[test]
    fn leaf_requests_up_the_tree() {
        let mut leaf = booted(3, 7);
        let acts = leaf.step(Input::RequestCs);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: RaymondMsg::Request
            }]
        ));
        // A second local request does not re-ask.
        let acts = leaf.step(Input::Deliver {
            from: NodeId(4),
            msg: RaymondMsg::Request,
        });
        assert!(acts.is_empty(), "asked flag must suppress duplicate asks");
    }

    #[test]
    fn token_flows_down_and_privilege_grants_head() {
        // Node 1 asked for node 3 (its child); when the token arrives it
        // forwards down and flips its holder pointer.
        let mut mid = booted(1, 7);
        mid.step(Input::Deliver {
            from: NodeId(3),
            msg: RaymondMsg::Request,
        });
        let acts = mid.step(Input::Deliver {
            from: NodeId(0),
            msg: RaymondMsg::Privilege,
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(3),
                msg: RaymondMsg::Privilege
            }]
        ));
        assert!(!mid.holds_token());
        assert_eq!(mid.holder, NodeId(3));
    }

    #[test]
    fn holder_serves_queue_after_cs() {
        let mut root = booted(0, 3);
        root.step(Input::RequestCs);
        // While in CS, a child asks.
        assert!(root
            .step(Input::Deliver {
                from: NodeId(1),
                msg: RaymondMsg::Request
            })
            .is_empty());
        let acts = root.step(Input::CsDone);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: RaymondMsg::Privilege
            }]
        ));
    }

    #[test]
    fn forwarding_token_asks_for_it_back_when_more_wait() {
        let mut root = booted(0, 3);
        // An idle holder hands the token to the first requester at once.
        let acts = root.step(Input::Deliver {
            from: NodeId(1),
            msg: RaymondMsg::Request,
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: RaymondMsg::Privilege
            }]
        ));
        // Root's own request now has to chase the token.
        let acts = root.step(Input::RequestCs);
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(1),
                msg: RaymondMsg::Request
            }]
        ));
        // When the token comes back, root enters.
        let acts = root.step(Input::Deliver {
            from: NodeId(1),
            msg: RaymondMsg::Privilege,
        });
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
    }
}
