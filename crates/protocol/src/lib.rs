//! Sans-io distributed mutual exclusion protocol state machines.
//!
//! This crate implements the rotating-arbiter token-passing algorithm of
//! *"A New Token Passing Distributed Mutual Exclusion Algorithm"*
//! (Banerjee & Chrysanthis, ICDCS 1996) — see [`arbiter`] — together with
//! the classic algorithms it is evaluated against:
//!
//! * [`ricart_agrawala`] — Ricart–Agrawala permission-based algorithm
//!   (`2(N−1)` messages per critical section);
//! * [`suzuki_kasami`] — Suzuki–Kasami broadcast token algorithm
//!   (`≈ N` messages);
//! * [`raymond`] — Raymond's tree-based token algorithm (`≈ 4` at heavy
//!   load, `O(log N)` typical);
//! * [`singhal`] — Singhal's dynamic information-structure algorithm;
//! * [`maekawa`] — Maekawa's √N quorum algorithm (with the full
//!   FAILED/INQUIRE/YIELD deadlock-avoidance machinery);
//! * [`centralized`] — a trivial central-coordinator baseline (3 messages).
//!
//! Every algorithm is a *pure state machine* implementing [`api::Protocol`]:
//! it consumes [`event::Input`]s and emits [`event::Action`]s, never
//! touching clocks, sockets, or threads. The `tokq-simnet` crate drives
//! these machines under a deterministic discrete-event network to reproduce
//! the paper's figures; the `tokq-core` crate drives the same machines on
//! real threads as a usable distributed lock.
//!
//! # Example
//!
//! Driving a three-node arbiter system by hand (what the simulator
//! automates):
//!
//! ```
//! use tokq_protocol::api::{Protocol, ProtocolFactory};
//! use tokq_protocol::arbiter::{ArbiterConfig, ArbiterMsg, ArbiterTimer};
//! use tokq_protocol::event::{Action, Input};
//! use tokq_protocol::types::NodeId;
//!
//! let cfg = ArbiterConfig::basic();
//! let mut nodes = cfg.build_all(3);
//! for node in &mut nodes {
//!     node.step(Input::Start);
//! }
//! // Node 1 requests its critical section: it sends REQUEST to node 0,
//! // the initial arbiter.
//! let actions = nodes[1].step(Input::RequestCs);
//! assert!(actions.iter().any(|a| matches!(
//!     a,
//!     Action::Send { to: NodeId(0), msg: ArbiterMsg::Request { .. } }
//! )));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod api;
pub mod arbiter;
pub mod centralized;
pub mod event;
pub mod maekawa;
pub mod qlist;
pub mod raymond;
pub mod ricart_agrawala;
pub mod singhal;
pub mod suzuki_kasami;
pub mod types;

pub use api::{Protocol, ProtocolFactory, ProtocolMessage};
pub use event::{Action, Input, Note};
pub use types::{NodeId, Priority, SeqNum, TimeDelta};
