//! The input/output vocabulary every protocol speaks.
//!
//! A protocol consumes [`Input`]s and returns [`Action`]s. Nothing else ever
//! crosses the boundary, which is what lets the same state machine run under
//! the discrete-event simulator (for the paper's figures) and the threaded
//! runtime (for real use) and be tested exhaustively in isolation.

use serde::{Deserialize, Serialize};

use crate::types::{NodeId, SeqNum, TimeDelta};

/// An event fed *into* a protocol state machine by its driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input<M, T> {
    /// The node has booted. Always the first input a node sees.
    Start,
    /// A message from `from` has been delivered to this node.
    Deliver {
        /// Originating node.
        from: NodeId,
        /// The protocol message.
        msg: M,
    },
    /// A timer previously set via [`Action::SetTimer`] has fired.
    Timer(T),
    /// The local application wants to enter the critical section.
    ///
    /// Drivers must ensure at most one application request is outstanding
    /// per node: the next `RequestCs` may only be issued after the matching
    /// critical section has been executed and [`Input::CsDone`] consumed
    /// (drivers queue excess arrivals).
    RequestCs,
    /// The local application has finished executing its critical section.
    ///
    /// Fed by the driver some time after the protocol emitted
    /// [`Action::EnterCs`].
    CsDone,
    /// The node crashes, losing all volatile state. Only meaningful to
    /// protocols with recovery support; others may treat it as fatal.
    Crash,
    /// The node restarts after a crash with fresh state.
    Recover,
}

/// An effect requested *by* a protocol state machine, executed by the driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M, T> {
    /// Send `msg` to node `to`. Counted as one message.
    Send {
        /// Destination node.
        to: NodeId,
        /// The protocol message.
        msg: M,
    },
    /// Send `msg` to every node except this one. Counted as `n - 1`
    /// messages (or fewer if `except` names additional nodes to skip).
    Broadcast {
        /// The protocol message.
        msg: M,
        /// Additional nodes to skip (the sender is always skipped).
        except: Vec<NodeId>,
    },
    /// Arm (or re-arm) the timer identified by `timer` to fire `after` from
    /// now. Re-arming an already-pending timer replaces it.
    SetTimer {
        /// Protocol-defined timer identity.
        timer: T,
        /// Delay until the timer fires.
        after: TimeDelta,
    },
    /// Cancel the pending timer identified by `timer`, if any.
    CancelTimer(T),
    /// The node may now execute its critical section. The driver runs the
    /// critical section and later feeds [`Input::CsDone`].
    EnterCs,
    /// A protocol-level observation for tracing/metrics; has no effect on
    /// execution.
    Note(Note),
}

impl<M, T> Action<M, T> {
    /// True if this action transmits at least one message.
    pub fn is_transmission(&self) -> bool {
        matches!(self, Action::Send { .. } | Action::Broadcast { .. })
    }
}

/// Protocol-level observations surfaced for metrics and traces.
///
/// Drivers count these; they never influence protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Note {
    /// An arbiter forwarded a late request to its successor (paper §2.1,
    /// request forwarding phase). Figure 5 plots the fraction of these.
    RequestForwarded {
        /// The node whose request was forwarded.
        requester: NodeId,
        /// How many hops the request has now been forwarded.
        hops: u32,
    },
    /// A request arrived outside both phases (or exceeded the forwarding
    /// threshold τ) and was dropped. The requester must retransmit.
    RequestDropped {
        /// The node whose request was dropped.
        requester: NodeId,
    },
    /// A requester noticed its id missing from a NEW-ARBITER Q-list and
    /// retransmitted its request.
    RequestRetransmitted {
        /// Retransmitting node.
        requester: NodeId,
        /// Consecutive NEW-ARBITER broadcasts that did not schedule it.
        misses: u32,
    },
    /// A requester escalated its request to the monitor node (starvation-free
    /// variant, paper §4.1).
    RequestEscalated {
        /// Escalating node.
        requester: NodeId,
    },
    /// The token visited the monitor node (starvation-free variant).
    MonitorVisit,
    /// The monitor merged its stored stray requests into the token's
    /// Q-list (the flush half of a monitor visit, paper §4.1).
    MonitorFlush {
        /// Stored requests merged into the schedule.
        merged: u32,
    },
    /// An arbiter opened a request collection window (paper §2.1).
    CollectionOpened,
    /// An outgoing arbiter opened its request forwarding phase, relaying
    /// late requests to the successor for `T_fwd` (paper §2.1).
    ForwardingOpened {
        /// The successor receiving forwarded requests.
        successor: NodeId,
    },
    /// The forwarding phase timed out; late requests are dropped again.
    ForwardingClosed,
    /// This node became the arbiter.
    BecameArbiter,
    /// An arbiter finalized a Q-list of the given length (scheduling one
    /// batch of critical sections).
    QListSealed {
        /// Number of scheduled requests in the sealed list.
        len: u32,
    },
    /// A node received the token without a pending request (a spurious grant
    /// caused by duplicate scheduling) and passed it straight on.
    SpuriousGrant,
    /// Token-loss recovery: a waiting node timed out and warned the arbiter.
    TokenWarning,
    /// Token-loss recovery: the arbiter began the two-phase invalidation.
    InvalidationStarted,
    /// Token-loss recovery: the token was found alive; operations resumed.
    TokenFound,
    /// Token-loss recovery: the token was declared lost and regenerated.
    TokenRegenerated,
    /// A previous arbiter concluded the current arbiter failed and took over.
    ArbiterTakeover,
    /// A sequence-number check discarded a stale (duplicate) request.
    StaleRequestDiscarded {
        /// The node whose stale request was discarded.
        requester: NodeId,
        /// The stale sequence number.
        seq: SeqNum,
    },
    /// A token from a superseded epoch arrived after regeneration and was
    /// discarded to preserve the single-token invariant.
    StaleTokenDiscarded,
}

impl Note {
    /// Stable label used by metric tables.
    pub fn label(self) -> &'static str {
        match self {
            Note::RequestForwarded { .. } => "request_forwarded",
            Note::RequestDropped { .. } => "request_dropped",
            Note::RequestRetransmitted { .. } => "request_retransmitted",
            Note::RequestEscalated { .. } => "request_escalated",
            Note::MonitorVisit => "monitor_visit",
            Note::MonitorFlush { .. } => "monitor_flush",
            Note::CollectionOpened => "collection_opened",
            Note::ForwardingOpened { .. } => "forwarding_opened",
            Note::ForwardingClosed => "forwarding_closed",
            Note::BecameArbiter => "became_arbiter",
            Note::QListSealed { .. } => "qlist_sealed",
            Note::SpuriousGrant => "spurious_grant",
            Note::TokenWarning => "token_warning",
            Note::InvalidationStarted => "invalidation_started",
            Note::TokenFound => "token_found",
            Note::TokenRegenerated => "token_regenerated",
            Note::ArbiterTakeover => "arbiter_takeover",
            Note::StaleRequestDiscarded { .. } => "stale_request_discarded",
            Note::StaleTokenDiscarded => "stale_token_discarded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type A = Action<&'static str, u8>;

    #[test]
    fn transmission_classification() {
        let send: A = Action::Send {
            to: NodeId(1),
            msg: "m",
        };
        let bcast: A = Action::Broadcast {
            msg: "m",
            except: vec![],
        };
        let timer: A = Action::SetTimer {
            timer: 0,
            after: TimeDelta::from_millis(1),
        };
        assert!(send.is_transmission());
        assert!(bcast.is_transmission());
        assert!(!timer.is_transmission());
        assert!(!A::EnterCs.is_transmission());
        assert!(!A::Note(Note::MonitorVisit).is_transmission());
    }

    #[test]
    fn note_labels_are_distinct() {
        let notes = [
            Note::RequestForwarded {
                requester: NodeId(0),
                hops: 1,
            },
            Note::RequestDropped {
                requester: NodeId(0),
            },
            Note::RequestRetransmitted {
                requester: NodeId(0),
                misses: 1,
            },
            Note::RequestEscalated {
                requester: NodeId(0),
            },
            Note::MonitorVisit,
            Note::MonitorFlush { merged: 1 },
            Note::CollectionOpened,
            Note::ForwardingOpened {
                successor: NodeId(1),
            },
            Note::ForwardingClosed,
            Note::BecameArbiter,
            Note::QListSealed { len: 1 },
            Note::SpuriousGrant,
            Note::TokenWarning,
            Note::InvalidationStarted,
            Note::TokenFound,
            Note::TokenRegenerated,
            Note::ArbiterTakeover,
            Note::StaleRequestDiscarded {
                requester: NodeId(0),
                seq: SeqNum(1),
            },
            Note::StaleTokenDiscarded,
        ];
        let mut labels: Vec<_> = notes.iter().map(|n| n.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), notes.len());
    }
}
