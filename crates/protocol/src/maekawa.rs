//! Maekawa's √N quorum algorithm (TOCS 1985) — cited by the paper (§5.1,
//! §7) as a comparator for load-balancing fairness.
//!
//! Every node has a *request set* (quorum) of size ≈ √N such that any two
//! quorums intersect; a node enters its critical section after locking its
//! entire quorum. The full algorithm needs FAILED / INQUIRE / YIELD
//! messages to break the deadlocks that naive quorum locking allows:
//! a locked arbiter that sees an older request INQUIREs its current
//! grantee, which YIELDs if it has not yet assembled its own quorum.
//!
//! The quorums here are the classic grid construction: nodes are arranged
//! in a `k × k` grid (padded); node `i`'s quorum is its row plus its
//! column, giving `2k − 1 ≈ 2√N` members with pairwise intersection.

use std::collections::BTreeSet;
use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::api::{NoTimer, Protocol, ProtocolFactory, ProtocolMessage};
use crate::event::{Action, Input};
use crate::types::NodeId;

/// Messages of Maekawa's algorithm.
///
/// Every message carries the timestamp of the request it concerns: the
/// published algorithm implicitly assumes FIFO channels, and the tags make
/// it robust to arbitrary reordering (a stale LOCKED or RELEASE is
/// recognizable and either ignored or answered with a reclamation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum MaekawaMsg {
    /// Ask a quorum member for its (single) vote.
    Request {
        /// Lamport timestamp of the request.
        ts: u64,
    },
    /// The member's vote is granted to the request stamped `ts`.
    Locked {
        /// Timestamp of the granted request.
        ts: u64,
    },
    /// The member is already locked by an older request.
    Failed {
        /// Timestamp of the failed request.
        ts: u64,
    },
    /// The member asks its current grantee (request `ts`) to consider
    /// yielding because an older request is blocked behind it.
    Inquire {
        /// Timestamp of the granted request being questioned.
        ts: u64,
    },
    /// The grantee relinquishes the vote it received for request `ts`.
    Yield {
        /// Timestamp of the yielded request.
        ts: u64,
    },
    /// The vote lent for request `ts` returns to the member.
    Release {
        /// Timestamp of the completed (or stale) request.
        ts: u64,
    },
}

impl ProtocolMessage for MaekawaMsg {
    fn kind(&self) -> &'static str {
        match self {
            MaekawaMsg::Request { .. } => "REQUEST",
            MaekawaMsg::Locked { .. } => "LOCKED",
            MaekawaMsg::Failed { .. } => "FAILED",
            MaekawaMsg::Inquire { .. } => "INQUIRE",
            MaekawaMsg::Yield { .. } => "YIELD",
            MaekawaMsg::Release { .. } => "RELEASE",
        }
    }
}

/// Configuration (and [`ProtocolFactory`]) for Maekawa's algorithm with
/// grid quorums.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize, Hash)]
pub struct MaekawaConfig;

impl MaekawaConfig {
    /// The grid quorum of `node` in an `n`-node system: its grid row and
    /// column (including itself). Any two quorums intersect.
    pub fn quorum(node: NodeId, n: usize) -> Vec<NodeId> {
        let k = (n as f64).sqrt().ceil() as usize;
        let row = node.index() / k;
        let col = node.index() % k;
        let mut q = BTreeSet::new();
        q.insert(node);
        for c in 0..k {
            let idx = row * k + c;
            if idx < n {
                q.insert(NodeId::from_index(idx));
            }
        }
        for r in 0..k.div_ceil(1) {
            let idx = r * k + col;
            if idx < n {
                q.insert(NodeId::from_index(idx));
            }
        }
        q.into_iter().collect()
    }
}

impl ProtocolFactory for MaekawaConfig {
    type Node = MaekawaNode;
    fn build(&self, id: NodeId, n: usize) -> MaekawaNode {
        MaekawaNode {
            id,
            n,
            quorum: MaekawaConfig::quorum(id, n),
            clock: 0,
            requesting: false,
            request_ts: 0,
            votes: BTreeSet::new(),
            pending_inquires: BTreeSet::new(),
            failed_seen: false,
            in_cs: false,
            // Member (voter) state:
            granted_to: None,
            inquired: false,
            wait_q: VecDeque::new(),
        }
    }
}

/// A node of Maekawa's algorithm. One struct plays both roles: requester
/// (collecting its quorum's votes) and quorum member (casting one vote).
#[derive(Debug, Clone, Hash)]
pub struct MaekawaNode {
    id: NodeId,
    n: usize,
    quorum: Vec<NodeId>,
    clock: u64,
    // Requester state.
    requesting: bool,
    request_ts: u64,
    votes: BTreeSet<NodeId>,
    /// Members that INQUIREd us before their LOCKED arrived (non-FIFO
    /// reordering): the vote is yielded back the moment it lands, unless
    /// it completes the quorum.
    pending_inquires: BTreeSet<NodeId>,
    failed_seen: bool,
    in_cs: bool,
    // Member state: whom our vote is lent to, and the waiting requests.
    granted_to: Option<(u64, NodeId)>,
    inquired: bool,
    wait_q: VecDeque<(u64, NodeId)>,
}

impl MaekawaNode {
    fn ord(ts: u64, node: NodeId) -> (u64, u32) {
        (ts, node.0)
    }

    /// Member role: grant the vote to the next waiting request, if free.
    fn grant_next(&mut self, out: &mut Vec<Action<MaekawaMsg, NoTimer>>) {
        if self.granted_to.is_some() {
            return;
        }
        // Grant the oldest waiting request.
        let Some(best_idx) =
            (0..self.wait_q.len()).min_by_key(|&i| Self::ord(self.wait_q[i].0, self.wait_q[i].1))
        else {
            return;
        };
        let (ts, node) = self.wait_q.remove(best_idx).expect("index valid");
        self.granted_to = Some((ts, node));
        self.inquired = false;
        if node == self.id {
            self.on_locked(self.id, ts, out);
        } else {
            out.push(Action::Send {
                to: node,
                msg: MaekawaMsg::Locked { ts },
            });
        }
    }

    /// Member role: a new request arrives.
    fn member_request(
        &mut self,
        ts: u64,
        from: NodeId,
        out: &mut Vec<Action<MaekawaMsg, NoTimer>>,
    ) {
        // A newer request from the same node supersedes any stale queued
        // one (the old RELEASE may still be in flight).
        self.wait_q.retain(|&(qts, qn)| !(qn == from && qts < ts));
        if self.wait_q.iter().any(|&(qts, qn)| qn == from && qts >= ts) {
            return; // duplicate or out-of-date copy
        }
        match self.granted_to {
            None => {
                self.wait_q.push_back((ts, from));
                self.grant_next(out);
            }
            Some((gts, gnode)) => {
                if gnode == from && gts >= ts {
                    return; // stale duplicate of the very grant we hold
                }
                self.wait_q.push_back((ts, from));
                if Self::ord(ts, from) < Self::ord(gts, gnode) {
                    // An older request is blocked by our younger grant:
                    // ask the grantee to yield (once).
                    if !self.inquired {
                        self.inquired = true;
                        if gnode == self.id {
                            self.on_inquire(self.id, gts, out);
                        } else {
                            out.push(Action::Send {
                                to: gnode,
                                msg: MaekawaMsg::Inquire { ts: gts },
                            });
                        }
                    }
                } else {
                    // The newcomer loses; tell it so it can watch for
                    // deadlock (classic Maekawa FAILED).
                    if from == self.id {
                        self.on_failed(self.id, ts, out);
                    } else {
                        out.push(Action::Send {
                            to: from,
                            msg: MaekawaMsg::Failed { ts },
                        });
                    }
                }
            }
        }
    }

    /// Requester role: got a member's vote for request `ts`.
    fn on_locked(&mut self, from: NodeId, ts: u64, out: &mut Vec<Action<MaekawaMsg, NoTimer>>) {
        if !self.requesting || ts != self.request_ts {
            // A vote for a request we no longer hold: hand it straight
            // back so it is not stranded at a grantee that will never
            // release it.
            if from == self.id {
                self.member_release_for(ts, self.id, out);
            } else {
                out.push(Action::Send {
                    to: from,
                    msg: MaekawaMsg::Release { ts },
                });
            }
            return;
        }
        if self.in_cs {
            return;
        }
        self.votes.insert(from);
        if self.votes.len() == self.quorum.len() {
            self.pending_inquires.clear();
            self.in_cs = true;
            out.push(Action::EnterCs);
            return;
        }
        // An INQUIRE raced ahead of this vote: honor it now that the vote
        // is actually here (the quorum is still incomplete, so yielding is
        // safe and unblocks the older request the member vouched for).
        if self.pending_inquires.remove(&from) && self.votes.remove(&from) {
            if from == self.id {
                self.member_yield(ts, self.id, out);
            } else {
                out.push(Action::Send {
                    to: from,
                    msg: MaekawaMsg::Yield { ts },
                });
            }
        }
    }

    /// Requester role: a member is held by an older request.
    fn on_failed(&mut self, _from: NodeId, ts: u64, _out: &mut Vec<Action<MaekawaMsg, NoTimer>>) {
        if self.requesting && ts == self.request_ts {
            self.failed_seen = true;
        }
    }

    /// Requester role: a member wants its vote (for request `ts`) back.
    fn on_inquire(&mut self, from: NodeId, ts: u64, out: &mut Vec<Action<MaekawaMsg, NoTimer>>) {
        if self.in_cs || !self.requesting || ts != self.request_ts {
            return;
        }
        if self.votes.len() == self.quorum.len() {
            return; // complete quorum: we are entering; ignore
        }
        if !self.votes.contains(&from) {
            // The vote this INQUIRE refers to has not arrived yet
            // (non-FIFO channel): honor the inquiry when it does.
            self.pending_inquires.insert(from);
            return;
        }
        if self.votes.remove(&from) {
            if from == self.id {
                self.member_yield(ts, self.id, out);
            } else {
                out.push(Action::Send {
                    to: from,
                    msg: MaekawaMsg::Yield { ts },
                });
            }
        }
    }

    /// Member role: the grantee yields our vote; re-grant to the oldest
    /// waiter and requeue the yielder.
    fn member_yield(&mut self, ts: u64, from: NodeId, out: &mut Vec<Action<MaekawaMsg, NoTimer>>) {
        if self.granted_to != Some((ts, from)) {
            return; // stale yield for a grant we no longer hold
        }
        if let Some((gts, gnode)) = self.granted_to.take() {
            self.wait_q.push_back((gts, gnode));
        }
        self.inquired = false;
        self.grant_next(out);
    }

    /// Member role: the vote lent for `(ts, from)` returns.
    fn member_release_for(
        &mut self,
        ts: u64,
        from: NodeId,
        out: &mut Vec<Action<MaekawaMsg, NoTimer>>,
    ) {
        if self.granted_to == Some((ts, from)) {
            self.granted_to = None;
            self.inquired = false;
            self.grant_next(out);
        } else {
            // Stale release: the matching queued request (if any) is void.
            self.wait_q.retain(|&(qts, qn)| !(qn == from && qts <= ts));
        }
    }
}

impl Protocol for MaekawaNode {
    type Msg = MaekawaMsg;
    type Timer = NoTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<MaekawaMsg, NoTimer>) -> Vec<Action<MaekawaMsg, NoTimer>> {
        let mut out = Vec::new();
        match input {
            Input::Start | Input::Crash | Input::Recover => {}
            Input::RequestCs => {
                debug_assert!(!self.requesting && !self.in_cs);
                self.clock += 1;
                self.requesting = true;
                self.request_ts = self.clock;
                self.failed_seen = false;
                self.votes.clear();
                self.pending_inquires.clear();
                let ts = self.request_ts;
                for &m in &self.quorum.clone() {
                    if m == self.id {
                        self.member_request(ts, self.id, &mut out);
                    } else {
                        out.push(Action::Send {
                            to: m,
                            msg: MaekawaMsg::Request { ts },
                        });
                    }
                }
            }
            Input::CsDone => {
                self.in_cs = false;
                self.requesting = false;
                self.votes.clear();
                self.pending_inquires.clear();
                let ts = self.request_ts;
                for &m in &self.quorum.clone() {
                    if m == self.id {
                        self.member_release_for(ts, self.id, &mut out);
                    } else {
                        out.push(Action::Send {
                            to: m,
                            msg: MaekawaMsg::Release { ts },
                        });
                    }
                }
            }
            Input::Timer(t) => match t {},
            Input::Deliver { from, msg } => match msg {
                MaekawaMsg::Request { ts } => {
                    self.clock = self.clock.max(ts) + 1;
                    self.member_request(ts, from, &mut out);
                }
                MaekawaMsg::Locked { ts } => self.on_locked(from, ts, &mut out),
                MaekawaMsg::Failed { ts } => self.on_failed(from, ts, &mut out),
                MaekawaMsg::Inquire { ts } => self.on_inquire(from, ts, &mut out),
                MaekawaMsg::Yield { ts } => self.member_yield(ts, from, &mut out),
                MaekawaMsg::Release { ts } => self.member_release_for(ts, from, &mut out),
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.in_cs
    }

    fn algorithm(&self) -> &'static str {
        "maekawa"
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_quorums_pairwise_intersect() {
        for n in [4usize, 9, 10, 16, 25, 7] {
            let quorums: Vec<Vec<NodeId>> = (0..n)
                .map(|i| MaekawaConfig::quorum(NodeId::from_index(i), n))
                .collect();
            for a in 0..n {
                for b in 0..n {
                    let inter = quorums[a].iter().any(|x| quorums[b].contains(x));
                    assert!(inter, "quorums of {a} and {b} disjoint in n={n}");
                }
            }
        }
    }

    #[test]
    fn quorum_size_is_about_2_sqrt_n() {
        let q = MaekawaConfig::quorum(NodeId(0), 25);
        assert_eq!(q.len(), 9); // row(5) + column(5) − self
        let q = MaekawaConfig::quorum(NodeId(7), 16);
        assert_eq!(q.len(), 7);
    }

    #[test]
    fn quorum_contains_self() {
        for n in [2usize, 5, 12] {
            for i in 0..n {
                let id = NodeId::from_index(i);
                assert!(MaekawaConfig::quorum(id, n).contains(&id));
            }
        }
    }

    #[test]
    fn single_member_grant_path() {
        // n = 1: quorum = {self}; request grants immediately.
        let mut node = MaekawaConfig.build(NodeId(0), 1);
        node.step(Input::Start);
        let acts = node.step(Input::RequestCs);
        assert!(acts.iter().any(|a| matches!(a, Action::EnterCs)));
        assert!(node.step(Input::CsDone).is_empty());
    }

    #[test]
    fn votes_assemble_into_entry() {
        // n = 4 grid (k=2): quorum of node 0 is {0, 1, 2}.
        let mut a = MaekawaConfig.build(NodeId(0), 4);
        a.step(Input::Start);
        let acts = a.step(Input::RequestCs);
        // Sends REQUEST to 1 and 2; votes for itself immediately.
        let sends = acts
            .iter()
            .filter(|x| matches!(x, Action::Send { .. }))
            .count();
        assert_eq!(sends, 2);
        assert!(a
            .step(Input::Deliver {
                from: NodeId(1),
                msg: MaekawaMsg::Locked { ts: 1 }
            })
            .is_empty());
        let acts = a.step(Input::Deliver {
            from: NodeId(2),
            msg: MaekawaMsg::Locked { ts: 1 },
        });
        assert!(acts.iter().any(|x| matches!(x, Action::EnterCs)));
    }

    #[test]
    fn member_serializes_two_requesters() {
        // Node 1 as a pure member: grants node 0, queues node 3, then
        // re-grants on release.
        let mut m = MaekawaConfig.build(NodeId(1), 4);
        m.step(Input::Start);
        let acts = m.step(Input::Deliver {
            from: NodeId(0),
            msg: MaekawaMsg::Request { ts: 1 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(0),
                msg: MaekawaMsg::Locked { ts: 1 }
            }]
        ));
        // Younger request gets FAILED.
        let acts = m.step(Input::Deliver {
            from: NodeId(3),
            msg: MaekawaMsg::Request { ts: 5 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(3),
                msg: MaekawaMsg::Failed { ts: 5 }
            }]
        ));
        let acts = m.step(Input::Deliver {
            from: NodeId(0),
            msg: MaekawaMsg::Release { ts: 1 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(3),
                msg: MaekawaMsg::Locked { ts: 5 }
            }]
        ));
    }

    #[test]
    fn older_request_triggers_inquire() {
        let mut m = MaekawaConfig.build(NodeId(1), 4);
        m.step(Input::Start);
        m.step(Input::Deliver {
            from: NodeId(3),
            msg: MaekawaMsg::Request { ts: 10 },
        });
        // An older (smaller-ts) request arrives: the member INQUIREs its
        // current grantee.
        let acts = m.step(Input::Deliver {
            from: NodeId(0),
            msg: MaekawaMsg::Request { ts: 2 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(3),
                msg: MaekawaMsg::Inquire { ts: 10 }
            }]
        ));
        // The grantee yields: the vote moves to the older request.
        let acts = m.step(Input::Deliver {
            from: NodeId(3),
            msg: MaekawaMsg::Yield { ts: 10 },
        });
        assert!(matches!(
            acts.as_slice(),
            [Action::Send {
                to: NodeId(0),
                msg: MaekawaMsg::Locked { ts: 2 }
            }]
        ));
    }
}
