//! The Suzuki–Kasami broadcast token algorithm (TOCS 1985) — the paper's
//! closest token-based relative (the arbiter algorithm is described as a
//! "reverse" Suzuki–Kasami).
//!
//! A request broadcasts `REQUEST(j, n)` to all `N−1` other nodes; the token
//! carries the `LN` array of last-granted sequence numbers and a FIFO queue
//! of known requesters. Cost per critical section: `N` messages when the
//! requester does not hold the token, `0` when it does.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::api::{NoTimer, Protocol, ProtocolFactory, ProtocolMessage};
use crate::event::{Action, Input};
use crate::types::NodeId;

/// The Suzuki–Kasami token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub struct SkToken {
    /// `LN[j]`: sequence number of node `j`'s most recently granted request.
    pub ln: Vec<u64>,
    /// FIFO queue of nodes with known outstanding requests.
    pub queue: VecDeque<NodeId>,
}

impl SkToken {
    /// The token of an `n`-node system before any grants.
    pub fn initial(n: usize) -> Self {
        SkToken {
            ln: vec![0; n],
            queue: VecDeque::new(),
        }
    }
}

/// Messages of the Suzuki–Kasami algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub enum SkMsg {
    /// `REQUEST(j, n)` broadcast by requester `j` with sequence number `n`.
    Request {
        /// Sequence number of the request.
        seq: u64,
    },
    /// The PRIVILEGE token.
    Privilege(SkToken),
}

impl ProtocolMessage for SkMsg {
    fn kind(&self) -> &'static str {
        match self {
            SkMsg::Request { .. } => "REQUEST",
            SkMsg::Privilege(_) => "PRIVILEGE",
        }
    }

    /// REQUEST is absorbed with `RN[j] := max(RN[j], seq)` — idempotent —
    /// while the PRIVILEGE token is unique by channel assumption.
    fn duplication_tolerant(&self) -> bool {
        matches!(self, SkMsg::Request { .. })
    }
}

/// Configuration (and [`ProtocolFactory`]) for Suzuki–Kasami.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Hash)]
pub struct SkConfig {
    /// The node initially holding the token.
    pub initial_holder: NodeId,
}

impl Default for SkConfig {
    fn default() -> Self {
        SkConfig {
            initial_holder: NodeId(0),
        }
    }
}

impl ProtocolFactory for SkConfig {
    type Node = SkNode;
    fn build(&self, id: NodeId, n: usize) -> SkNode {
        assert!(self.initial_holder.index() < n, "holder out of range");
        SkNode {
            id,
            n,
            rn: vec![0; n],
            token: if id == self.initial_holder {
                Some(SkToken::initial(n))
            } else {
                None
            },
            requesting: false,
            in_cs: false,
        }
    }
}

/// A node of the Suzuki–Kasami algorithm.
#[derive(Debug, Clone, Hash)]
pub struct SkNode {
    id: NodeId,
    n: usize,
    /// `RN[j]`: highest request sequence number heard from node `j`.
    rn: Vec<u64>,
    token: Option<SkToken>,
    requesting: bool,
    in_cs: bool,
}

impl SkNode {
    /// After finishing a critical section (or while holding the token
    /// idle), release the token to the next outstanding requester, if any.
    fn release_token(&mut self, out: &mut Vec<Action<SkMsg, NoTimer>>) {
        let Some(tok) = self.token.as_mut() else {
            return;
        };
        // Append every node whose request is newer than its last grant and
        // that is not already queued (the paper's exit protocol).
        for j in 0..self.n {
            let nj = NodeId::from_index(j);
            if nj != self.id && self.rn[j] == tok.ln[j] + 1 && !tok.queue.contains(&nj) {
                tok.queue.push_back(nj);
            }
        }
        if let Some(next) = tok.queue.pop_front() {
            let tok = self.token.take().expect("token present");
            out.push(Action::Send {
                to: next,
                msg: SkMsg::Privilege(tok),
            });
        }
    }
}

impl Protocol for SkNode {
    type Msg = SkMsg;
    type Timer = NoTimer;

    fn id(&self) -> NodeId {
        self.id
    }

    fn num_nodes(&self) -> usize {
        self.n
    }

    fn step(&mut self, input: Input<SkMsg, NoTimer>) -> Vec<Action<SkMsg, NoTimer>> {
        let mut out = Vec::new();
        match input {
            Input::Start | Input::Crash | Input::Recover => {}
            Input::RequestCs => {
                debug_assert!(!self.requesting && !self.in_cs);
                self.requesting = true;
                if self.token.is_some() {
                    // Idle token holder: zero messages (the low-load best
                    // case the paper compares against).
                    self.in_cs = true;
                    out.push(Action::EnterCs);
                } else {
                    let me = self.id.index();
                    self.rn[me] += 1;
                    out.push(Action::Broadcast {
                        msg: SkMsg::Request { seq: self.rn[me] },
                        except: Vec::new(),
                    });
                }
            }
            Input::CsDone => {
                self.in_cs = false;
                self.requesting = false;
                let me = self.id.index();
                let rn_me = self.rn[me];
                if let Some(tok) = self.token.as_mut() {
                    tok.ln[me] = rn_me;
                }
                self.release_token(&mut out);
            }
            Input::Timer(t) => match t {},
            Input::Deliver { from, msg } => match msg {
                SkMsg::Request { seq } => {
                    let j = from.index();
                    self.rn[j] = self.rn[j].max(seq);
                    // An idle holder passes the token straight to a fresh
                    // requester.
                    if !self.in_cs && !self.requesting {
                        self.release_token(&mut out);
                    }
                }
                SkMsg::Privilege(tok) => {
                    debug_assert!(self.token.is_none(), "duplicate token");
                    self.token = Some(tok);
                    if self.requesting {
                        self.in_cs = true;
                        out.push(Action::EnterCs);
                    } else {
                        // Arrived for a request we no longer hold (cannot
                        // happen with per-node sequence numbers, but be
                        // safe): pass it on or park it.
                        self.release_token(&mut out);
                    }
                }
            },
        }
        out
    }

    fn holds_token(&self) -> bool {
        self.token.is_some()
    }

    fn algorithm(&self) -> &'static str {
        "suzuki-kasami"
    }

    fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
        std::hash::Hash::hash(self, &mut h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booted(id: u32, n: usize) -> SkNode {
        let mut node = SkConfig::default().build(NodeId(id), n);
        node.step(Input::Start);
        node
    }

    #[test]
    fn idle_holder_enters_for_free() {
        let mut holder = booted(0, 3);
        let acts = holder.step(Input::RequestCs);
        assert!(matches!(acts.as_slice(), [Action::EnterCs]));
        assert!(holder.step(Input::CsDone).is_empty());
        assert!(holder.holds_token());
    }

    #[test]
    fn remote_request_costs_broadcast_plus_token() {
        let mut holder = booted(0, 3);
        let mut other = booted(1, 3);
        let acts = other.step(Input::RequestCs);
        assert!(matches!(
            acts.as_slice(),
            [Action::Broadcast {
                msg: SkMsg::Request { seq: 1 },
                ..
            }]
        ));
        // Idle holder hands the token over immediately.
        let acts = holder.step(Input::Deliver {
            from: NodeId(1),
            msg: SkMsg::Request { seq: 1 },
        });
        match acts.as_slice() {
            [Action::Send {
                to: NodeId(1),
                msg: SkMsg::Privilege(_),
            }] => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!holder.holds_token());
    }

    #[test]
    fn exit_passes_token_down_queue() {
        let mut holder = booted(0, 3);
        holder.step(Input::RequestCs); // enters own CS
        holder.step(Input::Deliver {
            from: NodeId(1),
            msg: SkMsg::Request { seq: 1 },
        });
        holder.step(Input::Deliver {
            from: NodeId(2),
            msg: SkMsg::Request { seq: 1 },
        });
        let acts = holder.step(Input::CsDone);
        // Token goes to the first requester, with node 2 queued inside it.
        match acts.as_slice() {
            [Action::Send {
                to: NodeId(1),
                msg: SkMsg::Privilege(tok),
            }] => {
                assert_eq!(tok.queue.front(), Some(&NodeId(2)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn stale_request_does_not_move_token() {
        let mut holder = booted(0, 2);
        // Grant node 1's request #1 through a full cycle.
        holder.step(Input::Deliver {
            from: NodeId(1),
            msg: SkMsg::Request { seq: 1 },
        });
        assert!(!holder.holds_token());
        // Token returns after node 1's CS: LN[1] = 1.
        let mut tok = SkToken::initial(2);
        tok.ln[1] = 1;
        holder.step(Input::Deliver {
            from: NodeId(1),
            msg: SkMsg::Privilege(tok),
        });
        // A duplicate of the old request must not trigger another grant.
        let acts = holder.step(Input::Deliver {
            from: NodeId(1),
            msg: SkMsg::Request { seq: 1 },
        });
        assert!(acts.is_empty());
        assert!(holder.holds_token());
    }

    #[test]
    fn token_received_while_not_requesting_is_forwarded() {
        let mut a = booted(1, 3);
        // Node 2 has an outstanding request a knows about.
        a.step(Input::Deliver {
            from: NodeId(2),
            msg: SkMsg::Request { seq: 1 },
        });
        let acts = a.step(Input::Deliver {
            from: NodeId(0),
            msg: SkMsg::Privilege(SkToken::initial(3)),
        });
        match acts.as_slice() {
            [Action::Send {
                to: NodeId(2),
                msg: SkMsg::Privilege(_),
            }] => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
