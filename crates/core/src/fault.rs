//! Runtime-mutable fault injection for the live cluster.
//!
//! A [`FaultPanel`] is a shared control surface the transports consult on
//! every frame: a per-link block matrix (partitions), plus an injected
//! extra loss probability (loss bursts). Unlike the simulator's
//! `tokq_simnet`-style scripted fault plans, the panel is mutated *while
//! the cluster runs* — by tests, by the chaos soak driver
//! ([`crate::chaos`]), or by an operator poking at a live system. Every
//! transition emits a structured obs event on the `fault` target, so a
//! flight-recorder dump shows exactly which faults were active when
//! something went wrong.
//!
//! Semantics match the simulator's network model: frames already in
//! flight when a partition starts still deliver (`crates/simnet`'s
//! `crosses_partition` does the same). The channel transport evaluates
//! blocks and loss at *send* time; the TCP transport evaluates them at
//! *flush* time, on its writer threads, immediately before the frame
//! would hit the socket — the protocol thread only enqueues. Both points
//! are "the moment the frame would enter the network", so the observable
//! semantics match.
//!
//! Transports may register wakers ([`FaultPanel`] calls every waker on
//! every transition): the TCP writer threads park while a link is
//! blocked and a waker fires on heal, replacing timed polling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use tokq_obs::{Counter, Event, Level, Obs, Source};

/// Trace target for fault-injection transitions.
const T_FAULT: &str = "fault";

struct PanelInner {
    n: usize,
    /// Row-major `n × n` link-block matrix: `blocked[from * n + to]`.
    blocked: Vec<AtomicBool>,
    /// Extra drop probability injected on top of the configured network
    /// loss, stored as `f64` bits.
    loss_bits: AtomicU64,
    /// SplitMix64 state for injected-loss rolls.
    rng: AtomicU64,
    obs: Obs,
    /// Frames dropped because their link was blocked.
    blocked_drops: Counter,
    /// Frames dropped by injected (panel) loss.
    injected_drops: Counter,
    /// Fault transitions applied (block/unblock/partition/heal/loss).
    transitions: Counter,
    /// Transport wakers, all invoked after every transition. Registration
    /// is rare (transport construction); invocation is lock-read only.
    wakers: RwLock<Vec<Box<dyn Fn() + Send + Sync>>>,
}

/// A shared, runtime-mutable fault surface for a cluster's transports.
///
/// Cheap to clone; all clones share state. Obtain a cluster's panel via
/// [`crate::Cluster::fault_panel`], or build one directly for standalone
/// transports.
///
/// # Examples
///
/// ```
/// use tokq_core::fault::FaultPanel;
///
/// let panel = FaultPanel::detached(4);
/// panel.partition(&[&[0, 1], &[2, 3]]);
/// assert!(panel.is_blocked(0, 2));
/// assert!(!panel.is_blocked(0, 1));
/// panel.heal();
/// assert!(!panel.is_blocked(0, 2));
/// ```
#[derive(Clone)]
pub struct FaultPanel {
    inner: Arc<PanelInner>,
}

impl std::fmt::Debug for FaultPanel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPanel")
            .field("n", &self.inner.n)
            .field("blocked_links", &self.blocked_links())
            .field("loss", &self.loss())
            .finish()
    }
}

impl FaultPanel {
    /// A panel for `n` nodes recording transitions and drop counters
    /// (`fault_blocked_drops`, `fault_injected_drops`,
    /// `fault_transitions`) into `obs`.
    pub fn new(n: usize, obs: &Obs) -> Self {
        FaultPanel {
            inner: Arc::new(PanelInner {
                n,
                blocked: (0..n * n).map(|_| AtomicBool::new(false)).collect(),
                loss_bits: AtomicU64::new(0f64.to_bits()),
                rng: AtomicU64::new(0x5EED_FA01),
                obs: obs.clone(),
                blocked_drops: obs.registry().counter("fault_blocked_drops"),
                injected_drops: obs.registry().counter("fault_injected_drops"),
                transitions: obs.registry().counter("fault_transitions"),
                wakers: RwLock::new(Vec::new()),
            }),
        }
    }

    /// Registers a waker invoked after every fault transition. The TCP
    /// sender uses this to re-flush parked frames the instant a link
    /// heals, instead of polling on a timer. Wakers must be cheap and
    /// non-blocking (the TCP one pushes onto unbounded kick channels).
    pub(crate) fn add_waker(&self, waker: Box<dyn Fn() + Send + Sync>) {
        self.inner.wakers.write().push(waker);
    }

    /// Invokes every registered waker.
    fn wake_all(&self) {
        for w in self.inner.wakers.read().iter() {
            w();
        }
    }

    /// A panel with observability disabled (tests, standalone transports).
    pub fn detached(n: usize) -> Self {
        Self::new(n, &Obs::disabled(Source::Runtime))
    }

    /// Number of nodes the panel covers.
    pub fn len(&self) -> usize {
        self.inner.n
    }

    /// True when the panel covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.n == 0
    }

    fn event(&self, name: &'static str) -> Option<Event> {
        if self.inner.obs.enabled(T_FAULT, Level::Info) {
            Some(Event::new(T_FAULT, Level::Info, name))
        } else {
            None
        }
    }

    fn emit(&self, event: Option<Event>) {
        if let Some(e) = event {
            self.inner.obs.emit(e);
        }
    }

    fn warn_range(&self, name: &'static str, node: usize) {
        if self.inner.obs.enabled(T_FAULT, Level::Info) {
            self.inner.obs.emit(
                Event::new(T_FAULT, Level::Info, name)
                    .field("node", &(node as u64))
                    .field("n", &(self.inner.n as u64)),
            );
        }
    }

    fn set_link(&self, from: usize, to: usize, blocked: bool) {
        self.inner.blocked[from * self.inner.n + to].store(blocked, Ordering::Relaxed);
    }

    /// Blocks the directed link `from → to`. Out-of-range indices are a
    /// warn-event no-op.
    pub fn block(&self, from: usize, to: usize) {
        if from >= self.inner.n || to >= self.inner.n {
            self.warn_range("block_out_of_range", from.max(to));
            return;
        }
        self.inner.transitions.inc();
        self.set_link(from, to, true);
        self.emit(
            self.event("link_blocked")
                .map(|e| e.field("from", &(from as u64)).field("to", &(to as u64))),
        );
        self.wake_all();
    }

    /// Unblocks the directed link `from → to`. Out-of-range indices are a
    /// warn-event no-op.
    pub fn unblock(&self, from: usize, to: usize) {
        if from >= self.inner.n || to >= self.inner.n {
            self.warn_range("unblock_out_of_range", from.max(to));
            return;
        }
        self.inner.transitions.inc();
        self.set_link(from, to, false);
        self.emit(
            self.event("link_unblocked")
                .map(|e| e.field("from", &(from as u64)).field("to", &(to as u64))),
        );
        self.wake_all();
    }

    /// Blocks both directions between `a` and `b` (a symmetric link cut).
    pub fn block_pair(&self, a: usize, b: usize) {
        self.block(a, b);
        self.block(b, a);
    }

    /// Installs a partition: nodes in different `groups` cannot exchange
    /// frames in either direction; nodes within one group (and nodes not
    /// listed in any group) keep their links. Replaces the whole block
    /// matrix — previous blocks are cleared first. Out-of-range node
    /// indices inside a group are warn-event no-ops.
    pub fn partition(&self, groups: &[&[usize]]) {
        let n = self.inner.n;
        for link in &self.inner.blocked {
            link.store(false, Ordering::Relaxed);
        }
        let mut group_of = vec![usize::MAX; n];
        for (gi, group) in groups.iter().enumerate() {
            for &node in group.iter() {
                if node >= n {
                    self.warn_range("partition_out_of_range", node);
                    continue;
                }
                group_of[node] = gi;
            }
        }
        for from in 0..n {
            for to in 0..n {
                // Unlisted nodes (usize::MAX) stay connected to everyone.
                let cut = group_of[from] != group_of[to]
                    && group_of[from] != usize::MAX
                    && group_of[to] != usize::MAX;
                self.set_link(from, to, cut);
            }
        }
        self.inner.transitions.inc();
        self.emit(self.event("partitioned").map(|e| {
            e.field("groups", &(groups.len() as u64))
                .field("blocked_links", &self.blocked_links())
        }));
        self.wake_all();
    }

    /// Clears every blocked link and the injected loss: the network is
    /// whole again.
    pub fn heal(&self) {
        for link in &self.inner.blocked {
            link.store(false, Ordering::Relaxed);
        }
        self.inner
            .loss_bits
            .store(0f64.to_bits(), Ordering::Relaxed);
        self.inner.transitions.inc();
        self.emit(self.event("healed"));
        self.wake_all();
    }

    /// Sets the injected extra loss probability (on top of any configured
    /// [`crate::NetOptions`] loss).
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability.
    pub fn set_loss(&self, loss: f64) {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.inner
            .loss_bits
            .store(loss.to_bits(), Ordering::Relaxed);
        self.inner.transitions.inc();
        self.emit(self.event("loss_set").map(|e| e.field("prob", &loss)));
        self.wake_all();
    }

    /// The currently injected extra loss probability.
    pub fn loss(&self) -> f64 {
        f64::from_bits(self.inner.loss_bits.load(Ordering::Relaxed))
    }

    /// True when the directed link `from → to` is blocked. Links outside
    /// the panel's matrix are never blocked: the panel only injects faults
    /// on the nodes it was sized for (senders may carry foreign ids, e.g.
    /// a standalone [`crate::tcp::TcpSender`] with fewer addresses than
    /// the cluster has nodes).
    pub fn is_blocked(&self, from: usize, to: usize) -> bool {
        if from >= self.inner.n || to >= self.inner.n {
            return false;
        }
        self.inner.blocked[from * self.inner.n + to].load(Ordering::Relaxed)
    }

    /// Number of currently blocked directed links.
    pub fn blocked_links(&self) -> u64 {
        self.inner
            .blocked
            .iter()
            .filter(|b| b.load(Ordering::Relaxed))
            .count() as u64
    }

    /// True when no link is blocked and no loss is injected.
    pub fn is_quiet(&self) -> bool {
        self.blocked_links() == 0 && self.loss() == 0.0
    }

    /// Transport hook: returns `true` when a frame `from → to` may pass
    /// right now, counting the drop otherwise. Evaluates the block matrix
    /// first, then rolls the injected loss.
    pub fn admits(&self, from: usize, to: usize) -> bool {
        if self.is_blocked(from, to) {
            self.inner.blocked_drops.inc();
            return false;
        }
        !self.rolls_loss_drop()
    }

    /// Rolls only the injected-loss component (no block check), counting
    /// the drop when it hits. Used by transports that handle blocked links
    /// separately (the TCP sender parks blocked frames instead of dropping
    /// them).
    pub fn rolls_loss_drop(&self) -> bool {
        let loss = self.loss();
        if loss > 0.0 && self.roll() < loss {
            self.inner.injected_drops.inc();
            return true;
        }
        false
    }

    /// One uniform sample in `[0, 1)` from the panel's atomic SplitMix64
    /// stream.
    fn roll(&self) -> f64 {
        let state = self
            .inner
            .rng
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Frames dropped so far because their link was blocked.
    pub fn blocked_drops(&self) -> u64 {
        self.inner.blocked_drops.get()
    }

    /// Frames dropped so far by injected loss.
    pub fn injected_drops(&self) -> u64 {
        self.inner.injected_drops.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_blocks_are_independent() {
        let p = FaultPanel::detached(3);
        p.block(0, 1);
        assert!(p.is_blocked(0, 1));
        assert!(!p.is_blocked(1, 0));
        p.unblock(0, 1);
        assert!(!p.is_blocked(0, 1));
    }

    #[test]
    fn partition_cuts_cross_group_links_both_ways() {
        let p = FaultPanel::detached(5);
        p.partition(&[&[0, 1], &[2, 3]]);
        assert!(p.is_blocked(0, 2));
        assert!(p.is_blocked(3, 1));
        assert!(!p.is_blocked(0, 1));
        assert!(!p.is_blocked(2, 3));
        // Node 4 is unlisted: connected to everyone.
        assert!(!p.is_blocked(4, 0));
        assert!(!p.is_blocked(2, 4));
        assert_eq!(p.blocked_links(), 8);
    }

    #[test]
    fn partition_replaces_previous_blocks() {
        let p = FaultPanel::detached(4);
        p.block(0, 3);
        p.partition(&[&[0], &[1]]);
        assert!(!p.is_blocked(0, 3), "stale block survived partition()");
        assert!(p.is_blocked(0, 1));
    }

    #[test]
    fn heal_clears_blocks_and_loss() {
        let p = FaultPanel::detached(3);
        p.block_pair(0, 2);
        p.set_loss(0.5);
        assert!(!p.is_quiet());
        p.heal();
        assert!(p.is_quiet());
        assert!(p.admits(0, 2));
    }

    #[test]
    fn admits_counts_blocked_drops() {
        let p = FaultPanel::detached(2);
        p.block(0, 1);
        assert!(!p.admits(0, 1));
        assert!(p.admits(1, 0));
        assert_eq!(p.blocked_drops(), 1);
    }

    #[test]
    fn injected_loss_drops_roughly_that_fraction() {
        let p = FaultPanel::detached(2);
        p.set_loss(0.5);
        let passed = (0..2000).filter(|_| p.admits(0, 1)).count();
        assert!(
            (700..=1300).contains(&passed),
            "50% loss passed {passed}/2000"
        );
        assert_eq!(p.injected_drops() + passed as u64, 2000);
    }

    #[test]
    fn wakers_fire_on_every_transition() {
        use std::sync::atomic::AtomicUsize;
        let p = FaultPanel::detached(3);
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        p.add_waker(Box::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        p.block(0, 1);
        p.unblock(0, 1);
        p.partition(&[&[0], &[1]]);
        p.heal();
        p.set_loss(0.1);
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn out_of_range_is_a_noop_and_reads_unblocked() {
        let p = FaultPanel::detached(2);
        p.block(0, 7); // no panic
        p.partition(&[&[0, 9], &[1]]);
        assert!(!p.is_blocked(0, 7), "foreign links are never blocked");
        assert!(p.is_blocked(0, 1)); // in-range part of the partition holds
        assert!(p.admits(5, 0));
    }
}
