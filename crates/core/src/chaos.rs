//! Seeded chaos soaking for the live runtime: randomized fault schedules
//! against a real cluster with an online mutual-exclusion checker.
//!
//! The simulator and the model checker already exercise the paper's §6
//! recovery machinery under scripted and exhaustively-branched faults; this
//! module closes the loop on the *production face* — real threads, real
//! timers, real (or channel) transports — by driving a [`crate::Cluster`]
//! through crash/recover, partition/heal, and loss-burst schedules derived
//! deterministically from a seed, while a [`SafetyChecker`] watches every
//! critical-section entry and exit.
//!
//! A failed soak is replayable: [`SoakReport`] carries the seed and the
//! textual op log, and re-running [`soak`] with the same [`SoakOptions`]
//! regenerates the identical schedule (wall-clock interleaving of the
//! cluster itself naturally varies — the *faults* are what replay).
//!
//! # Epoch-tagged checking
//!
//! A naive "at most one node in CS" assertion produces false alarms the
//! moment faults are injected: a node crashed *while inside* its critical
//! section cannot release, and the paper's recovery (crash-stop model)
//! legitimately regenerates the token, so the new holder briefly overlaps
//! the dead one. Likewise, a live token holder stranded behind a partition
//! is outside the algorithm's failure model (it looks crashed to the
//! majority but isn't). The checker therefore tags every node with an
//! epoch and a `suspect` flag: [`SafetyChecker::crash`] and
//! [`SafetyChecker::isolate`] bump the epoch and mark any in-flight CS of
//! that node *unclean*. Violations are only declared between two **clean**
//! concurrent holders — entries whose nodes were alive, unsuspected, and
//! in their current epoch for the whole critical section. Those are
//! exactly the overlaps the paper's model promises cannot happen.
//!
//! Injected message loss is bracketed the same way: the §6 enquiry treats
//! a silent node as failed after two timeout rounds, so loss heavy enough
//! to silence both rounds can regenerate a token whose live holder simply
//! could not be heard — again outside the crash-stop model. The driver
//! therefore marks *all* nodes suspect while a loss burst is active (and
//! for a grace period after), while crash and partition eras stay fully
//! checked: with reliable channels the enquiry provably finds a live
//! holder before regenerating.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use tokq_obs::Level;
use tokq_protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq_protocol::types::TimeDelta;

use crate::cluster::Cluster;
use crate::metrics::ClusterMetrics;
use crate::service::LockError;
use crate::transport::NetOptions;

// ---------------------------------------------------------------------------
// Deterministic randomness
// ---------------------------------------------------------------------------

/// Small deterministic PRNG (SplitMix64) for schedule generation: the same
/// seed always yields the same chaos schedule.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator with the given seed.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform sample in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }
}

// ---------------------------------------------------------------------------
// Online safety checker
// ---------------------------------------------------------------------------

struct NodeEpoch {
    alive: bool,
    suspect: bool,
    /// Bumped on every crash and isolation; a CS entered in an older epoch
    /// no longer counts as clean.
    epoch: u64,
}

struct Holder {
    ticket: u64,
    node: usize,
    epoch: u64,
    clean: bool,
}

struct CheckerState {
    nodes: Vec<NodeEpoch>,
    in_cs: Vec<Holder>,
    next_ticket: u64,
    entries_started: u64,
    clean_entries: u64,
    violations: Vec<String>,
}

/// Proof of a recorded CS entry; hand it back to [`SafetyChecker::exit`].
#[derive(Debug)]
pub struct CsTicket {
    ticket: u64,
    node: usize,
}

/// Online mutual-exclusion checker for a live cluster: the runtime
/// equivalent of the simulator's single-`cs_holder` invariant, epoch-tagged
/// so injected faults don't masquerade as violations (see module docs).
///
/// Clone freely; clones share state. Workers call [`SafetyChecker::enter`]
/// after acquiring the distributed lock and [`SafetyChecker::exit`]
/// *before* releasing it; the fault driver mirrors every injected fault
/// with [`SafetyChecker::crash`] / [`SafetyChecker::isolate`] *before*
/// applying it to the cluster (conservative ordering: a fault is accounted
/// for before it can have any effect).
#[derive(Clone)]
pub struct SafetyChecker {
    state: Arc<Mutex<CheckerState>>,
}

impl std::fmt::Debug for SafetyChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("SafetyChecker")
            .field("nodes", &st.nodes.len())
            .field("in_cs", &st.in_cs.len())
            .field("clean_entries", &st.clean_entries)
            .field("violations", &st.violations.len())
            .finish()
    }
}

impl SafetyChecker {
    /// A checker for an `n`-node cluster, all nodes alive and trusted.
    pub fn new(n: usize) -> Self {
        SafetyChecker {
            state: Arc::new(Mutex::new(CheckerState {
                nodes: (0..n)
                    .map(|_| NodeEpoch {
                        alive: true,
                        suspect: false,
                        epoch: 0,
                    })
                    .collect(),
                in_cs: Vec::new(),
                next_ticket: 0,
                entries_started: 0,
                clean_entries: 0,
                violations: Vec::new(),
            })),
        }
    }

    /// Records `node` entering its critical section. Call with the
    /// distributed lock held.
    pub fn enter(&self, node: usize) -> CsTicket {
        let mut st = self.state.lock();
        st.entries_started += 1;
        st.next_ticket += 1;
        let ticket = st.next_ticket;
        let (clean, epoch) = match st.nodes.get(node) {
            Some(ne) => (ne.alive && !ne.suspect, ne.epoch),
            None => (false, 0),
        };
        if clean {
            let overlaps: Vec<String> = st
                .in_cs
                .iter()
                .filter(|h| h.clean)
                .map(|h| format!("node {} (ticket {})", h.node, h.ticket))
                .collect();
            if !overlaps.is_empty() {
                st.violations.push(format!(
                    "mutual exclusion violated: node {node} (ticket {ticket}, epoch {epoch}) \
                     entered CS while held by {}",
                    overlaps.join(", ")
                ));
            }
        }
        st.in_cs.push(Holder {
            ticket,
            node,
            epoch,
            clean,
        });
        CsTicket { ticket, node }
    }

    /// Records the end of the critical section `ticket` was issued for.
    /// Call *before* releasing the distributed lock.
    pub fn exit(&self, ticket: CsTicket) {
        let mut st = self.state.lock();
        if let Some(pos) = st.in_cs.iter().position(|h| h.ticket == ticket.ticket) {
            let holder = st.in_cs.swap_remove(pos);
            debug_assert_eq!(holder.node, ticket.node, "ticket/holder mismatch");
            let still_current = st
                .nodes
                .get(holder.node)
                .is_some_and(|ne| ne.epoch == holder.epoch);
            if holder.clean && still_current {
                st.clean_entries += 1;
            }
        }
    }

    /// Marks `node` crashed: its epoch advances and any critical section it
    /// currently occupies stops counting as clean. Call *before*
    /// [`Cluster::crash`].
    pub fn crash(&self, node: usize) {
        let mut st = self.state.lock();
        if let Some(ne) = st.nodes.get_mut(node) {
            ne.alive = false;
            ne.epoch += 1;
        }
        for h in st.in_cs.iter_mut().filter(|h| h.node == node) {
            h.clean = false;
        }
    }

    /// Marks `node` recovered. Call after [`Cluster::recover`].
    pub fn recover(&self, node: usize) {
        if let Some(ne) = self.state.lock().nodes.get_mut(node) {
            ne.alive = true;
        }
    }

    /// Marks `node` suspect — e.g. on the minority side of a partition,
    /// where a live token holder is outside the paper's crash-stop failure
    /// model. Its entries stop counting until [`SafetyChecker::deisolate`].
    /// Call *before* installing the partition.
    pub fn isolate(&self, node: usize) {
        let mut st = self.state.lock();
        if let Some(ne) = st.nodes.get_mut(node) {
            ne.suspect = true;
            ne.epoch += 1;
        }
        for h in st.in_cs.iter_mut().filter(|h| h.node == node) {
            h.clean = false;
        }
    }

    /// Clears the suspect mark, typically a grace period after a heal (the
    /// recovery protocol needs time to invalidate stale tokens).
    pub fn deisolate(&self, node: usize) {
        if let Some(ne) = self.state.lock().nodes.get_mut(node) {
            ne.suspect = false;
        }
    }

    /// Clean critical sections completed so far: entered and exited by an
    /// alive, unsuspected node within one epoch.
    pub fn clean_entries(&self) -> u64 {
        self.state.lock().clean_entries
    }

    /// Total CS entries observed, clean or not.
    pub fn entries_started(&self) -> u64 {
        self.state.lock().entries_started
    }

    /// Descriptions of every mutual-exclusion violation observed.
    pub fn violations(&self) -> Vec<String> {
        self.state.lock().violations.clone()
    }

    /// True while no violation has been observed.
    pub fn is_safe(&self) -> bool {
        self.state.lock().violations.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------------

/// One step of a chaos schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOp {
    /// Crash a node ([`Cluster::crash`]).
    Crash(usize),
    /// Recover a crashed node ([`Cluster::recover`]).
    Recover(usize),
    /// Partition the cluster into groups ([`Cluster::partition`]); the
    /// first group is always the (weak) majority.
    Partition(Vec<Vec<usize>>),
    /// Heal all partitions and injected loss ([`Cluster::heal`]).
    Heal,
    /// Inject extra message loss, probability in per-mille (deterministic
    /// integer so schedules are `Eq`/hashable).
    LossBurst(u32),
    /// Clear injected loss.
    ClearLoss,
    /// Let the cluster run undisturbed for one gap.
    Pause,
}

impl std::fmt::Display for ChaosOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosOp::Crash(n) => write!(f, "crash({n})"),
            ChaosOp::Recover(n) => write!(f, "recover({n})"),
            ChaosOp::Partition(groups) => write!(f, "partition({groups:?})"),
            ChaosOp::Heal => write!(f, "heal"),
            ChaosOp::LossBurst(pm) => write!(f, "loss({}%)", *pm as f64 / 10.0),
            ChaosOp::ClearLoss => write!(f, "clear_loss"),
            ChaosOp::Pause => write!(f, "pause"),
        }
    }
}

/// Generates a sane `ops`-step schedule for an `n`-node cluster from
/// `seed`: at most `⌊(n-1)/2⌋` nodes crashed at once, no partition atop an
/// existing one, heals biased so faults don't pile up forever, and every
/// fault outstanding at the end explicitly healed/recovered so the
/// schedule always hands back a whole cluster.
pub fn schedule(seed: u64, n: usize, ops: usize) -> Vec<ChaosOp> {
    assert!(n >= 2, "chaos needs at least two nodes");
    let mut rng = ChaosRng::new(seed);
    let max_down = (n - 1) / 2;
    let mut crashed: BTreeSet<usize> = BTreeSet::new();
    let mut partitioned = false;
    let mut lossy = false;
    let mut plan = Vec::with_capacity(ops + max_down + 2);
    for _ in 0..ops {
        // Heal-biased when a partition is up: sustained partitions mostly
        // stall progress, and the interesting transitions are the edges.
        if partitioned && rng.chance(0.45) {
            plan.push(ChaosOp::Heal);
            partitioned = false;
            lossy = false; // heal clears injected loss too
            continue;
        }
        match rng.below(10) {
            0 | 1 if crashed.len() < max_down => {
                // Crash a random live node.
                let live: Vec<usize> = (0..n).filter(|i| !crashed.contains(i)).collect();
                let victim = live[rng.below(live.len())];
                crashed.insert(victim);
                plan.push(ChaosOp::Crash(victim));
            }
            2 | 3 if !crashed.is_empty() => {
                let back = *crashed
                    .iter()
                    .nth(rng.below(crashed.len()))
                    .expect("nonempty");
                crashed.remove(&back);
                plan.push(ChaosOp::Recover(back));
            }
            4 | 5 if !partitioned => {
                // Split off a random minority (1 ..= (n-1)/2 nodes).
                let minority_size = 1 + rng.below(max_down.max(1));
                let mut pool: Vec<usize> = (0..n).collect();
                let mut minority = Vec::with_capacity(minority_size);
                for _ in 0..minority_size {
                    minority.push(pool.swap_remove(rng.below(pool.len())));
                }
                minority.sort_unstable();
                pool.sort_unstable();
                plan.push(ChaosOp::Partition(vec![pool, minority]));
                partitioned = true;
            }
            6 if !lossy => {
                // 5% – 25% extra loss: enough to exercise retransmission
                // paths without starving recovery of its own messages.
                plan.push(ChaosOp::LossBurst(50 + rng.below(200) as u32));
                lossy = true;
            }
            7 if lossy => {
                plan.push(ChaosOp::ClearLoss);
                lossy = false;
            }
            _ => plan.push(ChaosOp::Pause),
        }
    }
    // Close out: the driver's final drain phase needs a whole cluster.
    if partitioned || lossy {
        plan.push(ChaosOp::Heal);
    }
    for back in crashed {
        plan.push(ChaosOp::Recover(back));
    }
    plan
}

// ---------------------------------------------------------------------------
// Soak driver
// ---------------------------------------------------------------------------

/// Parameters of one chaos soak run.
#[derive(Debug, Clone)]
pub struct SoakOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Schedule seed; a failed run prints it and re-running with the same
    /// options replays the identical fault schedule.
    pub seed: u64,
    /// Number of schedule steps.
    pub ops: usize,
    /// Wall-clock gap between schedule steps.
    pub op_gap: Duration,
    /// Settle time after a heal before previously-partitioned nodes count
    /// as clean again (the recovery protocol needs it to invalidate stale
    /// state).
    pub heal_grace: Duration,
    /// Clean CS entries to reach before the run passes.
    pub target_entries: u64,
    /// Hard wall-clock bound on the whole run.
    pub time_limit: Duration,
    /// Per-attempt lock timeout used by the worker threads.
    pub lock_timeout: Duration,
    /// How long each worker holds the critical section.
    pub hold: Duration,
    /// Number of shards the cluster runs (1 = classic single lock).
    pub shards: u16,
    /// Named resources the workers contend on. Empty means the legacy
    /// single-lock path (every worker locks through
    /// [`Cluster::handle`], i.e. shard 0). Non-empty spawns one worker
    /// per node × resource, each checked by its shard's own
    /// [`SafetyChecker`].
    pub resources: Vec<String>,
    /// Run over loopback TCP instead of in-process channels.
    pub tcp: bool,
    /// Channel-transport options (ignored in TCP mode).
    pub net: NetOptions,
    /// Protocol configuration; must enable recovery for crash schedules.
    pub config: ArbiterConfig,
    /// Flight-recorder capacity and level, dumped to stderr on violation.
    pub recorder: Option<(usize, Level)>,
}

impl SoakOptions {
    /// Chaos-tuned defaults: a fault-tolerant 5-node cluster with
    /// millisecond phases and sub-second recovery timeouts, sized so a
    /// full soak stays test-suite friendly.
    pub fn quick(nodes: usize, seed: u64) -> Self {
        let config = ArbiterConfig {
            recovery: Some(RecoveryConfig {
                token_wait_base: TimeDelta::from_millis(100),
                token_wait_per_position: TimeDelta::from_millis(25),
                enquiry_timeout: TimeDelta::from_millis(50),
                handover_watch: TimeDelta::from_millis(200),
                probe_timeout: TimeDelta::from_millis(50),
            }),
            request_retry: Some(TimeDelta::from_millis(250)),
            ..ArbiterConfig::basic()
                .with_t_collect(TimeDelta::from_millis(1))
                .with_t_forward(TimeDelta::from_millis(1))
        };
        SoakOptions {
            nodes,
            seed,
            ops: 40,
            op_gap: Duration::from_millis(30),
            heal_grace: Duration::from_millis(300),
            target_entries: 500,
            time_limit: Duration::from_secs(60),
            lock_timeout: Duration::from_millis(250),
            hold: Duration::from_micros(100),
            shards: 1,
            resources: Vec::new(),
            tcp: false,
            net: NetOptions::instant(),
            config,
            recorder: Some((16_384, Level::Info)),
        }
    }

    /// Chaos-tuned defaults for a multi-resource soak over `shards`
    /// shards: the [`SoakOptions::quick`] schedule shape, with the §6
    /// recovery timeouts and the grace windows scaled by the shard count.
    ///
    /// The scaling is not optional tuning: timeout-based recovery
    /// presumes a timing bound on how slow a live token holder can look,
    /// and a K-shard soak runs K× the worker threads and K independent
    /// timer wheels on the same cores. Keeping the single-shard
    /// calibration would let scheduling delay alone push a live holder
    /// past `token_wait`, regenerating a token that was never lost —
    /// a violation of the synchrony assumption, not of the algorithm.
    pub fn sharded(nodes: usize, seed: u64, shards: u16, resources: Vec<String>) -> Self {
        let mut opts = Self::quick(nodes, seed);
        opts.shards = shards.max(1);
        opts.resources = resources;
        let k = u64::from(opts.shards);
        if let Some(rec) = opts.config.recovery.as_mut() {
            rec.token_wait_base = TimeDelta::from_millis(100 * k);
            rec.token_wait_per_position = TimeDelta::from_millis(25 * k);
            rec.enquiry_timeout = TimeDelta::from_millis(50 * k);
            rec.handover_watch = TimeDelta::from_millis(200 * k);
            rec.probe_timeout = TimeDelta::from_millis(50 * k);
        }
        let k32 = opts.shards as u32;
        opts.heal_grace = Duration::from_millis(300) * k32;
        opts.lock_timeout = Duration::from_millis(250) * k32;
        opts.time_limit = Duration::from_secs(60) + Duration::from_secs(15) * (k32 - 1);
        opts
    }
}

/// Outcome of a [`soak`] run.
#[derive(Debug)]
pub struct SoakReport {
    /// The schedule seed (replay key).
    pub seed: u64,
    /// Clean CS entries completed, summed over all shards.
    pub entries: u64,
    /// All CS entries observed (clean + fault-era), summed over shards.
    pub entries_started: u64,
    /// Clean CS entries per shard (index = shard id).
    pub entries_by_shard: Vec<u64>,
    /// Mutual-exclusion violations, empty on a safe run.
    pub violations: Vec<String>,
    /// The applied schedule, rendered (replay/debugging aid).
    pub ops_applied: Vec<String>,
    /// Crashes injected.
    pub crashes: u64,
    /// Partitions installed.
    pub partitions: u64,
    /// Loss bursts injected.
    pub loss_bursts: u64,
    /// True when the run hit [`SoakOptions::time_limit`] before reaching
    /// [`SoakOptions::target_entries`].
    pub timed_out: bool,
    /// TCP outbox frames still pending when the run ended, measured after
    /// a post-heal drain window. A healed mesh must flush its parked
    /// frames, so anything non-zero here means a writer could not empty
    /// its queue (always 0 on the channel transport).
    pub final_outbox_depth: i64,
    /// The cluster's metrics, kept alive past shutdown.
    pub metrics: Arc<ClusterMetrics>,
}

impl SoakReport {
    /// Safe and reached its entry target.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && !self.timed_out
    }

    /// One-line human summary (includes the seed for replay).
    pub fn summary(&self) -> String {
        format!(
            "seed={} entries={} (started {}) crashes={} partitions={} loss_bursts={} \
             violations={} timed_out={}",
            self.seed,
            self.entries,
            self.entries_started,
            self.crashes,
            self.partitions,
            self.loss_bursts,
            self.violations.len(),
            self.timed_out,
        )
    }
}

/// Runs one seeded chaos soak: builds the cluster, spawns lock workers
/// (one per node on the legacy path, one per node × resource when
/// [`SoakOptions::resources`] names resources), applies the schedule
/// derived from [`SoakOptions::seed`], then heals everything and drains
/// until the entry target or the time limit. Every shard has its own
/// [`SafetyChecker`]; faults are mirrored into all of them. On violation
/// the flight recorder (if attached) is dumped to stderr.
pub fn soak(opts: &SoakOptions) -> SoakReport {
    let mut builder = Cluster::builder(opts.nodes)
        .config(opts.config.clone())
        .shards(opts.shards.max(1));
    if opts.tcp {
        builder = builder.tcp();
    } else {
        builder = builder.net(opts.net);
    }
    if let Some((cap, level)) = opts.recorder {
        builder = builder.flight_recorder(cap, level);
    }
    let cluster = builder.build();
    let metrics = cluster.metrics_handle();
    let checkers: Vec<SafetyChecker> = (0..cluster.shards())
        .map(|_| SafetyChecker::new(opts.nodes))
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + opts.time_limit;

    let spawn_worker = |name: String,
                        handle: crate::cluster::ResourceHandle,
                        checker: SafetyChecker,
                        node: usize|
     -> std::thread::JoinHandle<()> {
        let stop = Arc::clone(&stop);
        let (lock_timeout, hold) = (opts.lock_timeout, opts.hold);
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match handle.try_lock_for(lock_timeout) {
                        Ok(guard) => {
                            let ticket = checker.enter(node);
                            std::thread::sleep(hold);
                            checker.exit(ticket);
                            drop(guard);
                        }
                        Err(LockError::Timeout) => {}
                        // Crashed node or shutdown race: errors return
                        // instantly, so back off instead of hammering the
                        // dead node's inbox — its waiters used to sit
                        // quietly in the queue, and a tight NodeDown retry
                        // loop would add churn the old blocking path never
                        // had.
                        Err(_) => std::thread::sleep(Duration::from_millis(50)),
                    }
                }
            })
            .expect("spawn chaos worker")
    };

    let mut workers = Vec::new();
    if opts.resources.is_empty() {
        for i in 0..opts.nodes {
            let handle = cluster
                .resource_on(i, "__mutex")
                .expect("worker node in range");
            let checker = checkers[handle.shard().index()].clone();
            workers.push(spawn_worker(
                format!("chaos-worker-{i}"),
                handle,
                checker,
                i,
            ));
        }
    } else {
        for i in 0..opts.nodes {
            for (r, name) in opts.resources.iter().enumerate() {
                let handle = cluster
                    .resource_on(i, name.as_str())
                    .expect("worker node in range");
                let checker = checkers[handle.shard().index() % checkers.len()].clone();
                workers.push(spawn_worker(
                    format!("chaos-worker-{i}-r{r}"),
                    handle,
                    checker,
                    i,
                ));
            }
        }
    }

    let plan = schedule(opts.seed, opts.nodes, opts.ops);
    let mut ops_applied = Vec::with_capacity(plan.len());
    let (mut crashes, mut partitions, mut loss_bursts) = (0u64, 0u64, 0u64);
    // Who is suspect, and why: partitioned-minority membership persists
    // across a ClearLoss, loss bursts suspect everyone (see module docs).
    let mut partition_suspects: BTreeSet<usize> = BTreeSet::new();
    let mut lossy = false;
    for op in &plan {
        ops_applied.push(op.to_string());
        match op {
            ChaosOp::Crash(x) => {
                crashes += 1;
                // Checkers first: the crash must be accounted for before
                // it can have any effect (it hits every shard at once).
                for c in &checkers {
                    c.crash(*x);
                }
                cluster.crash(*x).expect("crash in-range node");
            }
            ChaosOp::Recover(x) => {
                cluster.recover(*x).expect("recover in-range node");
                for c in &checkers {
                    c.recover(*x);
                }
            }
            ChaosOp::Partition(groups) => {
                partitions += 1;
                // Every non-majority group is suspect: a token holder
                // stranded there is outside the crash-stop model.
                for group in &groups[1..] {
                    for &node in group {
                        partition_suspects.insert(node);
                        for c in &checkers {
                            c.isolate(node);
                        }
                    }
                }
                let refs: Vec<&[usize]> = groups.iter().map(Vec::as_slice).collect();
                cluster.partition(&refs).expect("partition in-range groups");
            }
            ChaosOp::Heal => {
                cluster.heal(); // clears partitions and injected loss
                                // Give recovery time to invalidate stale tokens before
                                // entries count again.
                std::thread::sleep(opts.heal_grace);
                partition_suspects.clear();
                lossy = false;
                for node in 0..opts.nodes {
                    for c in &checkers {
                        c.deisolate(node);
                    }
                }
            }
            ChaosOp::LossBurst(pm) => {
                loss_bursts += 1;
                if !lossy {
                    lossy = true;
                    for node in 0..opts.nodes {
                        for c in &checkers {
                            c.isolate(node);
                        }
                    }
                }
                cluster.fault_panel().set_loss(f64::from(*pm) / 1000.0);
            }
            ChaosOp::ClearLoss => {
                cluster.fault_panel().set_loss(0.0);
                if lossy {
                    std::thread::sleep(opts.heal_grace);
                    lossy = false;
                    for node in 0..opts.nodes {
                        if !partition_suspects.contains(&node) {
                            for c in &checkers {
                                c.deisolate(node);
                            }
                        }
                    }
                }
            }
            ChaosOp::Pause => {}
        }
        std::thread::sleep(opts.op_gap);
    }

    // Drain: everything is healed (the schedule guarantees it); run until
    // the entry target or the deadline.
    let total_entries = |cs: &[SafetyChecker]| cs.iter().map(SafetyChecker::clean_entries).sum();
    let mut timed_out = false;
    while total_entries(&checkers) < opts.target_entries {
        if Instant::now() >= deadline {
            timed_out = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        let _ = w.join();
    }

    // With the mesh healed and the workers stopped, the TCP send pipeline
    // must flush every parked frame; give the writers a short window and
    // record whatever depth remains.
    let drain_deadline = Instant::now() + Duration::from_secs(2);
    while metrics.outbox_depth() > 0 && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let final_outbox_depth = metrics.outbox_depth();

    let violations: Vec<String> = checkers
        .iter()
        .enumerate()
        .flat_map(|(s, c)| {
            c.violations()
                .into_iter()
                .map(move |v| format!("[shard {s}] {v}"))
        })
        .collect();
    if !violations.is_empty() || timed_out {
        if violations.is_empty() {
            eprintln!("chaos soak STALLED (seed {}):", opts.seed);
        } else {
            eprintln!("chaos soak UNSAFE (seed {}):", opts.seed);
            for v in &violations {
                eprintln!("  {v}");
            }
        }
        if let Some(recorder) = cluster.flight_recorder() {
            eprintln!("--- flight recorder ---\n{}", recorder.dump_jsonl());
        }
    }
    cluster.shutdown();

    SoakReport {
        seed: opts.seed,
        entries: total_entries(&checkers),
        entries_started: checkers.iter().map(SafetyChecker::entries_started).sum(),
        entries_by_shard: checkers.iter().map(SafetyChecker::clean_entries).collect(),
        violations,
        ops_applied,
        crashes,
        partitions,
        loss_bursts,
        timed_out,
        final_outbox_depth,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checker_flags_clean_overlap() {
        let c = SafetyChecker::new(3);
        let t0 = c.enter(0);
        let t1 = c.enter(1); // overlap while both clean
        assert!(!c.is_safe());
        c.exit(t1);
        c.exit(t0);
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn crashed_holder_does_not_count_or_conflict() {
        let c = SafetyChecker::new(3);
        let t0 = c.enter(0);
        c.crash(0); // dies inside its CS
        let t1 = c.enter(1); // recovery-era grant: legitimate
        assert!(c.is_safe());
        c.exit(t1);
        c.exit(t0); // stale exit after crash: uncounted
        assert_eq!(c.clean_entries(), 1);
        assert_eq!(c.entries_started(), 2);
    }

    #[test]
    fn suspect_nodes_do_not_conflict_until_deisolated() {
        let c = SafetyChecker::new(3);
        c.isolate(2);
        let t2 = c.enter(2); // stranded minority holder
        let t0 = c.enter(0);
        assert!(c.is_safe(), "suspect overlap must not alarm");
        c.exit(t0);
        c.exit(t2);
        assert_eq!(c.clean_entries(), 1, "only the clean entry counts");
        c.deisolate(2);
        let t2b = c.enter(2);
        c.exit(t2b);
        assert_eq!(c.clean_entries(), 2);
    }

    #[test]
    fn schedule_is_deterministic_and_bounded() {
        let a = schedule(42, 5, 60);
        let b = schedule(42, 5, 60);
        assert_eq!(a, b);
        assert_ne!(a, schedule(43, 5, 60), "different seeds should differ");
        // Never more than (n-1)/2 nodes down at once, and whole at the end.
        let mut down = 0usize;
        let mut max_down = 0usize;
        let mut partitioned = false;
        for op in &a {
            match op {
                ChaosOp::Crash(_) => {
                    down += 1;
                    max_down = max_down.max(down);
                }
                ChaosOp::Recover(_) => down -= 1,
                ChaosOp::Partition(groups) => {
                    partitioned = true;
                    assert!(
                        groups[0].len() > groups[1].len(),
                        "first group must be the majority: {groups:?}"
                    );
                }
                ChaosOp::Heal => partitioned = false,
                _ => {}
            }
        }
        assert!(max_down <= 2);
        assert_eq!(down, 0, "schedule must recover everyone");
        assert!(!partitioned, "schedule must heal at the end");
    }

    #[test]
    fn schedules_with_many_seeds_stay_sane() {
        for seed in 0..50 {
            let plan = schedule(seed, 5, 40);
            let mut down: BTreeSet<usize> = BTreeSet::new();
            for op in &plan {
                match op {
                    ChaosOp::Crash(x) => {
                        assert!(down.insert(*x), "double crash of {x} (seed {seed})");
                        assert!(down.len() <= 2, "too many down (seed {seed})");
                    }
                    ChaosOp::Recover(x) => {
                        assert!(down.remove(x), "recover of live {x} (seed {seed})");
                    }
                    ChaosOp::LossBurst(pm) => assert!(*pm <= 250),
                    _ => {}
                }
            }
            assert!(down.is_empty(), "seed {seed} left nodes down");
        }
    }
}
