//! The sharded multi-resource lock service: resources, shards, and the
//! typed error surface of the client API.
//!
//! The paper's arbiter algorithm governs exactly *one* critical section.
//! To serve many independent resources, a [`crate::Cluster`] runs `K`
//! independent protocol instances — **shards** — over the *same* node set
//! and the *same* transports: one TCP mesh (or one channel mesh) carries
//! every shard's frames, tagged at the wire layer ([`crate::wire`]) and
//! demultiplexed by each node's event loop into per-shard state machines.
//!
//! Applications never name shards directly. They name **resources**
//! ([`ResourceId`], any string such as `"accounts/7"`), and a stable hash
//! maps each resource onto a shard: the same name always lands on the same
//! shard for a given shard count, across nodes, processes, and runs. Two
//! resources on the same shard serialize against each other (they share a
//! token); resources on different shards are mutually independent.
//!
//! The locking API is fully typed: acquisition returns
//! `Result<LockGuard, `[`LockError`]`>` and fault injection returns
//! `Result<(), `[`FaultError`]`>` — no `Option` squinting, no panicking
//! accessors.

use std::fmt;

/// Identifies one protocol instance (one independent token) inside a
/// sharded cluster. Shards are numbered `0..K`; shard `0` also backs the
/// single-lock compatibility API ([`crate::Cluster::handle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShardId(pub u16);

impl ShardId {
    /// The shard index as a `usize` (for indexing per-shard tables).
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for ShardId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shard-{}", self.0)
    }
}

/// A named lockable resource, e.g. `"accounts/7"` or `"index/users"`.
///
/// Resource names are free-form strings; equality is exact. The name is
/// hashed once (FNV-1a, stable across platforms and runs) to derive the
/// owning shard and a default home node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId {
    name: String,
}

impl ResourceId {
    /// A resource with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ResourceId { name: name.into() }
    }

    /// The resource's name, exactly as given.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The stable 64-bit FNV-1a hash of the name. Identical input bytes
    /// always produce the identical hash — the shard mapping must not
    /// change across processes, architectures, or std versions.
    pub fn hash64(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// The shard this resource maps to in a cluster with `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shard(&self, shards: u16) -> ShardId {
        assert!(shards > 0, "a cluster has at least one shard");
        ShardId((self.hash64() % u64::from(shards)) as u16)
    }

    /// A deterministic default home node in `[0, nodes)` for this
    /// resource, decorrelated from the shard mapping (a different fold of
    /// the same hash), so resources spread over nodes as well as shards.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn home_node(&self, nodes: usize) -> usize {
        assert!(nodes > 0, "a cluster has at least one node");
        (self.hash64().rotate_left(32) % nodes as u64) as usize
    }
}

impl From<&str> for ResourceId {
    fn from(name: &str) -> Self {
        ResourceId::new(name)
    }
}

impl From<String> for ResourceId {
    fn from(name: String) -> Self {
        ResourceId::new(name)
    }
}

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Why a lock acquisition failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockError {
    /// The grant did not arrive within the caller's patience. The
    /// abandoned request is released automatically if it is granted later.
    Timeout,
    /// The node this handle locks through is currently crashed; recover it
    /// with [`crate::Cluster::recover`] before locking through it again.
    /// (Requests *already waiting* when the node crashed survive and are
    /// re-issued on recovery; this error is for new requests submitted
    /// while the node is down.)
    NodeDown,
    /// The cluster has shut down (or is shutting down): no grant can ever
    /// arrive.
    ShuttingDown,
    /// The requested node index does not exist in this cluster.
    NoSuchNode {
        /// The out-of-range index that was requested.
        node: usize,
        /// The cluster's node count.
        nodes: usize,
    },
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Timeout => write!(f, "lock request timed out"),
            LockError::NodeDown => write!(f, "node is crashed; recover it before locking"),
            LockError::ShuttingDown => write!(f, "cluster is shutting down"),
            LockError::NoSuchNode { node, nodes } => {
                write!(f, "node {node} does not exist (cluster has {nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for LockError {}

/// Why a fault-injection operation ([`crate::Cluster::crash`],
/// [`crate::Cluster::recover`], [`crate::Cluster::partition`]) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// A node index named by the operation does not exist.
    NoSuchNode {
        /// The out-of-range index that was requested.
        node: usize,
        /// The cluster's node count.
        nodes: usize,
    },
    /// The cluster has shut down; there is nothing left to fault.
    ShuttingDown,
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::NoSuchNode { node, nodes } => {
                write!(f, "node {node} does not exist (cluster has {nodes} nodes)")
            }
            FaultError::ShuttingDown => write!(f, "cluster is shutting down"),
        }
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_mapping_is_stable_and_in_range() {
        // Pinned values: the mapping is part of the wire-compatible
        // contract (same name + same shard count => same shard, forever).
        let r = ResourceId::new("accounts/7");
        assert_eq!(r.hash64(), ResourceId::new("accounts/7").hash64());
        for shards in 1..32u16 {
            let s = r.shard(shards);
            assert!(s.0 < shards);
            assert_eq!(s, r.shard(shards), "mapping must be deterministic");
        }
        assert_eq!(ResourceId::new("").hash64(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn distinct_names_spread_over_shards() {
        let shards = 8u16;
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..256 {
            seen.insert(ResourceId::new(format!("res/{i}")).shard(shards));
        }
        assert_eq!(
            seen.len(),
            usize::from(shards),
            "256 names must hit all 8 shards"
        );
    }

    #[test]
    fn home_node_is_decorrelated_from_shard() {
        // Names landing on one shard must not all share a home node.
        let names: Vec<ResourceId> = (0..512)
            .map(|i| ResourceId::new(format!("k/{i}")))
            .filter(|r| r.shard(4).0 == 0)
            .collect();
        let homes: std::collections::BTreeSet<usize> =
            names.iter().map(|r| r.home_node(5)).collect();
        assert!(homes.len() > 1, "home nodes collapsed onto one value");
    }

    #[test]
    fn errors_display_informatively() {
        assert!(LockError::Timeout.to_string().contains("timed out"));
        assert!(LockError::NodeDown.to_string().contains("crashed"));
        assert!(LockError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        let e = LockError::NoSuchNode { node: 9, nodes: 3 };
        assert!(e.to_string().contains('9') && e.to_string().contains('3'));
        let f = FaultError::NoSuchNode { node: 9, nodes: 3 };
        assert!(f.to_string().contains('9'));
        assert!(FaultError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn resource_conversions_and_display() {
        let a: ResourceId = "x/y".into();
        let b: ResourceId = String::from("x/y").into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "x/y");
        assert_eq!(ShardId(3).to_string(), "shard-3");
        assert_eq!(ShardId(3).index(), 3);
    }
}
