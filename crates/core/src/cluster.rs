//! The user-facing runtime: an in-process cluster of arbiter nodes with a
//! distributed-mutex API.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Sender};
use tokq_obs::sink::JsonlWriter;
use tokq_obs::{FlightRecorder, Level, Obs, Source};
use tokq_protocol::api::ProtocolFactory;
use tokq_protocol::arbiter::ArbiterConfig;
use tokq_protocol::types::NodeId;

use crate::fault::FaultPanel;
use crate::metrics::ClusterMetrics;
use crate::node::{NodeEvent, NodeLoop};
use crate::tcp::{BackoffPolicy, TcpReceiver, TcpSender};
use crate::transport::{ChannelTransport, Envelope, NetOptions, Wire};

/// Builder for a [`Cluster`].
///
/// # Examples
///
/// ```
/// use tokq_core::Cluster;
///
/// let cluster = Cluster::builder(3).build();
/// let handle = cluster.handle(1);
/// {
///     let _guard = handle.lock();
///     // critical section
/// }
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    n: usize,
    config: ArbiterConfig,
    net: NetOptions,
    tcp: bool,
    obs: Option<Obs>,
    recorder: Option<(usize, Level)>,
}

impl ClusterBuilder {
    /// Sets the protocol configuration (variant, phase durations, …).
    #[must_use]
    pub fn config(mut self, config: ArbiterConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the transport behaviour (delay, jitter, loss).
    #[must_use]
    pub fn net(mut self, net: NetOptions) -> Self {
        self.net = net;
        self
    }

    /// Moves inter-node traffic onto real loopback TCP sockets (framed by
    /// [`crate::tcp`]) instead of in-process channels. `net` delay/loss
    /// options do not apply in this mode — the loopback stack is the
    /// network.
    #[must_use]
    pub fn tcp(mut self) -> Self {
        self.tcp = true;
        self
    }

    /// Routes all tracing and metrics through an existing [`Obs`] handle
    /// (defaults to [`Obs::from_env`] honouring `TOKQ_TRACE`).
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a bounded flight recorder that keeps the last `capacity`
    /// protocol events at `level` or below, independent of the streaming
    /// trace filter. Dump it post-mortem via
    /// [`Cluster::obs`]`().flight_recorder()`.
    #[must_use]
    pub fn flight_recorder(mut self, capacity: usize, level: Level) -> Self {
        self.recorder = Some((capacity, level));
        self
    }

    /// Spawns the node threads and returns the running cluster.
    ///
    /// # Panics
    ///
    /// Panics if the node count is zero.
    pub fn build(self) -> Cluster {
        assert!(self.n > 0, "cluster needs at least one node");
        let obs = self.obs.unwrap_or_else(|| {
            // `TOKQ_TRACE` alone must produce visible output: stream JSONL
            // to stderr whenever the env filter enables anything.
            let obs = Obs::from_env(Source::Runtime);
            if obs.filter().max_level() > Level::Off {
                obs.add_sink(JsonlWriter::stderr());
            }
            obs
        });
        if let Some((capacity, level)) = self.recorder {
            obs.attach_flight_recorder(capacity, level);
        }
        let metrics = ClusterMetrics::with_obs(obs);
        // One fault surface shared by whichever transport carries frames:
        // `Cluster::partition`/`heal` act through it at runtime.
        let fault_panel = FaultPanel::new(self.n, metrics.obs());
        let mut node_txs = Vec::with_capacity(self.n);
        let mut node_rxs = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let (tx, rx) = unbounded::<NodeEvent>();
            node_txs.push(tx);
            node_rxs.push(rx);
        }

        let mut pump_threads = Vec::new();
        let mut tcp_receivers = Vec::new();
        let transport: Arc<dyn Wire> = if self.tcp {
            // One loopback listener per node, ephemeral ports.
            let mut addrs = Vec::with_capacity(self.n);
            for tx in &node_txs {
                let recv =
                    TcpReceiver::bind("127.0.0.1:0".parse().expect("loopback addr"), tx.clone())
                        .expect("bind loopback listener");
                addrs.push(recv.local_addr());
                tcp_receivers.push(recv);
            }
            Arc::new(TcpSender::with_panel(
                addrs,
                metrics.obs(),
                fault_panel.clone(),
                BackoffPolicy::default(),
            ))
        } else {
            // The channel transport needs inbox senders that wrap
            // envelopes into NodeEvents: a tiny pump per node.
            let mut wire_txs = Vec::with_capacity(self.n);
            for tx in &node_txs {
                let (wtx, wrx) = unbounded::<Envelope>();
                let tx = tx.clone();
                let h = std::thread::Builder::new()
                    .name("tokq-pump".into())
                    .spawn(move || {
                        while let Ok(env) = wrx.recv() {
                            if tx
                                .send(NodeEvent::Wire {
                                    from: env.from,
                                    frame: env.frame,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                    })
                    .expect("spawn pump thread");
                wire_txs.push(wtx);
                pump_threads.push(h);
            }
            Arc::new(ChannelTransport::with_panel(
                wire_txs,
                self.net,
                metrics.obs(),
                fault_panel.clone(),
            ))
        };

        let mut threads = Vec::with_capacity(self.n);
        for (i, rx) in node_rxs.into_iter().enumerate() {
            let protocol = self.config.build(NodeId::from_index(i), self.n);
            let node_loop =
                NodeLoop::new(protocol, rx, Arc::clone(&transport), Arc::clone(&metrics));
            let h = std::thread::Builder::new()
                .name(format!("tokq-node-{i}"))
                .spawn(move || node_loop.run())
                .expect("spawn node thread");
            threads.push(h);
        }
        Cluster {
            node_txs,
            threads,
            pump_threads,
            tcp_receivers,
            transport: Some(transport),
            fault_panel,
            metrics,
        }
    }
}

/// A running in-process cluster of arbiter-mutex nodes.
///
/// Each node runs on its own thread; messages travel as encoded frames
/// through a (optionally delayed and lossy) channel transport. The cluster
/// is the distributed-systems equivalent of a `Mutex`: obtain per-node
/// [`MutexHandle`]s and lock through them.
pub struct Cluster {
    node_txs: Vec<Sender<NodeEvent>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    pump_threads: Vec<std::thread::JoinHandle<()>>,
    tcp_receivers: Vec<TcpReceiver>,
    transport: Option<Arc<dyn Wire>>,
    fault_panel: FaultPanel,
    metrics: Arc<ClusterMetrics>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.node_txs.len())
            .field("tcp", &!self.tcp_receivers.is_empty())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Starts building an `n`-node cluster with default configuration.
    pub fn builder(n: usize) -> ClusterBuilder {
        ClusterBuilder {
            n,
            config: ArbiterConfig::fault_tolerant(),
            net: NetOptions::instant(),
            tcp: false,
            obs: None,
            recorder: None,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_txs.len()
    }

    /// True when the cluster has no nodes (never; builder enforces ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.node_txs.is_empty()
    }

    /// A lock handle bound to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn handle(&self, node: usize) -> MutexHandle {
        MutexHandle {
            node: NodeId::from_index(node),
            tx: self.node_txs[node].clone(),
        }
    }

    /// Crashes `node`: volatile protocol state is lost and the node stops
    /// reacting until [`Cluster::recover`]. Returns `false` (with a warn
    /// event, no panic) for an out-of-range node.
    pub fn crash(&self, node: usize) -> bool {
        let Some(tx) = self.node_txs.get(node) else {
            self.warn_range("crash_out_of_range", node);
            return false;
        };
        tx.send(NodeEvent::Crash).is_ok()
    }

    /// Recovers a crashed node with fresh state. Returns `false` (with a
    /// warn event, no panic) for an out-of-range node.
    pub fn recover(&self, node: usize) -> bool {
        let Some(tx) = self.node_txs.get(node) else {
            self.warn_range("recover_out_of_range", node);
            return false;
        };
        tx.send(NodeEvent::Recover).is_ok()
    }

    fn warn_range(&self, name: &'static str, node: usize) {
        let obs = self.metrics.obs();
        if obs.enabled("node", Level::Info) {
            obs.emit(
                tokq_obs::Event::new("node", Level::Info, name)
                    .field("node", &(node as u64))
                    .field("n", &(self.node_txs.len() as u64)),
            );
        }
    }

    /// The cluster's shared fault surface: per-link blocks, partitions,
    /// and injected loss, mutable while the cluster runs.
    pub fn fault_panel(&self) -> &FaultPanel {
        &self.fault_panel
    }

    /// Installs a network partition: nodes in different `groups` cannot
    /// exchange frames (see [`FaultPanel::partition`]). On the channel
    /// transport cross-partition frames drop; on TCP they park in retry
    /// queues and drain after [`Cluster::heal`].
    pub fn partition(&self, groups: &[&[usize]]) {
        self.fault_panel.partition(groups);
    }

    /// Heals all injected faults: every link unblocks and injected loss
    /// clears.
    pub fn heal(&self) {
        self.fault_panel.heal();
    }

    /// Shared metrics (messages, completions, notes).
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The observability handle the cluster traces into: registry access,
    /// sinks, and the flight recorder (if one was attached).
    pub fn obs(&self) -> &Obs {
        self.metrics.obs()
    }

    /// The attached flight recorder, if [`ClusterBuilder::flight_recorder`]
    /// was used (or a recorder was attached to the supplied [`Obs`]).
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.metrics.obs().flight_recorder()
    }

    /// A shared handle to the metrics that outlives the cluster — useful
    /// for reading final counts after [`Cluster::shutdown`].
    pub fn metrics_handle(&self) -> Arc<ClusterMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops every node thread and the transport. Called automatically on
    /// drop; explicit calls make shutdown order deterministic in tests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.node_txs {
            let _ = tx.send(NodeEvent::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.node_txs.clear();
        // The node threads dropped their transport clones on exit; drop
        // ours too so the envelope senders close and the pump threads can
        // observe a disconnected channel and terminate.
        self.transport = None;
        for t in self.pump_threads.drain(..) {
            let _ = t.join();
        }
        for mut r in self.tcp_receivers.drain(..) {
            r.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// A handle for requesting the distributed lock from one node.
///
/// Clone freely; clones address the same node.
#[derive(Debug, Clone)]
pub struct MutexHandle {
    node: NodeId,
    tx: Sender<NodeEvent>,
}

impl MutexHandle {
    /// The node this handle locks through.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Blocks until the distributed lock is granted, returning an RAII
    /// guard that releases on drop.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has shut down.
    pub fn lock(&self) -> LockGuard {
        self.try_lock_for(Duration::MAX)
            .expect("cluster shut down while waiting for the lock")
    }

    /// Like [`MutexHandle::lock`] with a timeout; `None` on timeout or
    /// cluster shutdown. An abandoned grant is released automatically.
    pub fn try_lock_for(&self, timeout: Duration) -> Option<LockGuard> {
        let (grant_tx, grant_rx) = bounded::<u64>(1);
        self.tx.send(NodeEvent::Acquire { grant: grant_tx }).ok()?;
        let gen = if timeout == Duration::MAX {
            grant_rx.recv().ok()?
        } else {
            grant_rx.recv_timeout(timeout).ok()?
        };
        Some(LockGuard {
            tx: self.tx.clone(),
            gen,
        })
    }
}

/// RAII guard for the distributed critical section: the lock is held from
/// grant until the guard drops.
///
/// Guards are generation-tagged: if the granting node crashes while the
/// guard is held, the eventual release is recognized as stale and ignored
/// instead of ending a post-recovery critical section.
#[derive(Debug)]
pub struct LockGuard {
    tx: Sender<NodeEvent>,
    gen: u64,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(NodeEvent::Release { gen: self.gen });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn single_node_lock_unlock() {
        let cluster = Cluster::builder(1).build();
        let metrics = cluster.metrics_handle();
        let h = cluster.handle(0);
        for _ in 0..3 {
            let g = h.lock();
            drop(g);
        }
        // Shutdown joins the node threads, so all releases are processed.
        cluster.shutdown();
        assert_eq!(metrics.cs_completed_total(), 3);
    }

    #[test]
    fn lock_is_mutually_exclusive_across_nodes() {
        let cluster = Arc::new(Cluster::builder(4).build());
        let counter = Arc::new(AtomicU32::new(0));
        let mut joins = Vec::new();
        for i in 0..4 {
            let h = cluster.handle(i);
            let counter = Arc::clone(&counter);
            joins.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let _g = h.lock();
                    // If two guards ever coexist this goes above 1.
                    let c = counter.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(c, 0, "two nodes inside the critical section");
                    std::thread::sleep(Duration::from_micros(200));
                    counter.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        let cluster = Arc::try_unwrap(cluster).expect("sole owner");
        let metrics = cluster.metrics_handle();
        cluster.shutdown();
        assert_eq!(metrics.cs_completed_total(), 40);
    }

    #[test]
    fn try_lock_timeout_returns_none_and_recovers() {
        let cluster = Cluster::builder(2).build();
        let a = cluster.handle(0);
        let b = cluster.handle(1);
        let g = a.lock();
        // b cannot get it while a holds it.
        assert!(b.try_lock_for(Duration::from_millis(100)).is_none());
        drop(g);
        // The abandoned grant auto-releases; b can lock now.
        let g2 = b.try_lock_for(Duration::from_secs(10)).expect("granted");
        drop(g2);
        cluster.shutdown();
    }
}
