//! The user-facing runtime: an in-process cluster of arbiter nodes with a
//! sharded, multi-resource distributed-lock API.
//!
//! A [`Cluster`] runs `K` independent protocol instances (shards) on every
//! node, all multiplexed over one transport mesh. Applications lock named
//! resources — `cluster.resource("accounts/7").lock()?` — and the stable
//! [`ResourceId`] hash decides which shard serializes each name. The
//! single-lock API ([`Cluster::handle`]) remains as a thin shim over
//! shard 0.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, RecvTimeoutError, Sender};
use tokq_obs::sink::JsonlWriter;
use tokq_obs::{FlightRecorder, Level, Obs, Source};
use tokq_protocol::api::ProtocolFactory;
use tokq_protocol::arbiter::ArbiterConfig;
use tokq_protocol::types::NodeId;

use crate::fault::FaultPanel;
use crate::metrics::ClusterMetrics;
use crate::node::{GrantReply, NodeEvent, NodeLoop};
use crate::service::{FaultError, LockError, ResourceId, ShardId};
use crate::tcp::{BackoffPolicy, TcpReceiver, TcpSender};
use crate::transport::{ChannelTransport, Envelope, NetOptions, Wire};

/// How long [`ResourceHandle::try_lock`] waits for the local fast path.
///
/// A truly zero-wait try-lock is meaningless here: even an uncontended
/// grant crosses a channel to the node thread and back, so `try_lock`
/// allows this short grace before reporting [`LockError::Timeout`].
const TRY_LOCK_GRACE: Duration = Duration::from_millis(5);

/// Builder for a [`Cluster`].
///
/// # Examples
///
/// ```
/// use tokq_core::Cluster;
///
/// let cluster = Cluster::builder(3).shards(4).build();
/// {
///     let _guard = cluster.resource("accounts/7").lock().unwrap();
///     // critical section for accounts/7 (and everything on its shard)
/// }
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct ClusterBuilder {
    n: usize,
    shards: u16,
    config: ArbiterConfig,
    net: NetOptions,
    tcp: bool,
    obs: Option<Obs>,
    recorder: Option<(usize, Level)>,
}

impl ClusterBuilder {
    /// Sets the protocol configuration (variant, phase durations, …),
    /// applied identically to every shard.
    #[must_use]
    pub fn config(mut self, config: ArbiterConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the number of independent protocol instances (shards) the
    /// cluster runs. Defaults to 1. Resources hash onto shards; more
    /// shards means more critical sections can proceed concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    #[must_use]
    pub fn shards(mut self, shards: u16) -> Self {
        assert!(shards > 0, "cluster needs at least one shard");
        self.shards = shards;
        self
    }

    /// Sets the transport behaviour (delay, jitter, loss).
    #[must_use]
    pub fn net(mut self, net: NetOptions) -> Self {
        self.net = net;
        self
    }

    /// Moves inter-node traffic onto real loopback TCP sockets (framed by
    /// [`crate::tcp`]) instead of in-process channels. `net` delay/loss
    /// options do not apply in this mode — the loopback stack is the
    /// network. All shards share the one TCP mesh; frames carry their
    /// shard id in the wire header.
    #[must_use]
    pub fn tcp(mut self) -> Self {
        self.tcp = true;
        self
    }

    /// Routes all tracing and metrics through an existing [`Obs`] handle
    /// (defaults to [`Obs::from_env`] honouring `TOKQ_TRACE`).
    #[must_use]
    pub fn obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Attaches a bounded flight recorder that keeps the last `capacity`
    /// protocol events at `level` or below, independent of the streaming
    /// trace filter. Dump it post-mortem via
    /// [`Cluster::obs`]`().flight_recorder()`.
    #[must_use]
    pub fn flight_recorder(mut self, capacity: usize, level: Level) -> Self {
        self.recorder = Some((capacity, level));
        self
    }

    /// Spawns the node threads and returns the running cluster.
    ///
    /// # Panics
    ///
    /// Panics if the node count is zero.
    pub fn build(self) -> Cluster {
        assert!(self.n > 0, "cluster needs at least one node");
        let obs = self.obs.unwrap_or_else(|| {
            // `TOKQ_TRACE` alone must produce visible output: stream JSONL
            // to stderr whenever the env filter enables anything.
            let obs = Obs::from_env(Source::Runtime);
            if obs.filter().max_level() > Level::Off {
                obs.add_sink(JsonlWriter::stderr());
            }
            obs
        });
        if let Some((capacity, level)) = self.recorder {
            obs.attach_flight_recorder(capacity, level);
        }
        let metrics = ClusterMetrics::with_obs(obs);
        // One fault surface shared by whichever transport carries frames:
        // `Cluster::partition`/`heal` act through it at runtime. Faults are
        // per-link, so they hit every shard crossing that link alike.
        let fault_panel = FaultPanel::new(self.n, metrics.obs());
        let mut node_txs = Vec::with_capacity(self.n);
        let mut node_rxs = Vec::with_capacity(self.n);
        for _ in 0..self.n {
            let (tx, rx) = unbounded::<NodeEvent>();
            node_txs.push(tx);
            node_rxs.push(rx);
        }

        let mut pump_threads = Vec::new();
        let mut tcp_receivers = Vec::new();
        let transport: Arc<dyn Wire> = if self.tcp {
            // One loopback listener per node, ephemeral ports.
            let mut addrs = Vec::with_capacity(self.n);
            for tx in &node_txs {
                let recv =
                    TcpReceiver::bind("127.0.0.1:0".parse().expect("loopback addr"), tx.clone())
                        .expect("bind loopback listener");
                addrs.push(recv.local_addr());
                tcp_receivers.push(recv);
            }
            Arc::new(TcpSender::with_panel(
                addrs,
                metrics.obs(),
                fault_panel.clone(),
                BackoffPolicy::default(),
            ))
        } else {
            // The channel transport needs inbox senders that wrap
            // envelopes into NodeEvents: a tiny pump per node.
            let mut wire_txs = Vec::with_capacity(self.n);
            for tx in &node_txs {
                let (wtx, wrx) = unbounded::<Envelope>();
                let tx = tx.clone();
                let h = std::thread::Builder::new()
                    .name("tokq-pump".into())
                    .spawn(move || {
                        while let Ok(env) = wrx.recv() {
                            if tx
                                .send(NodeEvent::Wire {
                                    from: env.from,
                                    frame: env.frame,
                                })
                                .is_err()
                            {
                                return;
                            }
                        }
                    })
                    .expect("spawn pump thread");
                wire_txs.push(wtx);
                pump_threads.push(h);
            }
            Arc::new(ChannelTransport::with_panel(
                wire_txs,
                self.net,
                metrics.obs(),
                fault_panel.clone(),
            ))
        };

        let mut threads = Vec::with_capacity(self.n);
        for (i, rx) in node_rxs.into_iter().enumerate() {
            let id = NodeId::from_index(i);
            let protocols = (0..self.shards)
                .map(|s| self.config.build_shard(id, self.n, s))
                .collect();
            let node_loop =
                NodeLoop::new(protocols, rx, Arc::clone(&transport), Arc::clone(&metrics));
            let h = std::thread::Builder::new()
                .name(format!("tokq-node-{i}"))
                .spawn(move || node_loop.run())
                .expect("spawn node thread");
            threads.push(h);
        }
        Cluster {
            n: self.n,
            shards: self.shards,
            node_txs,
            threads,
            pump_threads,
            tcp_receivers,
            transport: Some(transport),
            fault_panel,
            metrics,
        }
    }
}

/// A running in-process cluster of arbiter-mutex nodes.
///
/// Each node runs on its own thread and hosts one protocol instance per
/// shard; messages travel as shard-tagged frames through a (optionally
/// delayed and lossy) channel transport or a loopback TCP mesh. The
/// cluster is the distributed-systems equivalent of a `Mutex` keyed by
/// resource name: obtain [`ResourceHandle`]s via [`Cluster::resource`]
/// and lock through them.
pub struct Cluster {
    n: usize,
    shards: u16,
    node_txs: Vec<Sender<NodeEvent>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    pump_threads: Vec<std::thread::JoinHandle<()>>,
    tcp_receivers: Vec<TcpReceiver>,
    transport: Option<Arc<dyn Wire>>,
    fault_panel: FaultPanel,
    metrics: Arc<ClusterMetrics>,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.n)
            .field("shards", &self.shards)
            .field("tcp", &!self.tcp_receivers.is_empty())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Starts building an `n`-node cluster with default configuration
    /// (one shard, fault-tolerant protocol, instant channel transport).
    pub fn builder(n: usize) -> ClusterBuilder {
        ClusterBuilder {
            n,
            shards: 1,
            config: ArbiterConfig::fault_tolerant(),
            net: NetOptions::instant(),
            tcp: false,
            obs: None,
            recorder: None,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the cluster has no nodes (never; builder enforces ≥ 1).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards (independent protocol instances).
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// A handle for locking the named resource, bound to the resource's
    /// deterministic home node. The resource's shard is derived from its
    /// name; two calls with the same name always address the same shard.
    pub fn resource(&self, name: impl Into<ResourceId>) -> ResourceHandle {
        let resource = name.into();
        let node = resource.home_node(self.n);
        self.resource_handle(resource, node)
    }

    /// Like [`Cluster::resource`] but locking through an explicit node
    /// instead of the resource's home node.
    ///
    /// # Errors
    ///
    /// [`LockError::NoSuchNode`] if `node` is out of range.
    pub fn resource_on(
        &self,
        node: usize,
        name: impl Into<ResourceId>,
    ) -> Result<ResourceHandle, LockError> {
        if node >= self.n {
            return Err(LockError::NoSuchNode {
                node,
                nodes: self.n,
            });
        }
        Ok(self.resource_handle(name.into(), node))
    }

    fn resource_handle(&self, resource: ResourceId, node: usize) -> ResourceHandle {
        let shard = resource.shard(self.shards);
        ResourceHandle {
            resource,
            shard,
            node: NodeId::from_index(node),
            tx: self.node_tx(node),
        }
    }

    /// The inbox sender for `node`, or a dead sender (every send fails →
    /// `ShuttingDown`) once the cluster has shut down.
    fn node_tx(&self, node: usize) -> Sender<NodeEvent> {
        match self.node_txs.get(node) {
            Some(tx) => tx.clone(),
            None => {
                let (tx, _) = unbounded();
                tx
            }
        }
    }

    /// A single-lock handle bound to `node` — the documented
    /// compatibility shim over **shard 0** for clusters used as one big
    /// mutex. Sharded applications should use [`Cluster::resource`].
    ///
    /// # Errors
    ///
    /// [`LockError::NoSuchNode`] if `node` is out of range.
    pub fn handle(&self, node: usize) -> Result<MutexHandle, LockError> {
        if node >= self.n {
            return Err(LockError::NoSuchNode {
                node,
                nodes: self.n,
            });
        }
        Ok(MutexHandle {
            inner: ResourceHandle {
                resource: ResourceId::new("__mutex"),
                shard: ShardId(0),
                node: NodeId::from_index(node),
                tx: self.node_tx(node),
            },
        })
    }

    /// Crashes `node`: volatile protocol state on every shard is lost and
    /// the node stops reacting until [`Cluster::recover`].
    ///
    /// # Errors
    ///
    /// [`FaultError::NoSuchNode`] for an out-of-range node,
    /// [`FaultError::ShuttingDown`] once the cluster has shut down.
    pub fn crash(&self, node: usize) -> Result<(), FaultError> {
        self.fault_send(node, NodeEvent::Crash)
    }

    /// Recovers a crashed node with fresh state on every shard.
    ///
    /// # Errors
    ///
    /// [`FaultError::NoSuchNode`] for an out-of-range node,
    /// [`FaultError::ShuttingDown`] once the cluster has shut down.
    pub fn recover(&self, node: usize) -> Result<(), FaultError> {
        self.fault_send(node, NodeEvent::Recover)
    }

    fn fault_send(&self, node: usize, ev: NodeEvent) -> Result<(), FaultError> {
        if node >= self.n {
            return Err(FaultError::NoSuchNode {
                node,
                nodes: self.n,
            });
        }
        let tx = self.node_txs.get(node).ok_or(FaultError::ShuttingDown)?;
        tx.send(ev).map_err(|_| FaultError::ShuttingDown)
    }

    /// The cluster's shared fault surface: per-link blocks, partitions,
    /// and injected loss, mutable while the cluster runs. Faults act on
    /// links, so they affect every shard crossing the link.
    pub fn fault_panel(&self) -> &FaultPanel {
        &self.fault_panel
    }

    /// Installs a network partition: nodes in different `groups` cannot
    /// exchange frames (see [`FaultPanel::partition`]). On the channel
    /// transport cross-partition frames drop; on TCP they park in retry
    /// queues and drain after [`Cluster::heal`].
    ///
    /// # Errors
    ///
    /// [`FaultError::NoSuchNode`] if any group names an out-of-range
    /// node; no partition is installed in that case.
    pub fn partition(&self, groups: &[&[usize]]) -> Result<(), FaultError> {
        for group in groups {
            for &node in *group {
                if node >= self.n {
                    return Err(FaultError::NoSuchNode {
                        node,
                        nodes: self.n,
                    });
                }
            }
        }
        self.fault_panel.partition(groups);
        Ok(())
    }

    /// Heals all injected faults: every link unblocks and injected loss
    /// clears.
    pub fn heal(&self) {
        self.fault_panel.heal();
    }

    /// Shared metrics (messages, completions, notes, per-shard counts).
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The observability handle the cluster traces into: registry access,
    /// sinks, and the flight recorder (if one was attached).
    pub fn obs(&self) -> &Obs {
        self.metrics.obs()
    }

    /// The attached flight recorder, if [`ClusterBuilder::flight_recorder`]
    /// was used (or a recorder was attached to the supplied [`Obs`]).
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.metrics.obs().flight_recorder()
    }

    /// A shared handle to the metrics that outlives the cluster — useful
    /// for reading final counts after [`Cluster::shutdown`].
    pub fn metrics_handle(&self) -> Arc<ClusterMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops every node thread and the transport. Called automatically on
    /// drop; explicit calls make shutdown order deterministic in tests.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for tx in &self.node_txs {
            let _ = tx.send(NodeEvent::Shutdown);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.node_txs.clear();
        // The node threads dropped their transport clones on exit; drop
        // ours too so the envelope senders close and the pump threads can
        // observe a disconnected channel and terminate.
        self.transport = None;
        for t in self.pump_threads.drain(..) {
            let _ = t.join();
        }
        for mut r in self.tcp_receivers.drain(..) {
            r.shutdown();
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// A handle for locking one named resource through one node.
///
/// Clone freely; clones address the same resource through the same node.
#[derive(Debug, Clone)]
pub struct ResourceHandle {
    resource: ResourceId,
    shard: ShardId,
    node: NodeId,
    tx: Sender<NodeEvent>,
}

impl ResourceHandle {
    /// The resource this handle locks.
    pub fn resource(&self) -> &ResourceId {
        &self.resource
    }

    /// The shard serializing this resource.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// The node this handle locks through.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Blocks until the resource's lock is granted, returning an RAII
    /// guard that releases on drop.
    ///
    /// # Errors
    ///
    /// [`LockError::NodeDown`] if the node is crashed,
    /// [`LockError::ShuttingDown`] if the cluster shut down while
    /// waiting.
    pub fn lock(&self) -> Result<LockGuard, LockError> {
        self.request(None)
    }

    /// Attempts the lock without queueing behind a long wait: gives the
    /// grant a short grace (a few milliseconds — the request must cross
    /// to the node thread and back even when uncontended) and reports
    /// [`LockError::Timeout`] if it does not arrive.
    ///
    /// # Errors
    ///
    /// As [`ResourceHandle::try_lock_for`] with the built-in grace.
    pub fn try_lock(&self) -> Result<LockGuard, LockError> {
        self.request(Some(TRY_LOCK_GRACE))
    }

    /// Like [`ResourceHandle::lock`] with a timeout. An abandoned grant
    /// (one that arrives after the timeout) is released automatically.
    ///
    /// # Errors
    ///
    /// [`LockError::Timeout`] if no grant arrived in time,
    /// [`LockError::NodeDown`] if the node is crashed,
    /// [`LockError::ShuttingDown`] if the cluster shut down.
    pub fn try_lock_for(&self, timeout: Duration) -> Result<LockGuard, LockError> {
        self.request(Some(timeout))
    }

    fn request(&self, timeout: Option<Duration>) -> Result<LockGuard, LockError> {
        let (grant_tx, grant_rx) = bounded::<GrantReply>(1);
        self.tx
            .send(NodeEvent::Acquire {
                shard: self.shard,
                grant: grant_tx,
            })
            .map_err(|_| LockError::ShuttingDown)?;
        let reply = match timeout {
            None | Some(Duration::MAX) => grant_rx.recv().map_err(|_| LockError::ShuttingDown)?,
            Some(d) => grant_rx.recv_timeout(d).map_err(|e| match e {
                RecvTimeoutError::Timeout => LockError::Timeout,
                RecvTimeoutError::Disconnected => LockError::ShuttingDown,
            })?,
        };
        let gen = reply?;
        Ok(LockGuard {
            tx: self.tx.clone(),
            shard: self.shard,
            gen,
        })
    }
}

/// A single-lock handle bound to one node: the compatibility shim over
/// shard 0 (see [`Cluster::handle`]).
///
/// Clone freely; clones address the same node.
#[derive(Debug, Clone)]
pub struct MutexHandle {
    inner: ResourceHandle,
}

impl MutexHandle {
    /// The node this handle locks through.
    pub fn node(&self) -> NodeId {
        self.inner.node()
    }

    /// Blocks until the distributed lock is granted, returning an RAII
    /// guard that releases on drop.
    ///
    /// # Errors
    ///
    /// As [`ResourceHandle::lock`].
    pub fn lock(&self) -> Result<LockGuard, LockError> {
        self.inner.lock()
    }

    /// Attempts the lock with a short built-in grace.
    ///
    /// # Errors
    ///
    /// As [`ResourceHandle::try_lock`].
    pub fn try_lock(&self) -> Result<LockGuard, LockError> {
        self.inner.try_lock()
    }

    /// Like [`MutexHandle::lock`] with a timeout.
    ///
    /// # Errors
    ///
    /// As [`ResourceHandle::try_lock_for`].
    pub fn try_lock_for(&self, timeout: Duration) -> Result<LockGuard, LockError> {
        self.inner.try_lock_for(timeout)
    }
}

/// RAII guard for a distributed critical section: the lock is held from
/// grant until the guard drops.
///
/// Guards are generation-tagged per shard: if the granting node crashes
/// while the guard is held, the eventual release is recognized as stale
/// and ignored instead of ending a post-recovery critical section. Guards
/// are deliberately not `Clone` — exactly one release per grant.
#[derive(Debug)]
#[must_use = "dropping the guard immediately releases the lock"]
pub struct LockGuard {
    tx: Sender<NodeEvent>,
    shard: ShardId,
    gen: u64,
}

impl LockGuard {
    /// The shard whose critical section this guard holds.
    pub fn shard(&self) -> ShardId {
        self.shard
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = self.tx.send(NodeEvent::Release {
            shard: self.shard,
            gen: self.gen,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn single_node_lock_unlock() {
        let cluster = Cluster::builder(1).build();
        let metrics = cluster.metrics_handle();
        let h = cluster.handle(0).expect("in range");
        for _ in 0..3 {
            let g = h.lock().expect("granted");
            drop(g);
        }
        // Shutdown joins the node threads, so all releases are processed.
        cluster.shutdown();
        assert_eq!(metrics.cs_completed_total(), 3);
    }

    #[test]
    fn lock_is_mutually_exclusive_across_nodes() {
        let cluster = Arc::new(Cluster::builder(4).build());
        let counter = Arc::new(AtomicU32::new(0));
        let mut joins = Vec::new();
        for i in 0..4 {
            let h = cluster.handle(i).expect("in range");
            let counter = Arc::clone(&counter);
            joins.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let _g = h.lock().expect("granted");
                    // If two guards ever coexist this goes above 1.
                    let c = counter.fetch_add(1, Ordering::SeqCst);
                    assert_eq!(c, 0, "two nodes inside the critical section");
                    std::thread::sleep(Duration::from_micros(200));
                    counter.fetch_sub(1, Ordering::SeqCst);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        let cluster = Arc::try_unwrap(cluster).expect("sole owner");
        let metrics = cluster.metrics_handle();
        cluster.shutdown();
        assert_eq!(metrics.cs_completed_total(), 40);
    }

    #[test]
    fn try_lock_timeout_returns_err_and_recovers() {
        let cluster = Cluster::builder(2).build();
        let a = cluster.handle(0).expect("in range");
        let b = cluster.handle(1).expect("in range");
        let g = a.lock().expect("granted");
        // b cannot get it while a holds it.
        assert_eq!(
            b.try_lock_for(Duration::from_millis(100)).err(),
            Some(LockError::Timeout)
        );
        drop(g);
        // The abandoned grant auto-releases; b can lock now.
        let g2 = b.try_lock_for(Duration::from_secs(10)).expect("granted");
        drop(g2);
        cluster.shutdown();
    }

    #[test]
    fn out_of_range_apis_return_typed_errors() {
        let cluster = Cluster::builder(2).build();
        assert_eq!(
            cluster.handle(7).err(),
            Some(LockError::NoSuchNode { node: 7, nodes: 2 })
        );
        assert_eq!(
            cluster.resource_on(9, "x").err(),
            Some(LockError::NoSuchNode { node: 9, nodes: 2 })
        );
        assert_eq!(
            cluster.crash(5),
            Err(FaultError::NoSuchNode { node: 5, nodes: 2 })
        );
        assert_eq!(
            cluster.recover(5),
            Err(FaultError::NoSuchNode { node: 5, nodes: 2 })
        );
        assert_eq!(
            cluster.partition(&[&[0], &[1, 6]]),
            Err(FaultError::NoSuchNode { node: 6, nodes: 2 })
        );
        cluster.shutdown();
    }

    #[test]
    fn resources_map_onto_distinct_shards_and_lock_independently() {
        let cluster = Cluster::builder(2).shards(4).build();
        assert_eq!(cluster.shards(), 4);
        // Find two resources on different shards.
        let a = cluster.resource("res/a");
        let mut b = cluster.resource("res/b");
        for i in 0.. {
            if b.shard() != a.shard() {
                break;
            }
            b = cluster.resource(format!("res/b{i}"));
        }
        // Holding a's lock must not block b: different token instances.
        let ga = a.lock().expect("granted a");
        let gb = b.try_lock_for(Duration::from_secs(10)).expect("granted b");
        drop(gb);
        drop(ga);
        cluster.shutdown();
    }
}
