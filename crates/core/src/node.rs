//! The per-node event loop: drives an [`ArbiterNode`] state machine with
//! real messages, real timers, and application lock requests.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use tokq_obs::{span, Event, Level, Obs, SpanGuard};
use tokq_protocol::api::Protocol;
use tokq_protocol::arbiter::{ArbiterMsg, ArbiterNode, ArbiterTimer};
use tokq_protocol::event::{Action, Input, Note};
use tokq_protocol::types::NodeId;

use crate::metrics::ClusterMetrics;
use crate::transport::{Envelope, Wire};
use crate::wire;

/// Trace target for protocol-level observations (notes, phases).
const T_ARBITER: &str = "arbiter";
/// Trace target for node lifecycle and lock servicing.
const T_NODE: &str = "node";
/// Trace target for per-message wire traffic.
const T_NET: &str = "net";

/// Events consumed by a node thread.
#[derive(Debug)]
pub(crate) enum NodeEvent {
    /// An encoded protocol frame arrived.
    Wire { from: NodeId, frame: bytes::Bytes },
    /// An application thread wants the lock; the sender receives the
    /// grant's CS generation when the critical section is granted.
    Acquire { grant: Sender<u64> },
    /// The guard was dropped: the critical section is over. Carries the
    /// generation the guard was granted under, so a stale guard from
    /// before a crash cannot release somebody else's critical section.
    Release {
        /// CS generation the releasing guard was granted under.
        gen: u64,
    },
    /// Simulated process crash (volatile state lost).
    Crash,
    /// Restart after a crash.
    Recover,
    /// Terminate the event loop.
    Shutdown,
}

struct PendingTimer {
    due: Instant,
    gen: u64,
    timer: ArbiterTimer,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.gen == other.gen
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.gen.cmp(&self.gen))
    }
}

pub(crate) struct NodeLoop {
    id: NodeId,
    protocol: ArbiterNode,
    rx: Receiver<NodeEvent>,
    transport: Arc<dyn Wire>,
    metrics: Arc<ClusterMetrics>,
    obs: Obs,
    n: usize,

    timers: BinaryHeap<PendingTimer>,
    timer_gen: HashMap<ArbiterTimer, u64>,

    /// Pending grant channels paired with their acquire time, for the
    /// CS-grant latency histogram. Waiters survive a crash: on recovery
    /// the node re-requests the lock on their behalf.
    waiters: VecDeque<(Sender<u64>, Instant)>,
    /// Open `request_collection` span while this node's arbiter window
    /// collects requests (closed by the Q-list seal).
    collection_span: Option<SpanGuard>,
    /// Open `forwarding_phase` span while this node relays late requests
    /// to its successor.
    forwarding_span: Option<SpanGuard>,
    engaged: bool,
    in_cs: bool,
    alive: bool,
    /// CS generation: bumped on every grant and on every crash, so a
    /// [`NodeEvent::Release`] from a guard granted in an earlier era is
    /// recognized as stale and ignored.
    cs_gen: u64,
    /// Internally generated events processed before external ones
    /// (e.g. auto-release when a grantee abandoned its request).
    backlog: VecDeque<NodeEvent>,
}

impl NodeLoop {
    pub(crate) fn new(
        protocol: ArbiterNode,
        rx: Receiver<NodeEvent>,
        transport: Arc<dyn Wire>,
        metrics: Arc<ClusterMetrics>,
    ) -> Self {
        let id = protocol.id();
        let n = protocol.num_nodes();
        let obs = metrics.obs().clone();
        NodeLoop {
            id,
            protocol,
            rx,
            transport,
            metrics,
            obs,
            n,
            timers: BinaryHeap::new(),
            timer_gen: HashMap::new(),
            waiters: VecDeque::new(),
            collection_span: None,
            forwarding_span: None,
            engaged: false,
            in_cs: false,
            alive: true,
            cs_gen: 0,
            backlog: VecDeque::new(),
        }
    }

    pub(crate) fn run(mut self) {
        self.dispatch(Input::Start);
        loop {
            if let Some(ev) = self.backlog.pop_front() {
                if self.handle(ev) {
                    return;
                }
                continue;
            }
            self.fire_due_timers();
            let wait = self
                .timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(100));
            match self.rx.recv_timeout(wait) {
                Ok(ev) => {
                    if self.handle(ev) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Returns `true` on shutdown.
    fn handle(&mut self, ev: NodeEvent) -> bool {
        match ev {
            NodeEvent::Wire { from, frame } => {
                if !self.alive {
                    return false;
                }
                self.obs
                    .registry()
                    .counter("wire_bytes_in")
                    .add(frame.len() as u64);
                match wire::decode(&frame) {
                    Ok(msg) => {
                        use tokq_protocol::api::ProtocolMessage;
                        let kind = msg.kind();
                        if self.obs.enabled(T_NET, Level::Trace) {
                            self.obs.emit(
                                Event::new(T_NET, Level::Trace, "msg_recv")
                                    .node(u64::from(self.id.0))
                                    .field("from", &from.0)
                                    .field("kind", &kind)
                                    .field("bytes", &(frame.len() as u64)),
                            );
                        }
                        let hist = self.obs.registry().histogram_with("handle_ns", kind);
                        let start = Instant::now();
                        self.dispatch(Input::Deliver { from, msg });
                        hist.record_duration(start.elapsed());
                    }
                    Err(err) => {
                        // A corrupt frame is dropped like a lost message.
                        self.metrics.note("wire_decode_error");
                        if self.obs.enabled(T_NET, Level::Debug) {
                            self.obs.emit(
                                Event::new(T_NET, Level::Debug, "wire_decode_error")
                                    .node(u64::from(self.id.0))
                                    .field("from", &from.0)
                                    .field("error", &format!("{err:?}")),
                            );
                        }
                    }
                }
            }
            NodeEvent::Acquire { grant } => {
                self.metrics.cs_requested();
                self.waiters.push_back((grant, Instant::now()));
                self.pump_lock();
            }
            NodeEvent::Release { gen } => {
                if gen != self.cs_gen {
                    // A guard from before a crash (or an abandoned grant
                    // from an earlier era): its critical section no longer
                    // exists, so releasing would end somebody else's.
                    self.metrics.note("stale_release_ignored");
                    return false;
                }
                if self.in_cs {
                    self.in_cs = false;
                    self.engaged = false;
                    self.metrics.cs_completed();
                    if self.obs.enabled(T_NODE, Level::Debug) {
                        self.obs.emit(
                            Event::new(T_NODE, Level::Debug, "cs_released")
                                .node(u64::from(self.id.0)),
                        );
                    }
                    self.dispatch(Input::CsDone);
                    self.pump_lock();
                }
            }
            NodeEvent::Crash => {
                if self.alive {
                    self.dispatch(Input::Crash);
                    self.alive = false;
                    self.in_cs = false;
                    self.engaged = false;
                    // Invalidate any outstanding guard: its release (or an
                    // in-flight grant being consumed late) must not close a
                    // post-recovery critical section.
                    self.cs_gen += 1;
                    // Waiters survive: their application threads are still
                    // blocked on the grant channel, so the recovered node
                    // re-requests on their behalf instead of stranding them.
                    self.collection_span = None;
                    self.forwarding_span = None;
                    self.timers.clear();
                    self.timer_gen.clear();
                    if self.obs.enabled(T_NODE, Level::Info) {
                        self.obs.emit(
                            Event::new(T_NODE, Level::Info, "crashed").node(u64::from(self.id.0)),
                        );
                    }
                }
            }
            NodeEvent::Recover => {
                if !self.alive {
                    self.alive = true;
                    if self.obs.enabled(T_NODE, Level::Info) {
                        self.obs.emit(
                            Event::new(T_NODE, Level::Info, "recovered").node(u64::from(self.id.0)),
                        );
                    }
                    self.dispatch(Input::Recover);
                    if !self.waiters.is_empty() {
                        // Re-issue the lock request for waiters that
                        // survived the crash, counted separately from
                        // fresh demand.
                        self.metrics.cs_rerequested();
                        self.engaged = true;
                        self.dispatch(Input::RequestCs);
                    }
                }
            }
            NodeEvent::Shutdown => return true,
        }
        false
    }

    fn pump_lock(&mut self) {
        if self.alive && !self.engaged && !self.in_cs && !self.waiters.is_empty() {
            self.engaged = true;
            self.dispatch(Input::RequestCs);
        }
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = Instant::now();
            let Some(top) = self.timers.peek() else {
                return;
            };
            if top.due > now {
                return;
            }
            let t = self.timers.pop().expect("peeked");
            let live = self.timer_gen.get(&t.timer).is_some_and(|&g| g == t.gen);
            if live && self.alive {
                self.dispatch(Input::Timer(t.timer));
            }
        }
    }

    fn dispatch(&mut self, input: Input<ArbiterMsg, ArbiterTimer>) {
        let actions = self.protocol.step(input);
        self.execute(actions);
    }

    fn execute(&mut self, actions: Vec<Action<ArbiterMsg, ArbiterTimer>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.transmit(to, &msg),
                Action::Broadcast { msg, except } => {
                    for i in 0..self.n {
                        let to = NodeId::from_index(i);
                        if to != self.id && !except.contains(&to) {
                            self.transmit(to, &msg);
                        }
                    }
                }
                Action::SetTimer { timer, after } => {
                    let gen = self.timer_gen.entry(timer).or_insert(0);
                    *gen += 1;
                    self.timers.push(PendingTimer {
                        due: Instant::now() + after.into(),
                        gen: *gen,
                        timer,
                    });
                }
                Action::CancelTimer(timer) => {
                    *self.timer_gen.entry(timer).or_insert(0) += 1;
                }
                Action::EnterCs => {
                    self.in_cs = true;
                    self.cs_gen += 1;
                    match self.waiters.pop_front() {
                        Some((grant, since)) if grant.send(self.cs_gen).is_ok() => {
                            let waited = since.elapsed();
                            self.obs
                                .registry()
                                .histogram_with("span_ns", "cs_grant")
                                .record_duration(waited);
                            if self.obs.enabled(T_NODE, Level::Debug) {
                                self.obs.emit(
                                    Event::new(T_NODE, Level::Debug, "cs_granted")
                                        .node(u64::from(self.id.0))
                                        .field(
                                            "wait_ns",
                                            &(waited.as_nanos().min(u128::from(u64::MAX)) as u64),
                                        ),
                                );
                            }
                        }
                        _ => {
                            // The waiter gave up (timeout) or vanished:
                            // release immediately so the token moves on.
                            self.backlog
                                .push_back(NodeEvent::Release { gen: self.cs_gen });
                        }
                    }
                }
                Action::Note(note) => {
                    self.metrics.note(note.label());
                    if self.obs.enabled(T_ARBITER, Level::Debug) {
                        self.obs.emit(
                            Event::new(T_ARBITER, Level::Debug, note.label())
                                .node(u64::from(self.id.0))
                                .field("detail", &note),
                        );
                    }
                    // Phase notes open/close wall-clock spans: dropping a
                    // guard emits `span_close` and records the duration in
                    // the `span_ns/<name>` histogram.
                    match note {
                        Note::CollectionOpened => {
                            self.collection_span = Some(
                                span!(self.obs, T_ARBITER, "request_collection")
                                    .on_node(u64::from(self.id.0)),
                            );
                        }
                        Note::QListSealed { .. } => self.collection_span = None,
                        Note::ForwardingOpened { .. } => {
                            self.forwarding_span = Some(
                                span!(self.obs, T_ARBITER, "forwarding_phase")
                                    .on_node(u64::from(self.id.0)),
                            );
                        }
                        Note::ForwardingClosed => self.forwarding_span = None,
                        _ => {}
                    }
                }
            }
        }
    }

    fn transmit(&self, to: NodeId, msg: &ArbiterMsg) {
        use tokq_protocol::api::ProtocolMessage;
        let kind = msg.kind();
        self.metrics.message(kind);
        let frame = wire::encode(msg);
        self.obs
            .registry()
            .counter("wire_bytes_out")
            .add(frame.len() as u64);
        if self.obs.enabled(T_NET, Level::Trace) {
            self.obs.emit(
                Event::new(T_NET, Level::Trace, "msg_sent")
                    .node(u64::from(self.id.0))
                    .field("to", &to.0)
                    .field("kind", &kind)
                    .field("bytes", &(frame.len() as u64)),
            );
        }
        self.transport.send(Envelope {
            from: self.id,
            to,
            frame,
        });
    }
}
