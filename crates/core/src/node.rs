//! The per-node event loop: drives one [`ArbiterNode`] state machine *per
//! shard* with real messages, real timers, and application lock requests.
//!
//! A node owns `K` independent protocol instances (shards) but a single
//! inbox, a single thread, and a single transport. Incoming events are
//! drained in batches and bucketed by shard before dispatch, so a burst of
//! traffic on one shard is amortized into one pass instead of `K`
//! interleaved context switches; control events (crash/recover/shutdown)
//! act as batch barriers because they affect every shard at once.

use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use tokq_obs::{span, Event, Level, Obs, SpanGuard};
use tokq_protocol::api::Protocol;
use tokq_protocol::arbiter::{ArbiterMsg, ArbiterNode, ArbiterTimer};
use tokq_protocol::event::{Action, Input, Note};
use tokq_protocol::types::NodeId;

use crate::metrics::ClusterMetrics;
use crate::service::{LockError, ShardId};
use crate::transport::{Envelope, Wire};
use crate::wire;

/// Trace target for protocol-level observations (notes, phases).
const T_ARBITER: &str = "arbiter";
/// Trace target for node lifecycle and lock servicing.
const T_NODE: &str = "node";
/// Trace target for per-message wire traffic.
const T_NET: &str = "net";

/// How many inbox events one drain pass may swallow before dispatching.
const BATCH: usize = 128;

/// What an [`NodeEvent::Acquire`] waiter eventually hears back: the CS
/// generation of its grant, or a typed refusal.
pub(crate) type GrantReply = Result<u64, LockError>;

/// Events consumed by a node thread.
#[derive(Debug)]
pub(crate) enum NodeEvent {
    /// An encoded protocol frame arrived. The owning shard rides inside
    /// the frame header and is recovered at decode time.
    Wire { from: NodeId, frame: bytes::Bytes },
    /// An application thread wants the lock on `shard`; the sender
    /// receives the grant's CS generation when the critical section is
    /// granted, or a [`LockError`] if it never can be.
    Acquire {
        shard: ShardId,
        grant: Sender<GrantReply>,
    },
    /// The guard was dropped: the critical section on `shard` is over.
    /// Carries the generation the guard was granted under, so a stale
    /// guard from before a crash cannot release somebody else's critical
    /// section.
    Release {
        /// Shard the releasing guard belongs to.
        shard: ShardId,
        /// CS generation the releasing guard was granted under.
        gen: u64,
    },
    /// Simulated process crash (volatile state lost on every shard).
    Crash,
    /// Restart after a crash.
    Recover,
    /// Terminate the event loop.
    Shutdown,
}

impl NodeEvent {
    /// Control events touch every shard at once and therefore act as
    /// batch barriers in the drain loop.
    fn is_control(&self) -> bool {
        matches!(
            self,
            NodeEvent::Crash | NodeEvent::Recover | NodeEvent::Shutdown
        )
    }
}

/// A decoded, shard-attributed unit of work produced by the drain pass.
enum ShardWork {
    Deliver { from: NodeId, msg: ArbiterMsg },
    Acquire { grant: Sender<GrantReply> },
    Release { gen: u64 },
}

struct PendingTimer {
    due: Instant,
    gen: u64,
    shard: ShardId,
    timer: ArbiterTimer,
}

impl PartialEq for PendingTimer {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.gen == other.gen && self.shard == other.shard
    }
}
impl Eq for PendingTimer {}
impl PartialOrd for PendingTimer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingTimer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.gen.cmp(&self.gen))
            .then_with(|| other.shard.cmp(&self.shard))
    }
}

/// Per-shard protocol state: one independent arbiter instance plus the
/// lock-service bookkeeping that belongs to it.
struct ShardState {
    protocol: ArbiterNode,
    /// Pending grant channels paired with their acquire time, for the
    /// CS-grant latency histogram. Waiters survive a crash: on recovery
    /// the node re-requests the lock on their behalf.
    waiters: VecDeque<(Sender<GrantReply>, Instant)>,
    /// Open `request_collection` span while this shard's arbiter window
    /// collects requests (closed by the Q-list seal).
    collection_span: Option<SpanGuard>,
    /// Open `forwarding_phase` span while this shard relays late requests
    /// to its successor.
    forwarding_span: Option<SpanGuard>,
    engaged: bool,
    in_cs: bool,
    /// CS generation: bumped on every grant and on every crash, so a
    /// [`NodeEvent::Release`] from a guard granted in an earlier era is
    /// recognized as stale and ignored.
    cs_gen: u64,
}

impl ShardState {
    fn new(protocol: ArbiterNode) -> Self {
        ShardState {
            protocol,
            waiters: VecDeque::new(),
            collection_span: None,
            forwarding_span: None,
            engaged: false,
            in_cs: false,
            cs_gen: 0,
        }
    }
}

pub(crate) struct NodeLoop {
    id: NodeId,
    shards: Vec<ShardState>,
    rx: Receiver<NodeEvent>,
    transport: Arc<dyn Wire>,
    metrics: Arc<ClusterMetrics>,
    obs: Obs,
    n: usize,

    timers: BinaryHeap<PendingTimer>,
    timer_gen: HashMap<(ShardId, ArbiterTimer), u64>,

    alive: bool,
    /// Internally generated events processed before external ones
    /// (e.g. auto-release when a grantee abandoned its request).
    backlog: VecDeque<NodeEvent>,
    /// Per-shard staging buffers for one drain pass. Persistent across
    /// passes so the (very hot) one-event-per-wakeup case costs no
    /// allocation once the deques have warmed up.
    buckets: Vec<VecDeque<ShardWork>>,
}

impl NodeLoop {
    pub(crate) fn new(
        shards: Vec<ArbiterNode>,
        rx: Receiver<NodeEvent>,
        transport: Arc<dyn Wire>,
        metrics: Arc<ClusterMetrics>,
    ) -> Self {
        assert!(!shards.is_empty(), "a node runs at least one shard");
        let id = shards[0].id();
        let n = shards[0].num_nodes();
        let k = shards.len();
        let obs = metrics.obs().clone();
        NodeLoop {
            id,
            shards: shards.into_iter().map(ShardState::new).collect(),
            rx,
            transport,
            metrics,
            obs,
            n,
            timers: BinaryHeap::new(),
            timer_gen: HashMap::new(),
            alive: true,
            backlog: VecDeque::new(),
            buckets: (0..k).map(|_| VecDeque::new()).collect(),
        }
    }

    pub(crate) fn run(mut self) {
        for s in 0..self.shards.len() {
            self.dispatch(ShardId(s as u16), Input::Start);
        }
        loop {
            if let Some(ev) = self.backlog.pop_front() {
                if self.handle(ev) {
                    return;
                }
                continue;
            }
            self.fire_due_timers();
            let wait = self
                .timers
                .peek()
                .map(|t| t.due.saturating_duration_since(Instant::now()))
                .unwrap_or(Duration::from_millis(100));
            match self.rx.recv_timeout(wait) {
                Ok(ev) => {
                    if self.drain_from(ev) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }

    /// Drains up to [`BATCH`] queued events starting from `first` into
    /// the per-shard staging buckets (preserving each shard's arrival
    /// order — cross-shard order is immaterial, the instances are
    /// independent), then dispatches one shard at a time. A control
    /// event ends the batch (it is a barrier across all shards).
    /// Returns `true` on shutdown.
    fn drain_from(&mut self, first: NodeEvent) -> bool {
        if first.is_control() {
            return self.handle(first);
        }
        self.stage(first);
        let mut drained = 1;
        let mut barrier = None;
        while drained < BATCH {
            match self.rx.try_recv() {
                Ok(ev) if ev.is_control() => {
                    barrier = Some(ev);
                    break;
                }
                Ok(ev) => {
                    self.stage(ev);
                    drained += 1;
                }
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        for idx in 0..self.buckets.len() {
            let shard = ShardId(idx as u16);
            while let Some(work) = self.buckets[idx].pop_front() {
                self.handle_shard_work(shard, work);
            }
        }
        match barrier {
            Some(ev) => self.handle(ev),
            None => false,
        }
    }

    /// Classifies one data event into its shard's staging bucket.
    fn stage(&mut self, ev: NodeEvent) {
        if let Some((shard, work)) = self.classify(ev) {
            self.buckets[shard.index()].push_back(work);
        }
    }

    /// Decodes/attributes one data event to its shard, or absorbs it
    /// (dead-node traffic, corrupt frames, out-of-range shard ids).
    fn classify(&mut self, ev: NodeEvent) -> Option<(ShardId, ShardWork)> {
        match ev {
            NodeEvent::Wire { from, frame } => {
                if !self.alive {
                    return None;
                }
                self.obs
                    .registry()
                    .counter("wire_bytes_in")
                    .add(frame.len() as u64);
                match wire::decode(&frame) {
                    Ok((shard, msg)) if shard.index() < self.shards.len() => {
                        use tokq_protocol::api::ProtocolMessage;
                        if self.obs.enabled(T_NET, Level::Trace) {
                            self.obs.emit(
                                Event::new(T_NET, Level::Trace, "msg_recv")
                                    .node(u64::from(self.id.0))
                                    .shard(u64::from(shard.0))
                                    .field("from", &from.0)
                                    .field("kind", &msg.kind())
                                    .field("bytes", &(frame.len() as u64)),
                            );
                        }
                        Some((shard, ShardWork::Deliver { from, msg }))
                    }
                    Ok((shard, _)) => {
                        // A frame for a shard this cluster does not run:
                        // drop it like a lost message rather than panic.
                        self.metrics.note("wire_shard_out_of_range");
                        if self.obs.enabled(T_NET, Level::Debug) {
                            self.obs.emit(
                                Event::new(T_NET, Level::Debug, "wire_shard_out_of_range")
                                    .node(u64::from(self.id.0))
                                    .shard(u64::from(shard.0))
                                    .field("from", &from.0),
                            );
                        }
                        None
                    }
                    Err(err) => {
                        // A corrupt frame is dropped like a lost message.
                        self.metrics.note("wire_decode_error");
                        if self.obs.enabled(T_NET, Level::Debug) {
                            self.obs.emit(
                                Event::new(T_NET, Level::Debug, "wire_decode_error")
                                    .node(u64::from(self.id.0))
                                    .field("from", &from.0)
                                    .field("error", &format!("{err:?}")),
                            );
                        }
                        None
                    }
                }
            }
            NodeEvent::Acquire { shard, grant } => {
                if shard.index() >= self.shards.len() {
                    let _ = grant.send(Err(LockError::ShuttingDown));
                    return None;
                }
                if !self.alive {
                    // New demand on a crashed node fails fast; waiters
                    // enqueued *before* the crash still survive it.
                    self.metrics.note("acquire_on_crashed_node");
                    let _ = grant.send(Err(LockError::NodeDown));
                    return None;
                }
                Some((shard, ShardWork::Acquire { grant }))
            }
            NodeEvent::Release { shard, gen } => {
                if shard.index() >= self.shards.len() {
                    return None;
                }
                Some((shard, ShardWork::Release { gen }))
            }
            NodeEvent::Crash | NodeEvent::Recover | NodeEvent::Shutdown => {
                unreachable!("control events are handled as barriers")
            }
        }
    }

    fn handle_shard_work(&mut self, shard: ShardId, work: ShardWork) {
        match work {
            ShardWork::Deliver { from, msg } => {
                use tokq_protocol::api::ProtocolMessage;
                let hist = self.obs.registry().histogram_with("handle_ns", msg.kind());
                let start = Instant::now();
                self.dispatch(shard, Input::Deliver { from, msg });
                hist.record_duration(start.elapsed());
            }
            ShardWork::Acquire { grant } => {
                self.metrics.cs_requested(shard);
                self.shards[shard.index()]
                    .waiters
                    .push_back((grant, Instant::now()));
                self.pump_lock(shard);
            }
            ShardWork::Release { gen } => {
                let st = &mut self.shards[shard.index()];
                if gen != st.cs_gen {
                    // A guard from before a crash (or an abandoned grant
                    // from an earlier era): its critical section no longer
                    // exists, so releasing would end somebody else's.
                    self.metrics.note("stale_release_ignored");
                    return;
                }
                if st.in_cs {
                    st.in_cs = false;
                    st.engaged = false;
                    self.metrics.cs_completed(shard);
                    if self.obs.enabled(T_NODE, Level::Debug) {
                        self.obs.emit(
                            Event::new(T_NODE, Level::Debug, "cs_released")
                                .node(u64::from(self.id.0))
                                .shard(u64::from(shard.0)),
                        );
                    }
                    self.dispatch(shard, Input::CsDone);
                    self.pump_lock(shard);
                }
            }
        }
    }

    /// Handles one event outside a batch (backlog entries and control
    /// barriers). Returns `true` on shutdown.
    fn handle(&mut self, ev: NodeEvent) -> bool {
        match ev {
            NodeEvent::Crash => {
                if self.alive {
                    for s in 0..self.shards.len() {
                        self.dispatch(ShardId(s as u16), Input::Crash);
                    }
                    self.alive = false;
                    for st in &mut self.shards {
                        st.in_cs = false;
                        st.engaged = false;
                        // Invalidate any outstanding guard: its release
                        // (or an in-flight grant consumed late) must not
                        // close a post-recovery critical section.
                        st.cs_gen += 1;
                        // Waiters survive: their application threads are
                        // still blocked on the grant channel, so the
                        // recovered node re-requests on their behalf
                        // instead of stranding them.
                        st.collection_span = None;
                        st.forwarding_span = None;
                    }
                    self.timers.clear();
                    self.timer_gen.clear();
                    if self.obs.enabled(T_NODE, Level::Info) {
                        self.obs.emit(
                            Event::new(T_NODE, Level::Info, "crashed").node(u64::from(self.id.0)),
                        );
                    }
                }
                false
            }
            NodeEvent::Recover => {
                if !self.alive {
                    self.alive = true;
                    if self.obs.enabled(T_NODE, Level::Info) {
                        self.obs.emit(
                            Event::new(T_NODE, Level::Info, "recovered").node(u64::from(self.id.0)),
                        );
                    }
                    for s in 0..self.shards.len() {
                        self.dispatch(ShardId(s as u16), Input::Recover);
                    }
                    for s in 0..self.shards.len() {
                        let shard = ShardId(s as u16);
                        if !self.shards[s].waiters.is_empty() {
                            // Re-issue the lock request for waiters that
                            // survived the crash, counted separately from
                            // fresh demand.
                            self.metrics.cs_rerequested(shard);
                            self.shards[s].engaged = true;
                            self.dispatch(shard, Input::RequestCs);
                        }
                    }
                }
                false
            }
            NodeEvent::Shutdown => true,
            other => {
                // Backlog data events (e.g. auto-release) take the same
                // path as batched ones.
                if let Some((shard, work)) = self.classify(other) {
                    self.handle_shard_work(shard, work);
                }
                false
            }
        }
    }

    fn pump_lock(&mut self, shard: ShardId) {
        let st = &self.shards[shard.index()];
        if self.alive && !st.engaged && !st.in_cs && !st.waiters.is_empty() {
            self.shards[shard.index()].engaged = true;
            self.dispatch(shard, Input::RequestCs);
        }
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = Instant::now();
            let Some(top) = self.timers.peek() else {
                return;
            };
            if top.due > now {
                return;
            }
            let t = self.timers.pop().expect("peeked");
            let live = self
                .timer_gen
                .get(&(t.shard, t.timer))
                .is_some_and(|&g| g == t.gen);
            if live && self.alive {
                self.dispatch(t.shard, Input::Timer(t.timer));
            }
        }
    }

    fn dispatch(&mut self, shard: ShardId, input: Input<ArbiterMsg, ArbiterTimer>) {
        let actions = self.shards[shard.index()].protocol.step(input);
        self.execute(shard, actions);
    }

    fn execute(&mut self, shard: ShardId, actions: Vec<Action<ArbiterMsg, ArbiterTimer>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.transmit(shard, to, &msg),
                Action::Broadcast { msg, except } => {
                    for i in 0..self.n {
                        let to = NodeId::from_index(i);
                        if to != self.id && !except.contains(&to) {
                            self.transmit(shard, to, &msg);
                        }
                    }
                }
                Action::SetTimer { timer, after } => {
                    let gen = self.timer_gen.entry((shard, timer)).or_insert(0);
                    *gen += 1;
                    self.timers.push(PendingTimer {
                        due: Instant::now() + after.into(),
                        gen: *gen,
                        shard,
                        timer,
                    });
                }
                Action::CancelTimer(timer) => {
                    *self.timer_gen.entry((shard, timer)).or_insert(0) += 1;
                }
                Action::EnterCs => {
                    let st = &mut self.shards[shard.index()];
                    st.in_cs = true;
                    st.cs_gen += 1;
                    let cs_gen = st.cs_gen;
                    match st.waiters.pop_front() {
                        Some((grant, since)) if grant.send(Ok(cs_gen)).is_ok() => {
                            let waited = since.elapsed();
                            self.obs
                                .registry()
                                .histogram_with("span_ns", "cs_grant")
                                .record_duration(waited);
                            if self.obs.enabled(T_NODE, Level::Debug) {
                                self.obs.emit(
                                    Event::new(T_NODE, Level::Debug, "cs_granted")
                                        .node(u64::from(self.id.0))
                                        .shard(u64::from(shard.0))
                                        .field(
                                            "wait_ns",
                                            &(waited.as_nanos().min(u128::from(u64::MAX)) as u64),
                                        ),
                                );
                            }
                        }
                        _ => {
                            // The waiter gave up (timeout) or vanished:
                            // release immediately so the token moves on.
                            self.backlog
                                .push_back(NodeEvent::Release { shard, gen: cs_gen });
                        }
                    }
                }
                Action::Note(note) => {
                    self.metrics.note(note.label());
                    if self.obs.enabled(T_ARBITER, Level::Debug) {
                        self.obs.emit(
                            Event::new(T_ARBITER, Level::Debug, note.label())
                                .node(u64::from(self.id.0))
                                .shard(u64::from(shard.0))
                                .field("detail", &note),
                        );
                    }
                    // Phase notes open/close wall-clock spans: dropping a
                    // guard emits `span_close` and records the duration in
                    // the `span_ns/<name>` histogram.
                    let st = &mut self.shards[shard.index()];
                    match note {
                        Note::CollectionOpened => {
                            st.collection_span = Some(
                                span!(self.obs, T_ARBITER, "request_collection")
                                    .on_node(u64::from(self.id.0)),
                            );
                        }
                        Note::QListSealed { .. } => st.collection_span = None,
                        Note::ForwardingOpened { .. } => {
                            st.forwarding_span = Some(
                                span!(self.obs, T_ARBITER, "forwarding_phase")
                                    .on_node(u64::from(self.id.0)),
                            );
                        }
                        Note::ForwardingClosed => st.forwarding_span = None,
                        _ => {}
                    }
                }
            }
        }
    }

    fn transmit(&self, shard: ShardId, to: NodeId, msg: &ArbiterMsg) {
        use tokq_protocol::api::ProtocolMessage;
        let kind = msg.kind();
        self.metrics.message(shard, kind);
        let frame = wire::encode(shard, msg);
        self.obs
            .registry()
            .counter("wire_bytes_out")
            .add(frame.len() as u64);
        if self.obs.enabled(T_NET, Level::Trace) {
            self.obs.emit(
                Event::new(T_NET, Level::Trace, "msg_sent")
                    .node(u64::from(self.id.0))
                    .shard(u64::from(shard.0))
                    .field("to", &to.0)
                    .field("kind", &kind)
                    .field("bytes", &(frame.len() as u64)),
            );
        }
        self.transport.send(Envelope {
            from: self.id,
            to,
            frame,
        });
    }
}
