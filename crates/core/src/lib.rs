//! Threaded runtime for the Banerjee–Chrysanthis token-passing distributed
//! mutex: the *production* face of the reproduction.
//!
//! The same sans-io state machine that regenerates the paper's figures in
//! the simulator here runs on real threads: each node has an event loop
//! with real timers, messages travel as binary frames through an
//! (optionally delayed and lossy) channel transport, and applications take
//! the lock through RAII guards.
//!
//! # Quickstart
//!
//! ```
//! use tokq_core::Cluster;
//!
//! let cluster = Cluster::builder(3).build();
//! let handle = cluster.handle(0);
//! {
//!     let _guard = handle.lock(); // distributed critical section
//! }
//! cluster.shutdown();
//! ```
//!
//! # Fault tolerance
//!
//! Clusters default to [`tokq_protocol::arbiter::ArbiterConfig::fault_tolerant`],
//! enabling the paper's §4.1 starvation-free monitor and §6 recovery
//! (token-loss detection, two-phase invalidation, arbiter takeover).
//! [`Cluster::crash`] and [`Cluster::recover`] inject real node failures.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod cluster;
pub mod fault;
pub mod metrics;
mod node;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use chaos::{soak, SafetyChecker, SoakOptions, SoakReport};
pub use cluster::{Cluster, ClusterBuilder, LockGuard, MutexHandle};
pub use fault::FaultPanel;
pub use metrics::ClusterMetrics;
pub use transport::NetOptions;
pub use wire::{decode, encode, WireError};
