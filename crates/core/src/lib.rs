//! Threaded runtime for the Banerjee–Chrysanthis token-passing distributed
//! mutex: the *production* face of the reproduction.
//!
//! The same sans-io state machine that regenerates the paper's figures in
//! the simulator here runs on real threads: each node has an event loop
//! with real timers, messages travel as binary frames through an
//! (optionally delayed and lossy) channel transport, and applications take
//! the lock through RAII guards.
//!
//! # Quickstart
//!
//! ```
//! use tokq_core::Cluster;
//!
//! let cluster = Cluster::builder(3).build();
//! let handle = cluster.handle(0).unwrap();
//! {
//!     let _guard = handle.lock().unwrap(); // distributed critical section
//! }
//! cluster.shutdown();
//! ```
//!
//! # Multi-resource locking
//!
//! A cluster can run several independent protocol instances (**shards**)
//! over one transport mesh and serialize many named resources at once:
//!
//! ```
//! use tokq_core::Cluster;
//!
//! let cluster = Cluster::builder(3).shards(4).build();
//! {
//!     let _accounts = cluster.resource("accounts/7").lock().unwrap();
//!     // a resource on another shard locks concurrently
//! }
//! cluster.shutdown();
//! ```
//!
//! # Fault tolerance
//!
//! Clusters default to [`tokq_protocol::arbiter::ArbiterConfig::fault_tolerant`],
//! enabling the paper's §4.1 starvation-free monitor and §6 recovery
//! (token-loss detection, two-phase invalidation, arbiter takeover).
//! [`Cluster::crash`] and [`Cluster::recover`] inject real node failures.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod cluster;
pub mod fault;
pub mod metrics;
mod node;
pub mod service;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use chaos::{soak, SafetyChecker, SoakOptions, SoakReport};
pub use cluster::{Cluster, ClusterBuilder, LockGuard, MutexHandle, ResourceHandle};
pub use fault::FaultPanel;
pub use metrics::ClusterMetrics;
pub use service::{FaultError, LockError, ResourceId, ShardId};
pub use transport::NetOptions;
pub use wire::{decode, encode, WireError};
