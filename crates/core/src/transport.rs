//! In-process transports moving encoded frames between node threads.
//!
//! Transports are **shard-oblivious**: a frame is an opaque byte string
//! whose [`crate::wire`] header already carries the shard tag, so one
//! transport mesh serves every protocol instance of a sharded cluster and
//! demultiplexing happens in the node event loop, not here.
//!
//! The default [`ChannelTransport`] delivers frames over crossbeam
//! channels, optionally through a network thread that applies configurable
//! delay and loss — the same unreliability surface the simulator models,
//! but in real time against real threads. On top of the static
//! [`NetOptions`], every frame consults a runtime-mutable
//! [`FaultPanel`]: blocked links (partitions)
//! and injected loss bursts are applied at send time, mirroring the
//! simulator's partition semantics.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use tokq_obs::{Counter, Gauge, Obs, Source};
use tokq_protocol::types::NodeId;

use crate::fault::FaultPanel;

/// Network behaviour applied by the transport.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetOptions {
    /// Fixed delivery delay applied to every frame.
    pub delay: Duration,
    /// Additional uniformly-distributed jitter on top of `delay`.
    pub jitter: Duration,
    /// Probability a frame is silently dropped.
    pub loss: f64,
    /// Seed for the loss/jitter stream.
    pub seed: u64,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            delay: Duration::ZERO,
            jitter: Duration::ZERO,
            loss: 0.0,
            seed: 1,
        }
    }
}

impl NetOptions {
    /// Instant, reliable delivery (the default).
    pub fn instant() -> Self {
        Self::default()
    }

    /// Delayed delivery with jitter.
    pub fn delayed(delay: Duration, jitter: Duration) -> Self {
        NetOptions {
            delay,
            jitter,
            ..Self::default()
        }
    }

    /// Lossy delivery.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability.
    pub fn lossy(mut self, loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        self.loss = loss;
        self
    }
}

/// Anything that can carry an envelope toward its destination node.
///
/// Implemented by the in-process [`ChannelTransport`] and by the TCP
/// transport in [`crate::tcp`]; node event loops are generic over it.
pub trait Wire: Send + Sync + 'static {
    /// Best-effort delivery of one envelope.
    ///
    /// **Must not block the caller on network I/O.** Protocol threads
    /// call this while driving request collection and token forwarding;
    /// an implementation that performs connects or writes inline couples
    /// every shard's latency to the slowest peer. The TCP transport only
    /// enqueues into a bounded per-peer outbox and hands the frame to a
    /// writer thread; the channel transport forwards over an unbounded
    /// in-process channel. Both are O(enqueue) on the calling thread.
    fn send(&self, env: Envelope);
}

/// A frame addressed to a node.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sender node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Encoded message frame.
    pub frame: Bytes,
}

/// Delivers envelopes to per-node inboxes, applying [`NetOptions`].
///
/// Frames pass through a dedicated network thread when any delay, jitter,
/// or loss is configured; otherwise they are forwarded synchronously.
pub struct ChannelTransport {
    direct: Vec<Sender<Envelope>>,
    net_tx: Option<Sender<Envelope>>,
    net_thread: Option<std::thread::JoinHandle<()>>,
    panel: FaultPanel,
}

impl std::fmt::Debug for ChannelTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelTransport")
            .field("nodes", &self.direct.len())
            .field("has_net_thread", &self.net_thread.is_some())
            .finish()
    }
}

struct Delayed {
    due: Instant,
    seq: u64,
    env: Envelope,
}

impl PartialEq for Delayed {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for Delayed {}
impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap by due time.
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

// SplitMix64, same as the simulator's.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_f64(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Transport-level counters the network thread maintains.
struct NetStats {
    /// Frames dropped by simulated loss.
    dropped: Counter,
    /// Frames delivered after their delay elapsed.
    delivered: Counter,
    /// Frames currently queued in the delay heap.
    inflight: Gauge,
}

impl NetStats {
    fn on(obs: &Obs) -> Self {
        NetStats {
            dropped: obs.registry().counter("net_dropped"),
            delivered: obs.registry().counter("net_delivered"),
            inflight: obs.registry().gauge("net_inflight"),
        }
    }
}

impl ChannelTransport {
    /// Builds a transport delivering into `inboxes` under `opts`.
    pub fn new(inboxes: Vec<Sender<Envelope>>, opts: NetOptions) -> Self {
        Self::with_obs(inboxes, opts, &Obs::disabled(Source::Runtime))
    }

    /// Like [`ChannelTransport::new`], recording loss/delay counters
    /// (`net_dropped`, `net_delivered`, `net_inflight`) into `obs`.
    pub fn with_obs(inboxes: Vec<Sender<Envelope>>, opts: NetOptions, obs: &Obs) -> Self {
        let panel = FaultPanel::new(inboxes.len(), obs);
        Self::with_panel(inboxes, opts, obs, panel)
    }

    /// Like [`ChannelTransport::with_obs`], sharing an externally owned
    /// [`FaultPanel`] so partitions and loss bursts can be injected while
    /// the transport runs.
    pub fn with_panel(
        inboxes: Vec<Sender<Envelope>>,
        opts: NetOptions,
        obs: &Obs,
        panel: FaultPanel,
    ) -> Self {
        let needs_thread =
            opts.delay > Duration::ZERO || opts.jitter > Duration::ZERO || opts.loss > 0.0;
        if !needs_thread {
            return ChannelTransport {
                direct: inboxes,
                net_tx: None,
                net_thread: None,
                panel,
            };
        }
        let stats = NetStats::on(obs);
        let (tx, rx) = unbounded::<Envelope>();
        let thread_panel = panel.clone();
        let thread = std::thread::Builder::new()
            .name("tokq-net".into())
            .spawn(move || net_thread(rx, inboxes, opts, stats, thread_panel))
            .expect("spawn network thread");
        ChannelTransport {
            direct: Vec::new(),
            net_tx: Some(tx),
            net_thread: Some(thread),
            panel,
        }
    }

    /// The fault panel this transport consults on every frame.
    pub fn fault_panel(&self) -> &FaultPanel {
        &self.panel
    }

    /// Sends one envelope; delivery is best-effort (dead inboxes,
    /// simulated losses, and faulted links are silently dropped).
    pub fn send(&self, env: Envelope) {
        if let Some(tx) = &self.net_tx {
            let _ = tx.send(env);
        } else {
            if !self.panel.admits(env.from.index(), env.to.index()) {
                return;
            }
            if let Some(inbox) = self.direct.get(env.to.index()) {
                let _ = inbox.send(env);
            }
        }
    }
}

impl ChannelTransport {
    /// Stops the network thread (if any), dropping queued frames.
    pub fn shutdown(&mut self) {
        self.net_tx = None;
        if let Some(t) = self.net_thread.take() {
            let _ = t.join();
        }
    }
}

impl Wire for ChannelTransport {
    fn send(&self, env: Envelope) {
        ChannelTransport::send(self, env);
    }
}

impl Drop for ChannelTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn net_thread(
    rx: Receiver<Envelope>,
    inboxes: Vec<Sender<Envelope>>,
    opts: NetOptions,
    stats: NetStats,
    panel: FaultPanel,
) {
    let mut heap: BinaryHeap<Delayed> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut rng = opts.seed;
    loop {
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().is_some_and(|d| d.due <= now) {
            let d = heap.pop().expect("peeked");
            stats.inflight.sub(1);
            stats.delivered.inc();
            if let Some(inbox) = inboxes.get(d.env.to.index()) {
                let _ = inbox.send(d.env);
            }
        }
        let wait = heap
            .peek()
            .map(|d| d.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(wait) {
            Ok(env) => {
                if !panel.admits(env.from.index(), env.to.index()) {
                    continue;
                }
                if opts.loss > 0.0 && next_f64(&mut rng) < opts.loss {
                    stats.dropped.inc();
                    continue;
                }
                let jitter = if opts.jitter > Duration::ZERO {
                    opts.jitter.mul_f64(next_f64(&mut rng))
                } else {
                    Duration::ZERO
                };
                seq += 1;
                stats.inflight.add(1);
                heap.push(Delayed {
                    due: Instant::now() + opts.delay + jitter,
                    seq,
                    env,
                });
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => {
                // Flush what remains, then exit.
                while let Some(d) = heap.pop() {
                    std::thread::sleep(d.due.saturating_duration_since(Instant::now()));
                    stats.inflight.sub(1);
                    stats.delivered.inc();
                    if let Some(inbox) = inboxes.get(d.env.to.index()) {
                        let _ = inbox.send(d.env);
                    }
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(to: u32, payload: &[u8]) -> Envelope {
        Envelope {
            from: NodeId(0),
            to: NodeId(to),
            frame: Bytes::copy_from_slice(payload),
        }
    }

    #[test]
    fn direct_transport_delivers_synchronously() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(vec![tx], NetOptions::instant());
        t.send(env(0, b"hello"));
        let got = rx.try_recv().expect("delivered");
        assert_eq!(&got.frame[..], b"hello");
    }

    #[test]
    fn delayed_transport_takes_time() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(
            vec![tx],
            NetOptions::delayed(Duration::from_millis(30), Duration::ZERO),
        );
        let start = Instant::now();
        t.send(env(0, b"x"));
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("delivered");
        assert_eq!(&got.frame[..], b"x");
        assert!(
            start.elapsed() >= Duration::from_millis(25),
            "took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn total_loss_drops_everything() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(vec![tx], NetOptions::instant().lossy(1.0));
        for _ in 0..10 {
            t.send(env(0, b"y"));
        }
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
    }

    #[test]
    fn out_of_range_destination_is_ignored() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(vec![tx], NetOptions::instant());
        t.send(env(5, b"z"));
        assert!(rx.try_recv().is_err());
    }

    #[test]
    fn blocked_link_drops_on_direct_path_and_heals() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(vec![tx], NetOptions::instant());
        t.fault_panel().block(0, 0);
        t.send(env(0, b"cut"));
        assert!(rx.try_recv().is_err());
        assert_eq!(t.fault_panel().blocked_drops(), 1);
        t.fault_panel().heal();
        t.send(env(0, b"whole"));
        assert_eq!(&rx.try_recv().expect("healed").frame[..], b"whole");
    }

    #[test]
    fn blocked_link_drops_through_net_thread() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(
            vec![tx],
            NetOptions::delayed(Duration::from_millis(1), Duration::ZERO),
        );
        t.fault_panel().block(0, 0);
        t.send(env(0, b"cut"));
        assert!(rx.recv_timeout(Duration::from_millis(100)).is_err());
        t.fault_panel().heal();
        t.send(env(0, b"whole"));
        let got = rx.recv_timeout(Duration::from_secs(2)).expect("healed");
        assert_eq!(&got.frame[..], b"whole");
    }

    #[test]
    fn injected_total_loss_drops_everything_until_cleared() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(vec![tx], NetOptions::instant());
        t.fault_panel().set_loss(1.0);
        for _ in 0..10 {
            t.send(env(0, b"y"));
        }
        assert!(rx.try_recv().is_err());
        t.fault_panel().set_loss(0.0);
        t.send(env(0, b"z"));
        assert!(rx.try_recv().is_ok());
    }

    #[test]
    fn ordering_preserved_with_constant_delay() {
        let (tx, rx) = unbounded();
        let t = ChannelTransport::new(
            vec![tx],
            NetOptions::delayed(Duration::from_millis(5), Duration::ZERO),
        );
        for i in 0..20u8 {
            t.send(env(0, &[i]));
        }
        let mut got = Vec::new();
        for _ in 0..20 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap().frame[0]);
        }
        let want: Vec<u8> = (0..20).collect();
        assert_eq!(got, want);
    }
}
