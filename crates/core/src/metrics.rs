//! Shared runtime metrics, mirroring the simulator's counters.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Cluster-wide counters, shared by all node threads.
#[derive(Debug, Default)]
pub struct ClusterMetrics {
    messages_total: AtomicU64,
    cs_completed: AtomicU64,
    by_kind: Mutex<BTreeMap<&'static str, u64>>,
    notes: Mutex<BTreeMap<&'static str, u64>>,
}

impl ClusterMetrics {
    /// A fresh zeroed metrics sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub(crate) fn message(&self, kind: &'static str) {
        self.messages_total.fetch_add(1, Ordering::Relaxed);
        *self.by_kind.lock().entry(kind).or_insert(0) += 1;
    }

    pub(crate) fn note(&self, label: &'static str) {
        *self.notes.lock().entry(label).or_insert(0) += 1;
    }

    pub(crate) fn cs_completed(&self) {
        self.cs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Total messages transmitted so far.
    pub fn messages_total(&self) -> u64 {
        self.messages_total.load(Ordering::Relaxed)
    }

    /// Total critical sections completed so far.
    pub fn cs_completed_total(&self) -> u64 {
        self.cs_completed.load(Ordering::Relaxed)
    }

    /// Average messages per completed critical section (NaN before the
    /// first completion).
    pub fn messages_per_cs(&self) -> f64 {
        let cs = self.cs_completed_total();
        if cs == 0 {
            return f64::NAN;
        }
        self.messages_total() as f64 / cs as f64
    }

    /// Snapshot of per-kind message counts.
    pub fn by_kind(&self) -> BTreeMap<String, u64> {
        self.by_kind
            .lock()
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect()
    }

    /// Snapshot of protocol note counts.
    pub fn notes(&self) -> BTreeMap<String, u64> {
        self.notes
            .lock()
            .iter()
            .map(|(k, v)| ((*k).to_owned(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ClusterMetrics::new();
        m.message("REQUEST");
        m.message("REQUEST");
        m.message("PRIVILEGE");
        m.note("qlist_sealed");
        m.cs_completed();
        assert_eq!(m.messages_total(), 3);
        assert_eq!(m.cs_completed_total(), 1);
        assert_eq!(m.messages_per_cs(), 3.0);
        assert_eq!(m.by_kind()["REQUEST"], 2);
        assert_eq!(m.notes()["qlist_sealed"], 1);
    }

    #[test]
    fn empty_ratio_is_nan() {
        let m = ClusterMetrics::new();
        assert!(m.messages_per_cs().is_nan());
    }
}
