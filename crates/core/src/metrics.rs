//! Shared runtime metrics, mirroring the simulator's counters.
//!
//! Backed by the [`tokq_obs`] metrics registry: every counter is a
//! dedicated atomic found through a read-locked handle lookup, so node
//! threads never serialize on a shared map mutex the way the original
//! `Mutex<BTreeMap>` implementation did. The public snapshot API is
//! unchanged; the richer registry view (histograms, labelled counters) is
//! reachable through [`ClusterMetrics::obs`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tokq_obs::{Counter, Gauge, Histogram, HistogramSummary, Obs, Source};

use crate::service::ShardId;

/// Counter namespace for per-kind transmitted messages.
pub(crate) const MSG_SENT: &str = "msg_sent";
/// Counter namespace for protocol notes.
pub(crate) const NOTE: &str = "note";

/// Per-shard snapshot labels; clusters with more than 16 shards lump the
/// tail into one `"overflow"` label rather than allocate.
const SHARD_LABELS: [&str; 16] = [
    "0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11", "12", "13", "14", "15",
];

fn shard_label(shard: ShardId) -> &'static str {
    SHARD_LABELS
        .get(shard.index())
        .copied()
        .unwrap_or("overflow")
}

/// Fixed per-shard counter slots: shards 0..16 each get their own atomic
/// and the tail shares the final overflow slot. Incrementing is a single
/// indexed atomic add — these sit on the per-message hot path, where a
/// registry lookup (read-lock + map probe) per frame is measurable drag.
#[derive(Debug, Default)]
struct ShardCounters([AtomicU64; SHARD_LABELS.len() + 1]);

impl ShardCounters {
    fn slot(shard: ShardId) -> usize {
        shard.index().min(SHARD_LABELS.len())
    }

    fn inc(&self, shard: ShardId) {
        self.0[Self::slot(shard)].fetch_add(1, Ordering::Relaxed);
    }

    fn get(&self, shard: ShardId) -> u64 {
        self.0[Self::slot(shard)].load(Ordering::Relaxed)
    }

    /// Snapshot of the non-zero slots, keyed by shard label.
    fn snapshot(&self) -> BTreeMap<String, u64> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, v)| {
                let v = v.load(Ordering::Relaxed);
                (v > 0).then(|| (shard_label(ShardId(i as u16)).to_owned(), v))
            })
            .collect()
    }
}

/// Cluster-wide counters, shared by all node threads.
#[derive(Debug)]
pub struct ClusterMetrics {
    obs: Obs,
    messages_total: Counter,
    cs_completed: Counter,
    cs_requests: Counter,
    cs_rerequests: Counter,
    // Transport-churn counters. The registry interns counters by name, so
    // these are the same atomics the TCP sender increments.
    tcp_reconnects: Counter,
    tcp_frames_requeued: Counter,
    tcp_frames_abandoned: Counter,
    // Send-pipeline instrumentation, shared with the TCP writer threads
    // through the same interning.
    tcp_outbox_depth: Gauge,
    tcp_frames_per_flush: Histogram,
    send_enqueue_ns: Histogram,
    shard_msgs: ShardCounters,
    shard_cs: ShardCounters,
}

impl Default for ClusterMetrics {
    fn default() -> Self {
        Self::on(Obs::from_env(Source::Runtime))
    }
}

impl ClusterMetrics {
    /// A fresh metrics sink on its own `TOKQ_TRACE`-filtered [`Obs`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A metrics sink recording into an existing observability handle.
    pub fn with_obs(obs: Obs) -> Arc<Self> {
        Arc::new(Self::on(obs))
    }

    fn on(obs: Obs) -> Self {
        let messages_total = obs.registry().counter("messages_total");
        let cs_completed = obs.registry().counter("cs_completed");
        let cs_requests = obs.registry().counter("cs_requests");
        let cs_rerequests = obs.registry().counter("cs_rerequests");
        let tcp_reconnects = obs.registry().counter("tcp_reconnects");
        let tcp_frames_requeued = obs.registry().counter("tcp_frames_requeued");
        let tcp_frames_abandoned = obs.registry().counter("tcp_frames_abandoned");
        let tcp_outbox_depth = obs.registry().gauge("tcp_outbox_depth");
        let tcp_frames_per_flush = obs.registry().histogram("tcp_frames_per_flush");
        let send_enqueue_ns = obs.registry().histogram("send_enqueue_ns");
        ClusterMetrics {
            obs,
            messages_total,
            cs_completed,
            cs_requests,
            cs_rerequests,
            tcp_reconnects,
            tcp_frames_requeued,
            tcp_frames_abandoned,
            tcp_outbox_depth,
            tcp_frames_per_flush,
            send_enqueue_ns,
            shard_msgs: ShardCounters::default(),
            shard_cs: ShardCounters::default(),
        }
    }

    /// The observability handle these metrics record into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub(crate) fn message(&self, shard: ShardId, kind: &'static str) {
        self.messages_total.inc();
        self.obs.registry().counter_with(MSG_SENT, kind).inc();
        self.shard_msgs.inc(shard);
    }

    pub(crate) fn note(&self, label: &'static str) {
        self.obs.registry().counter_with(NOTE, label).inc();
    }

    pub(crate) fn cs_completed(&self, shard: ShardId) {
        self.cs_completed.inc();
        self.shard_cs.inc(shard);
    }

    pub(crate) fn cs_requested(&self, _shard: ShardId) {
        self.cs_requests.inc();
    }

    pub(crate) fn cs_rerequested(&self, _shard: ShardId) {
        self.cs_rerequests.inc();
    }

    /// Total messages transmitted so far.
    pub fn messages_total(&self) -> u64 {
        self.messages_total.get()
    }

    /// Total critical sections completed so far.
    pub fn cs_completed_total(&self) -> u64 {
        self.cs_completed.get()
    }

    /// Fresh application lock requests submitted so far (one per
    /// [`crate::MutexHandle::try_lock_for`]/[`crate::MutexHandle::lock`]
    /// that reached its node).
    pub fn cs_requests_total(&self) -> u64 {
        self.cs_requests.get()
    }

    /// Recovery-era re-requests: lock requests re-issued on behalf of
    /// waiters that survived a node crash. Counted separately so recovery
    /// traffic is not conflated with fresh demand.
    pub fn cs_rerequests_total(&self) -> u64 {
        self.cs_rerequests.get()
    }

    /// TCP reconnects: connection establishments after a previous failure
    /// or disconnect (zero on the channel transport).
    pub fn reconnects(&self) -> u64 {
        self.tcp_reconnects.get()
    }

    /// Frames parked in a TCP retry queue after a send failure or a
    /// blocked link; they redeliver when the peer heals.
    pub fn frames_requeued(&self) -> u64 {
        self.tcp_frames_requeued.get()
    }

    /// Frames dropped because a TCP retry queue overflowed its bound.
    pub fn frames_abandoned(&self) -> u64 {
        self.tcp_frames_abandoned.get()
    }

    /// Frames currently sitting in TCP per-peer outboxes (enqueued by the
    /// protocol threads, not yet written or dropped by a writer thread).
    /// Zero on the channel transport and on an idle, healthy mesh.
    pub fn outbox_depth(&self) -> i64 {
        self.tcp_outbox_depth.get()
    }

    /// Distribution of frames coalesced into each TCP batch write. Means
    /// near 1 say the writers keep up frame-by-frame; larger values mean
    /// bursts (or recovering backlogs) are being collapsed into single
    /// syscalls.
    pub fn frames_per_flush(&self) -> HistogramSummary {
        self.tcp_frames_per_flush.summary()
    }

    /// Distribution of nanoseconds a protocol thread spends inside
    /// [`crate::transport::Wire::send`] on the TCP transport — the
    /// enqueue-only hot path. This is the number the off-thread writer
    /// pipeline exists to keep flat: it must not grow when a peer dies.
    pub fn send_enqueue_ns(&self) -> HistogramSummary {
        self.send_enqueue_ns.summary()
    }

    /// Average messages per completed critical section (NaN before the
    /// first completion).
    pub fn messages_per_cs(&self) -> f64 {
        let cs = self.cs_completed_total();
        if cs == 0 {
            return f64::NAN;
        }
        self.messages_total() as f64 / cs as f64
    }

    /// Snapshot of per-kind message counts.
    pub fn by_kind(&self) -> BTreeMap<String, u64> {
        self.namespace(MSG_SENT)
    }

    /// Snapshot of protocol note counts.
    pub fn notes(&self) -> BTreeMap<String, u64> {
        self.namespace(NOTE)
    }

    /// Critical sections completed so far on one shard.
    pub fn cs_completed_on(&self, shard: ShardId) -> u64 {
        self.shard_cs.get(shard)
    }

    /// Snapshot of per-shard transmitted message counts, keyed by shard
    /// label (`"0"`, `"1"`, ..., `"overflow"` past shard 15). Only shards
    /// that saw traffic appear.
    pub fn messages_by_shard(&self) -> BTreeMap<String, u64> {
        self.shard_msgs.snapshot()
    }

    /// Snapshot of per-shard completed critical sections, keyed like
    /// [`ClusterMetrics::messages_by_shard`].
    pub fn cs_completed_by_shard(&self) -> BTreeMap<String, u64> {
        self.shard_cs.snapshot()
    }

    fn namespace(&self, ns: &str) -> BTreeMap<String, u64> {
        let prefix = format!("{ns}/");
        self.obs
            .registry()
            .snapshot()
            .counters
            .into_iter()
            .filter_map(|(name, v)| name.strip_prefix(&prefix).map(|kind| (kind.to_owned(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ClusterMetrics::new();
        m.message(ShardId(0), "REQUEST");
        m.message(ShardId(0), "REQUEST");
        m.message(ShardId(1), "PRIVILEGE");
        m.note("qlist_sealed");
        m.cs_completed(ShardId(1));
        assert_eq!(m.messages_total(), 3);
        assert_eq!(m.cs_completed_total(), 1);
        assert_eq!(m.messages_per_cs(), 3.0);
        assert_eq!(m.by_kind()["REQUEST"], 2);
        assert_eq!(m.notes()["qlist_sealed"], 1);
        assert_eq!(m.messages_by_shard()["0"], 2);
        assert_eq!(m.messages_by_shard()["1"], 1);
        assert_eq!(m.cs_completed_on(ShardId(1)), 1);
        assert_eq!(m.cs_completed_on(ShardId(0)), 0);
        assert_eq!(m.cs_completed_by_shard()["1"], 1);
    }

    #[test]
    fn shard_labels_cover_overflow() {
        assert_eq!(shard_label(ShardId(15)), "15");
        assert_eq!(shard_label(ShardId(16)), "overflow");
        assert_eq!(shard_label(ShardId(u16::MAX)), "overflow");
    }

    #[test]
    fn empty_ratio_is_nan() {
        let m = ClusterMetrics::new();
        assert!(m.messages_per_cs().is_nan());
    }

    #[test]
    fn pipeline_metrics_share_registry_atomics() {
        let obs = Obs::disabled(Source::Runtime);
        let m = ClusterMetrics::with_obs(obs.clone());
        obs.registry().gauge("tcp_outbox_depth").add(3);
        obs.registry().histogram("tcp_frames_per_flush").record(4);
        obs.registry().histogram("send_enqueue_ns").record(250);
        assert_eq!(m.outbox_depth(), 3);
        assert_eq!(m.frames_per_flush().count, 1);
        assert_eq!(m.send_enqueue_ns().count, 1);
        assert_eq!(m.send_enqueue_ns().sum, 250);
    }

    #[test]
    fn registry_view_matches_snapshot_api() {
        let obs = Obs::disabled(Source::Runtime);
        let m = ClusterMetrics::with_obs(obs);
        m.message(ShardId(0), "REQUEST");
        let snap = m.obs().registry().snapshot();
        assert_eq!(snap.counters["messages_total"], 1);
        assert_eq!(snap.counters["msg_sent/REQUEST"], 1);
        assert_eq!(m.by_kind()["REQUEST"], 1);
    }
}
