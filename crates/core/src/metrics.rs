//! Shared runtime metrics, mirroring the simulator's counters.
//!
//! Backed by the [`tokq_obs`] metrics registry: every counter is a
//! dedicated atomic found through a read-locked handle lookup, so node
//! threads never serialize on a shared map mutex the way the original
//! `Mutex<BTreeMap>` implementation did. The public snapshot API is
//! unchanged; the richer registry view (histograms, labelled counters) is
//! reachable through [`ClusterMetrics::obs`].

use std::collections::BTreeMap;
use std::sync::Arc;

use tokq_obs::{Counter, Obs, Source};

/// Counter namespace for per-kind transmitted messages.
pub(crate) const MSG_SENT: &str = "msg_sent";
/// Counter namespace for protocol notes.
pub(crate) const NOTE: &str = "note";

/// Cluster-wide counters, shared by all node threads.
#[derive(Debug)]
pub struct ClusterMetrics {
    obs: Obs,
    messages_total: Counter,
    cs_completed: Counter,
    cs_requests: Counter,
    cs_rerequests: Counter,
    // Transport-churn counters. The registry interns counters by name, so
    // these are the same atomics the TCP sender increments.
    tcp_reconnects: Counter,
    tcp_frames_requeued: Counter,
    tcp_frames_abandoned: Counter,
}

impl Default for ClusterMetrics {
    fn default() -> Self {
        Self::on(Obs::from_env(Source::Runtime))
    }
}

impl ClusterMetrics {
    /// A fresh metrics sink on its own `TOKQ_TRACE`-filtered [`Obs`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// A metrics sink recording into an existing observability handle.
    pub fn with_obs(obs: Obs) -> Arc<Self> {
        Arc::new(Self::on(obs))
    }

    fn on(obs: Obs) -> Self {
        let messages_total = obs.registry().counter("messages_total");
        let cs_completed = obs.registry().counter("cs_completed");
        let cs_requests = obs.registry().counter("cs_requests");
        let cs_rerequests = obs.registry().counter("cs_rerequests");
        let tcp_reconnects = obs.registry().counter("tcp_reconnects");
        let tcp_frames_requeued = obs.registry().counter("tcp_frames_requeued");
        let tcp_frames_abandoned = obs.registry().counter("tcp_frames_abandoned");
        ClusterMetrics {
            obs,
            messages_total,
            cs_completed,
            cs_requests,
            cs_rerequests,
            tcp_reconnects,
            tcp_frames_requeued,
            tcp_frames_abandoned,
        }
    }

    /// The observability handle these metrics record into.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    pub(crate) fn message(&self, kind: &'static str) {
        self.messages_total.inc();
        self.obs.registry().counter_with(MSG_SENT, kind).inc();
    }

    pub(crate) fn note(&self, label: &'static str) {
        self.obs.registry().counter_with(NOTE, label).inc();
    }

    pub(crate) fn cs_completed(&self) {
        self.cs_completed.inc();
    }

    pub(crate) fn cs_requested(&self) {
        self.cs_requests.inc();
    }

    pub(crate) fn cs_rerequested(&self) {
        self.cs_rerequests.inc();
    }

    /// Total messages transmitted so far.
    pub fn messages_total(&self) -> u64 {
        self.messages_total.get()
    }

    /// Total critical sections completed so far.
    pub fn cs_completed_total(&self) -> u64 {
        self.cs_completed.get()
    }

    /// Fresh application lock requests submitted so far (one per
    /// [`crate::MutexHandle::try_lock_for`]/[`crate::MutexHandle::lock`]
    /// that reached its node).
    pub fn cs_requests_total(&self) -> u64 {
        self.cs_requests.get()
    }

    /// Recovery-era re-requests: lock requests re-issued on behalf of
    /// waiters that survived a node crash. Counted separately so recovery
    /// traffic is not conflated with fresh demand.
    pub fn cs_rerequests_total(&self) -> u64 {
        self.cs_rerequests.get()
    }

    /// TCP reconnects: connection establishments after a previous failure
    /// or disconnect (zero on the channel transport).
    pub fn reconnects(&self) -> u64 {
        self.tcp_reconnects.get()
    }

    /// Frames parked in a TCP retry queue after a send failure or a
    /// blocked link; they redeliver when the peer heals.
    pub fn frames_requeued(&self) -> u64 {
        self.tcp_frames_requeued.get()
    }

    /// Frames dropped because a TCP retry queue overflowed its bound.
    pub fn frames_abandoned(&self) -> u64 {
        self.tcp_frames_abandoned.get()
    }

    /// Average messages per completed critical section (NaN before the
    /// first completion).
    pub fn messages_per_cs(&self) -> f64 {
        let cs = self.cs_completed_total();
        if cs == 0 {
            return f64::NAN;
        }
        self.messages_total() as f64 / cs as f64
    }

    /// Snapshot of per-kind message counts.
    pub fn by_kind(&self) -> BTreeMap<String, u64> {
        self.namespace(MSG_SENT)
    }

    /// Snapshot of protocol note counts.
    pub fn notes(&self) -> BTreeMap<String, u64> {
        self.namespace(NOTE)
    }

    fn namespace(&self, ns: &str) -> BTreeMap<String, u64> {
        let prefix = format!("{ns}/");
        self.obs
            .registry()
            .snapshot()
            .counters
            .into_iter()
            .filter_map(|(name, v)| name.strip_prefix(&prefix).map(|kind| (kind.to_owned(), v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ClusterMetrics::new();
        m.message("REQUEST");
        m.message("REQUEST");
        m.message("PRIVILEGE");
        m.note("qlist_sealed");
        m.cs_completed();
        assert_eq!(m.messages_total(), 3);
        assert_eq!(m.cs_completed_total(), 1);
        assert_eq!(m.messages_per_cs(), 3.0);
        assert_eq!(m.by_kind()["REQUEST"], 2);
        assert_eq!(m.notes()["qlist_sealed"], 1);
    }

    #[test]
    fn empty_ratio_is_nan() {
        let m = ClusterMetrics::new();
        assert!(m.messages_per_cs().is_nan());
    }

    #[test]
    fn registry_view_matches_snapshot_api() {
        let obs = Obs::disabled(Source::Runtime);
        let m = ClusterMetrics::with_obs(obs);
        m.message("REQUEST");
        let snap = m.obs().registry().snapshot();
        assert_eq!(snap.counters["messages_total"], 1);
        assert_eq!(snap.counters["msg_sent/REQUEST"], 1);
        assert_eq!(m.by_kind()["REQUEST"], 1);
    }
}
