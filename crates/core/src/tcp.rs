//! TCP transport: the cluster's nodes exchange frames over real loopback
//! (or LAN) sockets instead of in-process channels.
//!
//! The framing is `[u32 len][u32 sender][payload]` (big-endian), with the
//! payload being the [`crate::wire`] encoding of the protocol message —
//! including its shard tag, so the frames of every shard of a sharded
//! cluster interleave on one socket per peer and the receiving node loop
//! routes each to its protocol instance.
//! Connections are opened lazily per destination. A failed send no longer
//! abandons the frame after one reconnect attempt: frames park in a
//! bounded per-peer retry queue and a background flusher redelivers them
//! under exponential backoff with jitter ([`BackoffPolicy`]), so a peer
//! restart or a healed partition drains the queue instead of silently
//! losing traffic. Only queue overflow abandons frames (oldest first,
//! counted in `tcp_frames_abandoned`) — sustained unreachability then
//! degrades to the lossy-network behaviour the fault-tolerant protocol
//! configuration already handles.
//!
//! Partitions come from the shared [`FaultPanel`]: a blocked link is
//! treated exactly like an unreachable peer, so its frames queue and
//! drain on heal. Injected panel loss, by contrast, drops frames outright
//! at send time (TCP cannot resurrect a frame the application never
//! wrote), mirroring the simulator's loss semantics.

use std::collections::VecDeque;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tokq_obs::{Counter, Obs, Source};
use tokq_protocol::types::NodeId;

use crate::fault::FaultPanel;
use crate::node::NodeEvent;
use crate::transport::{Envelope, Wire};

/// Maximum accepted frame payload (a PRIVILEGE for thousands of nodes is
/// far below this; anything bigger is corruption).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Reconnect/backoff behaviour of a [`TcpSender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry after a send failure.
    pub base: Duration,
    /// Upper bound on the backoff delay.
    pub max: Duration,
    /// Uniform jitter added to each delay, as a fraction of the delay
    /// (`0.5` adds up to +50%). Decorrelates reconnect storms when many
    /// peers fail at once.
    pub jitter: f64,
    /// Per-peer retry queue bound; overflow drops the oldest frame.
    pub queue_cap: usize,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            max: Duration::from_secs(1),
            jitter: 0.5,
            queue_cap: 512,
        }
    }
}

impl BackoffPolicy {
    /// The delay following `current` in the exponential schedule.
    fn next_delay(&self, current: Duration) -> Duration {
        if current.is_zero() {
            self.base
        } else {
            (current * 2).min(self.max)
        }
    }
}

/// Per-peer connection and retry state.
struct Peer {
    conn: Option<TcpStream>,
    queue: VecDeque<Envelope>,
    /// Current backoff delay; zero while the link is healthy.
    delay: Duration,
    /// Earliest instant the flusher may retry this peer.
    next_attempt: Instant,
    /// Whether a connection was ever established (distinguishes
    /// reconnects from first connects).
    ever_connected: bool,
}

impl Peer {
    fn new() -> Self {
        Peer {
            conn: None,
            queue: VecDeque::new(),
            delay: Duration::ZERO,
            next_attempt: Instant::now(),
            ever_connected: false,
        }
    }
}

struct SenderInner {
    addrs: Vec<SocketAddr>,
    peers: Vec<Mutex<Peer>>,
    policy: BackoffPolicy,
    connect_timeout: Duration,
    panel: FaultPanel,
    stop: AtomicBool,
    /// SplitMix64 state for backoff jitter.
    rng: AtomicU64,
    /// Successful outbound connection establishments (incl. reconnects).
    connects: Counter,
    /// Connection establishments after a previous failure or disconnect.
    reconnects: Counter,
    /// Frames parked in a retry queue after a send failure or a blocked
    /// link.
    frames_requeued: Counter,
    /// Frames dropped because a retry queue overflowed its bound.
    frames_abandoned: Counter,
}

impl SenderInner {
    fn jittered(&self, delay: Duration) -> Duration {
        if self.policy.jitter <= 0.0 {
            return delay;
        }
        let state = self
            .rng
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        delay + delay.mul_f64(self.policy.jitter * unit)
    }

    /// Parks `env` in `peer`'s retry queue, dropping the oldest frame if
    /// the queue is at its bound.
    fn park(&self, peer: &mut Peer, env: Envelope) {
        if peer.queue.len() >= self.policy.queue_cap {
            peer.queue.pop_front();
            self.frames_abandoned.inc();
        }
        peer.queue.push_back(env);
        self.frames_requeued.inc();
    }

    /// Schedules the next retry for `peer` one backoff step out.
    fn back_off(&self, peer: &mut Peer) {
        peer.delay = self.policy.next_delay(peer.delay);
        peer.next_attempt = Instant::now() + self.jittered(peer.delay);
    }

    /// Connects (if needed) and writes one frame on `peer`'s stream.
    fn write_frame(&self, idx: usize, peer: &mut Peer, env: &Envelope) -> std::io::Result<()> {
        if peer.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addrs[idx], self.connect_timeout)?;
            stream.set_nodelay(true)?;
            self.connects.inc();
            if peer.ever_connected {
                self.reconnects.inc();
            }
            peer.ever_connected = true;
            peer.conn = Some(stream);
        }
        let stream = peer.conn.as_mut().expect("just connected");
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(env.frame.len() as u32).to_be_bytes());
        header[4..].copy_from_slice(&env.from.0.to_be_bytes());
        let result = stream
            .write_all(&header)
            .and_then(|()| stream.write_all(&env.frame));
        if result.is_err() {
            peer.conn = None; // reconnect on the next attempt
        }
        result
    }

    /// One write attempt with a single immediate reconnect when the
    /// failure was on a pre-existing (possibly stale) connection.
    fn send_now(&self, idx: usize, peer: &mut Peer, env: &Envelope) -> std::io::Result<()> {
        let had_conn = peer.conn.is_some();
        match self.write_frame(idx, peer, env) {
            Ok(()) => {
                peer.delay = Duration::ZERO;
                Ok(())
            }
            Err(e) if had_conn => match self.write_frame(idx, peer, env) {
                Ok(()) => {
                    peer.delay = Duration::ZERO;
                    Ok(())
                }
                Err(_) => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Attempts to drain `peer`'s retry queue, preserving frame order.
    /// Frames whose link is still blocked are kept; an I/O failure backs
    /// the peer off and keeps the unsent tail.
    fn drain_peer(&self, idx: usize) {
        let mut peer = self.peers[idx].lock();
        if peer.queue.is_empty() || Instant::now() < peer.next_attempt {
            return;
        }
        let mut held: VecDeque<Envelope> = VecDeque::new();
        let mut failed = false;
        while let Some(env) = peer.queue.pop_front() {
            if self.panel.is_blocked(env.from.index(), env.to.index()) {
                held.push_back(env);
                continue;
            }
            if self.send_now(idx, &mut peer, &env).is_err() {
                held.push_back(env);
                failed = true;
                break;
            }
        }
        if failed {
            self.back_off(&mut peer);
        }
        // Reassemble: held frames preceded the unpopped tail, so order is
        // preserved per link.
        while let Some(env) = peer.queue.pop_front() {
            held.push_back(env);
        }
        peer.queue = held;
    }

    fn pending_frames(&self) -> usize {
        self.peers.iter().map(|p| p.lock().queue.len()).sum()
    }
}

/// The sending half: lazily-connected streams to every peer, with
/// backoff-governed retry queues behind a background flusher.
pub struct TcpSender {
    inner: Arc<SenderInner>,
    kick: Sender<()>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("peers", &self.inner.addrs.len())
            .field("pending_frames", &self.inner.pending_frames())
            .finish()
    }
}

impl TcpSender {
    /// A sender that can reach every address in `addrs` (indexed by node).
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        Self::with_obs(addrs, &Obs::disabled(Source::Runtime))
    }

    /// Like [`TcpSender::new`], recording connection churn counters
    /// (`tcp_connects`, `tcp_reconnects`, `tcp_frames_requeued`,
    /// `tcp_frames_abandoned`) into `obs`.
    pub fn with_obs(addrs: Vec<SocketAddr>, obs: &Obs) -> Self {
        let panel = FaultPanel::new(addrs.len(), obs);
        Self::with_panel(addrs, obs, panel, BackoffPolicy::default())
    }

    /// Full-control constructor: an external [`FaultPanel`] (shared with
    /// the fault-injecting side) and an explicit [`BackoffPolicy`].
    pub fn with_panel(
        addrs: Vec<SocketAddr>,
        obs: &Obs,
        panel: FaultPanel,
        policy: BackoffPolicy,
    ) -> Self {
        let peers = (0..addrs.len()).map(|_| Mutex::new(Peer::new())).collect();
        let inner = Arc::new(SenderInner {
            addrs,
            peers,
            policy,
            connect_timeout: Duration::from_millis(500),
            panel,
            stop: AtomicBool::new(false),
            rng: AtomicU64::new(0x7C9A_B0FF),
            connects: obs.registry().counter("tcp_connects"),
            reconnects: obs.registry().counter("tcp_reconnects"),
            frames_requeued: obs.registry().counter("tcp_frames_requeued"),
            frames_abandoned: obs.registry().counter("tcp_frames_abandoned"),
        });
        let (kick, kick_rx) = unbounded::<()>();
        let flusher_inner = Arc::clone(&inner);
        let flusher = std::thread::Builder::new()
            .name("tokq-tcp-flush".into())
            .spawn(move || flush_loop(flusher_inner, kick_rx))
            .expect("spawn tcp flusher thread");
        TcpSender {
            inner,
            kick,
            flusher: Mutex::new(Some(flusher)),
        }
    }

    /// The fault panel this sender consults on every frame.
    pub fn fault_panel(&self) -> &FaultPanel {
        &self.inner.panel
    }

    /// Frames currently parked in retry queues across all peers.
    pub fn pending_frames(&self) -> usize {
        self.inner.pending_frames()
    }

    fn kick_flusher(&self) {
        let _ = self.kick.send(());
    }

    /// Stops the flusher thread; queued frames are dropped. Called
    /// automatically on drop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.kick_flusher();
        if let Some(t) = self.flusher.lock().take() {
            let _ = t.join();
        }
    }
}

impl Wire for TcpSender {
    fn send(&self, env: Envelope) {
        let idx = env.to.index();
        if idx >= self.inner.addrs.len() {
            return; // no such peer: drop, like the channel transport
        }
        // Injected loss is evaluated at send time, like the simulator's
        // network model: a dropped frame is gone (TCP cannot resurrect a
        // frame the application never wrote).
        if self.inner.panel.rolls_loss_drop() {
            return;
        }
        let mut peer = self.inner.peers[idx].lock();
        let blocked = self
            .inner
            .panel
            .is_blocked(env.from.index(), env.to.index());
        // Preserve order: anything queued must go out before this frame,
        // and a backoff window means the link is known-bad right now.
        if blocked || !peer.queue.is_empty() || Instant::now() < peer.next_attempt {
            self.inner.park(&mut peer, env);
            drop(peer);
            self.kick_flusher();
            return;
        }
        if self.inner.send_now(idx, &mut peer, &env).is_err() {
            self.inner.park(&mut peer, env);
            self.inner.back_off(&mut peer);
            drop(peer);
            self.kick_flusher();
        }
    }
}

impl Drop for TcpSender {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Background redelivery: wakes on a kick (new parked frame) or on a
/// short tick while queues are non-empty, and retries every peer whose
/// backoff window has elapsed.
fn flush_loop(inner: Arc<SenderInner>, kick: Receiver<()>) {
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        for idx in 0..inner.peers.len() {
            inner.drain_peer(idx);
        }
        let wait = if inner.pending_frames() > 0 {
            // Re-check soon: a blocked link can heal at any moment and
            // backoff windows are in the tens of milliseconds.
            Duration::from_millis(10)
        } else {
            Duration::from_millis(250)
        };
        match kick.recv_timeout(wait) {
            Ok(()) => {
                // Coalesce a kick storm into one drain pass.
                while kick.try_recv().is_ok() {}
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The receiving half: accepts connections and pumps decoded frames into a
/// node's event inbox.
#[derive(Debug)]
pub struct TcpReceiver {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpReceiver {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting; every received frame becomes a [`NodeEvent::Wire`] on
    /// `inbox`.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub(crate) fn bind(addr: SocketAddr, inbox: Sender<NodeEvent>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("tokq-tcp-accept".into())
            .spawn(move || accept_loop(listener, inbox, stop2))?;
        Ok(TcpReceiver {
            local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting and joins the accept thread. Reader threads for
    /// established connections exit when their peers disconnect.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpReceiver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inbox: Sender<NodeEvent>, stop: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let inbox = inbox.clone();
                let _ = std::thread::Builder::new()
                    .name("tokq-tcp-read".into())
                    .spawn(move || read_loop(stream, inbox));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn read_loop(mut stream: TcpStream, inbox: Sender<NodeEvent>) {
    let mut header = [0u8; 8];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
        let from = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return; // corrupt stream: drop the connection
        }
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        if inbox
            .send(NodeEvent::Wire {
                from: NodeId(from),
                frame: Bytes::from(payload),
            })
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    fn env_to0(from: u32, payload: &[u8]) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(0),
            frame: Bytes::copy_from_slice(payload),
        }
    }

    fn recv_frame(rx: &crossbeam::channel::Receiver<NodeEvent>, timeout: Duration) -> Bytes {
        match rx.recv_timeout(timeout).expect("frame") {
            NodeEvent::Wire { frame, .. } => frame,
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn frame_roundtrips_over_loopback() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let sender = TcpSender::new(vec![recv.local_addr()]);
        sender.send(Envelope {
            from: NodeId(7),
            to: NodeId(0),
            frame: Bytes::from_static(b"hello tcp"),
        });
        let ev = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        match ev {
            NodeEvent::Wire { from, frame } => {
                assert_eq!(from, NodeId(7));
                assert_eq!(&frame[..], b"hello tcp");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn many_frames_keep_order_per_connection() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let sender = TcpSender::new(vec![recv.local_addr()]);
        for i in 0..100u8 {
            sender.send(env_to0(1, &[i]));
        }
        for i in 0..100u8 {
            assert_eq!(recv_frame(&rx, Duration::from_secs(5))[0], i);
        }
    }

    #[test]
    fn send_to_dead_peer_queues_without_blocking() {
        // Bind and immediately shut down to get a dead address.
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let addr = recv.local_addr();
        recv.shutdown();
        drop(recv);
        let sender = TcpSender::new(vec![addr]);
        // Must not panic or hang; the frame parks for retry.
        sender.send(env_to0(0, b"x"));
        assert_eq!(sender.pending_frames(), 1);
    }

    #[test]
    fn queue_overflow_abandons_oldest() {
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let addr = recv.local_addr();
        recv.shutdown();
        drop(recv);
        let obs = Obs::disabled(Source::Runtime);
        let policy = BackoffPolicy {
            queue_cap: 4,
            ..BackoffPolicy::default()
        };
        let sender = TcpSender::with_panel(vec![addr], &obs, FaultPanel::detached(1), policy);
        for i in 0..10u8 {
            sender.send(env_to0(0, &[i]));
        }
        assert!(sender.pending_frames() <= 4);
        assert!(obs.registry().snapshot().counters["tcp_frames_abandoned"] >= 6);
    }

    #[test]
    fn peer_reset_triggers_reconnect_and_redelivery() {
        // Raw listener so the test controls the server side of the
        // connection: accepting and dropping with data unread sends an
        // RST, deterministically killing the sender's cached stream.
        let obs = Obs::disabled(Source::Runtime);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sender = TcpSender::with_panel(
            vec![addr],
            &obs,
            FaultPanel::detached(1),
            BackoffPolicy {
                base: Duration::from_millis(5),
                ..BackoffPolicy::default()
            },
        );
        sender.send(env_to0(0, b"doomed"));
        let (first_conn, _) = listener.accept().expect("accept");
        drop(first_conn); // unread data → RST
        std::thread::sleep(Duration::from_millis(50));
        // The cached stream is now dead. A write into it can still land in
        // the kernel buffer if the RST races us (that frame is lost — TCP
        // semantics), so send a sacrificial probe first; the failing write
        // forces a reconnect and every later frame arrives on the fresh
        // connection.
        sender.send(env_to0(0, b"probe"));
        sender.send(env_to0(0, b"after reset"));
        let (mut conn, _) = listener.accept().expect("re-accept");
        let mut seen = Vec::new();
        loop {
            let mut header = [0u8; 8];
            conn.read_exact(&mut header).expect("header");
            let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let mut payload = vec![0u8; len];
            conn.read_exact(&mut payload).expect("payload");
            if payload == b"after reset" {
                break;
            }
            seen.push(payload);
            assert!(seen.len() < 3, "unexpected frames before redelivery");
        }
        let counters = obs.registry().snapshot().counters;
        assert!(counters["tcp_reconnects"] >= 1, "{counters:?}");
        assert_eq!(counters["tcp_connects"], 2, "{counters:?}");
    }

    #[test]
    fn blocked_link_parks_frames_and_heals_in_order() {
        let obs = Obs::disabled(Source::Runtime);
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let panel = FaultPanel::detached(2);
        let sender = TcpSender::with_panel(
            vec![recv.local_addr(), recv.local_addr()],
            &obs,
            panel.clone(),
            BackoffPolicy::default(),
        );
        panel.block(1, 0);
        for i in 0..5u8 {
            sender.send(env_to0(1, &[i]));
        }
        assert!(rx.recv_timeout(Duration::from_millis(80)).is_err());
        assert_eq!(sender.pending_frames(), 5);
        panel.heal();
        for i in 0..5u8 {
            assert_eq!(recv_frame(&rx, Duration::from_secs(5))[0], i);
        }
        assert_eq!(sender.pending_frames(), 0);
        assert_eq!(obs.registry().snapshot().counters["tcp_frames_requeued"], 5);
    }

    #[test]
    fn oversized_frame_drops_connection_not_process() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        // Hand-craft a corrupt header claiming a gigantic frame.
        let mut s = TcpStream::connect(recv.local_addr()).expect("connect");
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        s.write_all(&header).expect("write");
        // The reader must simply drop the connection; nothing delivered.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
    }
}
