//! TCP transport: the cluster's nodes exchange frames over real loopback
//! (or LAN) sockets instead of in-process channels.
//!
//! The framing is `[u32 len][u32 sender][payload]` (big-endian), with the
//! payload being the [`crate::wire`] encoding of the protocol message.
//! Connections are opened lazily per destination and dropped on any I/O
//! error — a lost frame is equivalent to a lossy network, which the
//! fault-tolerant protocol configuration already handles.

use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use tokq_obs::{Counter, Obs, Source};
use tokq_protocol::types::NodeId;

use crate::node::NodeEvent;
use crate::transport::{Envelope, Wire};

/// Maximum accepted frame payload (a PRIVILEGE for thousands of nodes is
/// far below this; anything bigger is corruption).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// The sending half: lazily-connected streams to every peer.
pub struct TcpSender {
    addrs: Vec<SocketAddr>,
    conns: Vec<Mutex<Option<TcpStream>>>,
    connect_timeout: Duration,
    /// Successful outbound connection establishments (incl. reconnects).
    connects: Counter,
    /// Frames abandoned after the reconnect attempt also failed.
    send_lost: Counter,
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("peers", &self.addrs.len())
            .finish()
    }
}

impl TcpSender {
    /// A sender that can reach every address in `addrs` (indexed by node).
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        Self::with_obs(addrs, &Obs::disabled(Source::Runtime))
    }

    /// Like [`TcpSender::new`], recording connection churn counters
    /// (`tcp_connects`, `tcp_send_lost`) into `obs`.
    pub fn with_obs(addrs: Vec<SocketAddr>, obs: &Obs) -> Self {
        let conns = (0..addrs.len()).map(|_| Mutex::new(None)).collect();
        TcpSender {
            addrs,
            conns,
            connect_timeout: Duration::from_millis(500),
            connects: obs.registry().counter("tcp_connects"),
            send_lost: obs.registry().counter("tcp_send_lost"),
        }
    }

    fn try_send(&self, env: &Envelope) -> std::io::Result<()> {
        let idx = env.to.index();
        let addr = self.addrs[idx];
        let mut slot = self.conns[idx].lock();
        if slot.is_none() {
            let stream = TcpStream::connect_timeout(&addr, self.connect_timeout)?;
            stream.set_nodelay(true)?;
            self.connects.inc();
            *slot = Some(stream);
        }
        let stream = slot.as_mut().expect("just connected");
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&(env.frame.len() as u32).to_be_bytes());
        header[4..].copy_from_slice(&env.from.0.to_be_bytes());
        let result = stream
            .write_all(&header)
            .and_then(|()| stream.write_all(&env.frame));
        if result.is_err() {
            *slot = None; // reconnect next time
        }
        result
    }
}

impl Wire for TcpSender {
    fn send(&self, env: Envelope) {
        // Best-effort: one reconnect attempt, then treat as lost.
        if self.try_send(&env).is_err() && self.try_send(&env).is_err() {
            self.send_lost.inc();
        }
    }
}

/// The receiving half: accepts connections and pumps decoded frames into a
/// node's event inbox.
#[derive(Debug)]
pub struct TcpReceiver {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl TcpReceiver {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting; every received frame becomes a [`NodeEvent::Wire`] on
    /// `inbox`.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub(crate) fn bind(addr: SocketAddr, inbox: Sender<NodeEvent>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("tokq-tcp-accept".into())
            .spawn(move || accept_loop(listener, inbox, stop2))?;
        Ok(TcpReceiver {
            local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting and joins the accept thread. Reader threads for
    /// established connections exit when their peers disconnect.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpReceiver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, inbox: Sender<NodeEvent>, stop: Arc<AtomicBool>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                let inbox = inbox.clone();
                let _ = std::thread::Builder::new()
                    .name("tokq-tcp-read".into())
                    .spawn(move || read_loop(stream, inbox));
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn read_loop(mut stream: TcpStream, inbox: Sender<NodeEvent>) {
    let mut header = [0u8; 8];
    loop {
        if stream.read_exact(&mut header).is_err() {
            return;
        }
        let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
        let from = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return; // corrupt stream: drop the connection
        }
        let mut payload = vec![0u8; len as usize];
        if stream.read_exact(&mut payload).is_err() {
            return;
        }
        if inbox
            .send(NodeEvent::Wire {
                from: NodeId(from),
                frame: Bytes::from(payload),
            })
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    #[test]
    fn frame_roundtrips_over_loopback() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let sender = TcpSender::new(vec![recv.local_addr()]);
        sender.send(Envelope {
            from: NodeId(7),
            to: NodeId(0),
            frame: Bytes::from_static(b"hello tcp"),
        });
        let ev = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        match ev {
            NodeEvent::Wire { from, frame } => {
                assert_eq!(from, NodeId(7));
                assert_eq!(&frame[..], b"hello tcp");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn many_frames_keep_order_per_connection() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let sender = TcpSender::new(vec![recv.local_addr()]);
        for i in 0..100u8 {
            sender.send(Envelope {
                from: NodeId(1),
                to: NodeId(0),
                frame: Bytes::from(vec![i]),
            });
        }
        for i in 0..100u8 {
            match rx.recv_timeout(Duration::from_secs(5)).expect("frame") {
                NodeEvent::Wire { frame, .. } => assert_eq!(frame[0], i),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn send_to_dead_peer_is_best_effort() {
        // Bind and immediately shut down to get a dead address.
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let addr = recv.local_addr();
        recv.shutdown();
        drop(recv);
        let sender = TcpSender::new(vec![addr]);
        // Must not panic or hang.
        sender.send(Envelope {
            from: NodeId(0),
            to: NodeId(0),
            frame: Bytes::from_static(b"x"),
        });
    }

    #[test]
    fn oversized_frame_drops_connection_not_process() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        // Hand-craft a corrupt header claiming a gigantic frame.
        let mut s = TcpStream::connect(recv.local_addr()).expect("connect");
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        s.write_all(&header).expect("write");
        // The reader must simply drop the connection; nothing delivered.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
    }
}
