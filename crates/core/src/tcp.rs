//! TCP transport: the cluster's nodes exchange frames over real loopback
//! (or LAN) sockets instead of in-process channels.
//!
//! The framing is `[u32 len][u32 sender][payload]` (big-endian), with the
//! payload being the [`crate::wire`] encoding of the protocol message —
//! including its shard tag, so the frames of every shard of a sharded
//! cluster interleave on one socket per peer and the receiving node loop
//! routes each to its protocol instance.
//!
//! # Send pipeline
//!
//! The protocol thread never touches a socket. [`Wire::send`] only
//! enqueues the frame into a bounded per-peer outbox (drop-oldest on
//! overflow, counted in `tcp_frames_abandoned`) and kicks that peer's
//! dedicated writer thread. The writer owns the connection outright: it
//! connects lazily, coalesces everything queued into a single buffered
//! write per wakeup (one syscall for a batch of header+frame pairs
//! instead of two `write_all`s per frame), and on failure parks the
//! unsent tail and backs off exponentially with jitter
//! ([`BackoffPolicy`]). There is no timed polling: writers sleep on their
//! kick channel and wake on new frames, on the backoff deadline, or on a
//! fault-panel transition. A dead or slow peer therefore costs its own
//! writer thread some blocking time — never the protocol thread, and
//! never the other peers' links.
//!
//! Partitions come from the shared [`FaultPanel`], consulted by the
//! writer at flush time — the moment the frame would enter the network.
//! A blocked link holds its frames (and every later frame on the same
//! link, preserving per-link order) in the outbox; a heal wakes the
//! writer, which drains them in order. Injected panel loss, by contrast,
//! drops a frame outright, rolled exactly once per frame at its first
//! flush attempt (TCP cannot resurrect a frame the application never
//! wrote), mirroring the simulator's loss semantics. Only queue overflow
//! abandons frames (oldest first) — sustained unreachability then
//! degrades to the lossy-network behaviour the fault-tolerant protocol
//! configuration already handles.

use std::collections::VecDeque;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use tokq_obs::{Counter, Gauge, Histogram, Obs, Source};
use tokq_protocol::types::NodeId;

use crate::fault::FaultPanel;
use crate::node::NodeEvent;
use crate::transport::{Envelope, Wire};

/// Maximum accepted frame payload (a PRIVILEGE for thousands of nodes is
/// far below this; anything bigger is corruption).
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// How long reader threads wait on a quiet socket before re-checking the
/// receiver's stop flag; bounds how long `TcpReceiver::shutdown` blocks.
const READ_TICK: Duration = Duration::from_millis(100);

/// Cap on the accept-error backoff (EMFILE and friends must not spin the
/// accept thread at 100% CPU, but recovery should still be prompt).
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(100);

/// Upper bound on one blocking socket write; a peer that accepts the
/// connection but never drains is treated as failed (frames park and the
/// writer backs off) instead of pinning its writer thread forever.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(2);

/// Reconnect/backoff behaviour of a [`TcpSender`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffPolicy {
    /// Delay before the first retry after a send failure.
    pub base: Duration,
    /// Upper bound on the backoff delay.
    pub max: Duration,
    /// Uniform jitter added to each delay, as a fraction of the delay
    /// (`0.5` adds up to +50%). Decorrelates reconnect storms when many
    /// peers fail at once.
    pub jitter: f64,
    /// Per-peer outbox bound; overflow drops the oldest frame.
    pub queue_cap: usize,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy {
            base: Duration::from_millis(10),
            max: Duration::from_secs(1),
            jitter: 0.5,
            queue_cap: 512,
        }
    }
}

impl BackoffPolicy {
    /// The delay following `current` in the exponential schedule.
    fn next_delay(&self, current: Duration) -> Duration {
        if current.is_zero() {
            self.base
        } else {
            (current * 2).min(self.max)
        }
    }
}

/// A frame parked in a peer's outbox.
struct QueuedFrame {
    env: Envelope,
    /// Whether this frame was already counted in `tcp_frames_requeued`.
    /// Set on the first flush attempt that could not send it (failed
    /// write or blocked link); later re-parks are not recounted, so the
    /// counter reads "frames that ever had to wait", matching the old
    /// send-path semantics.
    requeued: bool,
    /// Whether injected loss was already rolled for this frame. Loss is
    /// evaluated at flush time but exactly once per frame, so retries do
    /// not compound the configured probability.
    loss_rolled: bool,
}

/// The outbox shared between the enqueuing protocol threads and one
/// writer thread. The mutex is held only for queue surgery
/// (push/pop/trim) — never across a connect or write syscall.
struct PeerOutbox {
    queue: Mutex<VecDeque<QueuedFrame>>,
    /// Frames logically pending for this peer: queued plus popped into a
    /// writer's in-flight batch. Kept outside the queue so
    /// `pending_frames` and the overflow check see in-flight frames too.
    depth: AtomicUsize,
    /// Wakes the peer's writer thread.
    kick: Sender<()>,
}

/// Connection state owned exclusively by one writer thread — no lock
/// guards it because nothing else may touch the socket.
struct WriterConn {
    conn: Option<TcpStream>,
    /// Current backoff delay; zero while the link is healthy.
    delay: Duration,
    /// Earliest instant the writer may retry after a failure.
    next_attempt: Instant,
    /// Whether a connection was ever established (distinguishes
    /// reconnects from first connects).
    ever_connected: bool,
    /// Reusable coalescing buffer: header+frame pairs for a whole batch.
    buf: Vec<u8>,
    /// End offset of each frame within `buf`, for partial-write
    /// accounting.
    bounds: Vec<usize>,
}

impl WriterConn {
    fn new() -> Self {
        WriterConn {
            conn: None,
            delay: Duration::ZERO,
            next_attempt: Instant::now(),
            ever_connected: false,
            buf: Vec::new(),
            bounds: Vec::new(),
        }
    }
}

/// What a flush pass left behind, deciding how the writer sleeps.
enum FlushState {
    /// Outbox empty: sleep until kicked.
    Idle,
    /// Frames held behind blocked links only: sleep until kicked (the
    /// fault panel kicks on every transition, so a heal wakes us).
    Parked,
    /// A send failed: sleep until the backoff deadline or a kick.
    Backoff(Instant),
}

struct SenderInner {
    addrs: Vec<SocketAddr>,
    peers: Vec<PeerOutbox>,
    policy: BackoffPolicy,
    connect_timeout: Duration,
    panel: FaultPanel,
    stop: AtomicBool,
    /// SplitMix64 state for backoff jitter.
    rng: AtomicU64,
    /// Successful outbound connection establishments (incl. reconnects).
    connects: Counter,
    /// Connection establishments after a previous failure or disconnect.
    reconnects: Counter,
    /// Frames that had to wait in an outbox past their first flush
    /// attempt (failed send or blocked link), counted once per frame.
    frames_requeued: Counter,
    /// Frames dropped because an outbox overflowed its bound.
    frames_abandoned: Counter,
    /// Frames currently pending across all outboxes.
    outbox_depth: Gauge,
    /// Frames coalesced into each successful batch write.
    frames_per_flush: Histogram,
    /// Nanoseconds the caller spends inside `Wire::send` (enqueue only).
    enqueue_ns: Histogram,
}

impl SenderInner {
    fn jittered(&self, delay: Duration) -> Duration {
        if self.policy.jitter <= 0.0 {
            return delay;
        }
        let state = self
            .rng
            .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        delay + delay.mul_f64(self.policy.jitter * unit)
    }

    /// Schedules the writer's next retry one backoff step out.
    fn back_off(&self, w: &mut WriterConn) {
        w.delay = self.policy.next_delay(w.delay);
        w.next_attempt = Instant::now() + self.jittered(w.delay);
    }

    /// Removes `n` frames from peer `idx`'s logical depth (sent, dropped
    /// by loss, or abandoned).
    fn sub_depth(&self, idx: usize, n: usize) {
        self.peers[idx].depth.fetch_sub(n, Ordering::Relaxed);
        self.outbox_depth.sub(n as i64);
    }

    /// Counts `f` as requeued exactly once over its lifetime.
    fn mark_requeued(&self, f: &mut QueuedFrame) {
        if !f.requeued {
            f.requeued = true;
            self.frames_requeued.inc();
        }
    }

    /// One flush pass over peer `idx`: repeatedly splits the outbox into
    /// held frames (blocked links, kept in order) and a sendable batch,
    /// and writes the batch as a single coalesced buffer. Returns how the
    /// writer should sleep.
    fn flush_peer(&self, idx: usize, w: &mut WriterConn) -> FlushState {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return FlushState::Idle;
            }
            if Instant::now() < w.next_attempt {
                // Inside a backoff window the link is known-bad: leave
                // everything parked until the deadline.
                return if self.peers[idx].queue.lock().is_empty() {
                    FlushState::Idle
                } else {
                    FlushState::Backoff(w.next_attempt)
                };
            }
            let mut batch: Vec<QueuedFrame> = Vec::new();
            let held_any;
            {
                let mut q = self.peers[idx].queue.lock();
                if q.is_empty() {
                    return FlushState::Idle;
                }
                let mut kept: VecDeque<QueuedFrame> = VecDeque::with_capacity(q.len());
                // Source nodes with a held frame earlier in the scan: all
                // their later frames must hold too, so a link healing
                // mid-scan cannot reorder that link's frames.
                let mut held_links: Vec<u32> = Vec::new();
                while let Some(mut f) = q.pop_front() {
                    let from = f.env.from;
                    if held_links.contains(&from.0) || self.panel.is_blocked(from.index(), idx) {
                        self.mark_requeued(&mut f);
                        if !held_links.contains(&from.0) {
                            held_links.push(from.0);
                        }
                        kept.push_back(f);
                    } else if !f.loss_rolled && self.panel.rolls_loss_drop() {
                        self.sub_depth(idx, 1); // injected loss: frame gone
                    } else {
                        f.loss_rolled = true;
                        batch.push(f);
                    }
                }
                held_any = !kept.is_empty();
                *q = kept;
            }
            if batch.is_empty() {
                return if held_any {
                    FlushState::Parked
                } else {
                    FlushState::Idle
                };
            }
            match self.write_batch(idx, w, &batch) {
                Ok(()) => {
                    w.delay = Duration::ZERO;
                    self.sub_depth(idx, batch.len());
                    self.frames_per_flush.record(batch.len() as u64);
                    // Go around: more frames may have queued while the
                    // batch was on the wire.
                }
                Err(sent) => {
                    self.sub_depth(idx, sent);
                    if sent > 0 {
                        self.frames_per_flush.record(sent as u64);
                    }
                    let mut q = self.peers[idx].queue.lock();
                    for mut f in batch.into_iter().skip(sent).rev() {
                        self.mark_requeued(&mut f);
                        q.push_front(f);
                    }
                    // Frames enqueued during the failed write may have
                    // pushed the outbox past its bound: drop-oldest back
                    // under the cap.
                    while self.peers[idx].depth.load(Ordering::Relaxed) > self.policy.queue_cap {
                        if q.pop_front().is_none() {
                            break;
                        }
                        self.sub_depth(idx, 1);
                        self.frames_abandoned.inc();
                    }
                    drop(q);
                    self.back_off(w);
                    return FlushState::Backoff(w.next_attempt);
                }
            }
        }
    }

    /// Connects (if needed) and writes the whole batch as one coalesced
    /// buffer. On failure returns `Err(sent)` with the count of frames
    /// whose bytes were fully accepted; the boundary frame and everything
    /// after it must be retried — a partially-written frame was never
    /// framed on the peer, so resending it cannot duplicate delivery.
    fn write_batch(
        &self,
        idx: usize,
        w: &mut WriterConn,
        batch: &[QueuedFrame],
    ) -> Result<(), usize> {
        if w.conn.is_none() {
            match TcpStream::connect_timeout(&self.addrs[idx], self.connect_timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
                    self.connects.inc();
                    if w.ever_connected {
                        self.reconnects.inc();
                    }
                    w.ever_connected = true;
                    w.conn = Some(stream);
                }
                Err(_) => return Err(0),
            }
        }
        w.buf.clear();
        w.bounds.clear();
        for f in batch {
            w.buf
                .extend_from_slice(&(f.env.frame.len() as u32).to_be_bytes());
            w.buf.extend_from_slice(&f.env.from.0.to_be_bytes());
            w.buf.extend_from_slice(&f.env.frame);
            w.bounds.push(w.buf.len());
        }
        let stream = w.conn.as_mut().expect("just connected");
        let mut off = 0usize;
        let mut failed = false;
        while off < w.buf.len() {
            match stream.write(&w.buf[off..]) {
                Ok(0) => {
                    failed = true;
                    break;
                }
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    failed = true;
                    break;
                }
            }
        }
        if !failed {
            return Ok(());
        }
        w.conn = None; // reconnect on the next attempt
        Err(w.bounds.iter().filter(|&&b| b <= off).count())
    }

    fn pending_frames(&self) -> usize {
        self.peers
            .iter()
            .map(|p| p.depth.load(Ordering::Relaxed))
            .sum()
    }
}

/// One writer thread per peer: sleeps on the kick channel, flushes on
/// wakeup. Kicks arrive from `Wire::send` (new frame), `shutdown`, and
/// every fault-panel transition (so a heal drains parked frames
/// immediately, with no timed polling anywhere).
fn writer_loop(inner: Arc<SenderInner>, idx: usize, kick: Receiver<()>) {
    let mut w = WriterConn::new();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let received = match inner.flush_peer(idx, &mut w) {
            FlushState::Idle | FlushState::Parked => {
                kick.recv().map_err(|_| RecvTimeoutError::Disconnected)
            }
            FlushState::Backoff(until) => {
                kick.recv_timeout(until.saturating_duration_since(Instant::now()))
            }
        };
        match received {
            Ok(()) => {
                // Coalesce a kick storm into one flush pass.
                while kick.try_recv().is_ok() {}
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// The sending half: a bounded outbox plus a dedicated writer thread per
/// peer. `send` never performs socket I/O on the calling thread.
pub struct TcpSender {
    inner: Arc<SenderInner>,
    writers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for TcpSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpSender")
            .field("peers", &self.inner.addrs.len())
            .field("pending_frames", &self.inner.pending_frames())
            .finish()
    }
}

impl TcpSender {
    /// A sender that can reach every address in `addrs` (indexed by node).
    pub fn new(addrs: Vec<SocketAddr>) -> Self {
        Self::with_obs(addrs, &Obs::disabled(Source::Runtime))
    }

    /// Like [`TcpSender::new`], recording pipeline telemetry into `obs`:
    /// connection churn counters (`tcp_connects`, `tcp_reconnects`,
    /// `tcp_frames_requeued`, `tcp_frames_abandoned`), the
    /// `tcp_outbox_depth` gauge, and the `tcp_frames_per_flush` /
    /// `send_enqueue_ns` histograms.
    pub fn with_obs(addrs: Vec<SocketAddr>, obs: &Obs) -> Self {
        let panel = FaultPanel::new(addrs.len(), obs);
        Self::with_panel(addrs, obs, panel, BackoffPolicy::default())
    }

    /// Full-control constructor: an external [`FaultPanel`] (shared with
    /// the fault-injecting side) and an explicit [`BackoffPolicy`].
    /// Spawns one `tokq-tcp-write-<peer>` thread per address.
    pub fn with_panel(
        addrs: Vec<SocketAddr>,
        obs: &Obs,
        panel: FaultPanel,
        policy: BackoffPolicy,
    ) -> Self {
        let mut peers = Vec::with_capacity(addrs.len());
        let mut kick_rxs = Vec::with_capacity(addrs.len());
        for _ in 0..addrs.len() {
            let (tx, rx) = unbounded::<()>();
            peers.push(PeerOutbox {
                queue: Mutex::new(VecDeque::new()),
                depth: AtomicUsize::new(0),
                kick: tx,
            });
            kick_rxs.push(rx);
        }
        let inner = Arc::new(SenderInner {
            addrs,
            peers,
            policy,
            connect_timeout: Duration::from_millis(500),
            panel,
            stop: AtomicBool::new(false),
            rng: AtomicU64::new(0x7C9A_B0FF),
            connects: obs.registry().counter("tcp_connects"),
            reconnects: obs.registry().counter("tcp_reconnects"),
            frames_requeued: obs.registry().counter("tcp_frames_requeued"),
            frames_abandoned: obs.registry().counter("tcp_frames_abandoned"),
            outbox_depth: obs.registry().gauge("tcp_outbox_depth"),
            frames_per_flush: obs.registry().histogram("tcp_frames_per_flush"),
            enqueue_ns: obs.registry().histogram("send_enqueue_ns"),
        });
        // Any fault transition wakes every writer: parked frames drain
        // the instant their link heals.
        let kicks: Vec<Sender<()>> = inner.peers.iter().map(|p| p.kick.clone()).collect();
        inner.panel.add_waker(Box::new(move || {
            for k in &kicks {
                let _ = k.send(());
            }
        }));
        let writers = kick_rxs
            .into_iter()
            .enumerate()
            .map(|(idx, rx)| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tokq-tcp-write-{idx}"))
                    .spawn(move || writer_loop(inner, idx, rx))
                    .expect("spawn tcp writer thread")
            })
            .collect();
        TcpSender {
            inner,
            writers: Mutex::new(writers),
        }
    }

    /// The fault panel this sender's writers consult on every flush.
    pub fn fault_panel(&self) -> &FaultPanel {
        &self.inner.panel
    }

    /// Frames currently pending (queued or in a writer's in-flight batch)
    /// across all peers.
    pub fn pending_frames(&self) -> usize {
        self.inner.pending_frames()
    }

    /// Stops and joins every writer thread; pending frames are dropped.
    /// Called automatically on drop.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        for p in &self.inner.peers {
            let _ = p.kick.send(());
        }
        for t in self.writers.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Wire for TcpSender {
    fn send(&self, env: Envelope) {
        let started = Instant::now();
        let idx = env.to.index();
        if idx >= self.inner.addrs.len() {
            return; // no such peer: drop, like the channel transport
        }
        let peer = &self.inner.peers[idx];
        {
            let mut q = peer.queue.lock();
            // Drop-oldest at the bound. With every queued frame in a
            // writer's in-flight batch there is nothing to pop; the bound
            // is restored by the writer's post-failure trim.
            if peer.depth.load(Ordering::Relaxed) >= self.inner.policy.queue_cap
                && q.pop_front().is_some()
            {
                self.inner.sub_depth(idx, 1);
                self.inner.frames_abandoned.inc();
            }
            q.push_back(QueuedFrame {
                env,
                requeued: false,
                loss_rolled: false,
            });
            peer.depth.fetch_add(1, Ordering::Relaxed);
            self.inner.outbox_depth.add(1);
        }
        let _ = peer.kick.send(());
        self.inner
            .enqueue_ns
            .record(started.elapsed().as_nanos() as u64);
    }
}

impl Drop for TcpSender {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The receiving half: accepts connections and pumps decoded frames into a
/// node's event inbox.
#[derive(Debug)]
pub struct TcpReceiver {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl TcpReceiver {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting; every received frame becomes a [`NodeEvent::Wire`] on
    /// `inbox`.
    ///
    /// # Errors
    ///
    /// Returns any socket-binding error.
    pub(crate) fn bind(addr: SocketAddr, inbox: Sender<NodeEvent>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let readers2 = Arc::clone(&readers);
        let accept_thread = std::thread::Builder::new()
            .name("tokq-tcp-accept".into())
            .spawn(move || accept_loop(listener, inbox, stop2, readers2))?;
        Ok(TcpReceiver {
            local,
            stop,
            accept_thread: Some(accept_thread),
            readers,
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops accepting and joins the accept thread and every reader
    /// thread. Readers poll the stop flag between socket reads (via a
    /// read timeout), so the join completes within one tick even while
    /// peers stay connected.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a dummy connection.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.readers.lock().drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for TcpReceiver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    inbox: Sender<NodeEvent>,
    stop: Arc<AtomicBool>,
    readers: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    let mut backoff = Duration::from_millis(1);
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                backoff = Duration::from_millis(1);
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // The timeout lets read_loop notice the stop flag on a
                // quiet connection, so shutdown() can join it.
                let _ = stream.set_read_timeout(Some(READ_TICK));
                let inbox = inbox.clone();
                let stop = Arc::clone(&stop);
                if let Ok(handle) = std::thread::Builder::new()
                    .name("tokq-tcp-read".into())
                    .spawn(move || read_loop(stream, inbox, stop))
                {
                    readers.lock().push(handle);
                }
            }
            Err(_) => {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE, ENFILE) must not
                // busy-spin this thread at 100% CPU.
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
        }
    }
}

/// Reads exactly `buf.len()` bytes, treating the read timeout installed
/// by the accept loop as a cue to re-check `stop` rather than an error.
/// Returns `false` on EOF, a real error, or shutdown.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> bool {
    let mut off = 0;
    while off < buf.len() {
        if stop.load(Ordering::SeqCst) {
            return false;
        }
        match stream.read(&mut buf[off..]) {
            Ok(0) => return false,
            Ok(n) => off += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(_) => return false,
        }
    }
    true
}

fn read_loop(mut stream: TcpStream, inbox: Sender<NodeEvent>, stop: Arc<AtomicBool>) {
    let mut header = [0u8; 8];
    loop {
        if !read_full(&mut stream, &mut header, &stop) {
            return;
        }
        let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes"));
        let from = u32::from_be_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_FRAME {
            return; // corrupt stream: drop the connection
        }
        let mut payload = vec![0u8; len as usize];
        if !read_full(&mut stream, &mut payload, &stop) {
            return;
        }
        if inbox
            .send(NodeEvent::Wire {
                from: NodeId(from),
                frame: Bytes::from(payload),
            })
            .is_err()
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().expect("valid addr")
    }

    fn env_to0(from: u32, payload: &[u8]) -> Envelope {
        Envelope {
            from: NodeId(from),
            to: NodeId(0),
            frame: Bytes::copy_from_slice(payload),
        }
    }

    fn recv_frame(rx: &crossbeam::channel::Receiver<NodeEvent>, timeout: Duration) -> Bytes {
        match rx.recv_timeout(timeout).expect("frame") {
            NodeEvent::Wire { frame, .. } => frame,
            other => panic!("unexpected event {other:?}"),
        }
    }

    /// Polls `cond` for up to five seconds; the writer pipeline is
    /// asynchronous, so queue-state assertions need a grace window.
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        false
    }

    #[test]
    fn frame_roundtrips_over_loopback() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let sender = TcpSender::new(vec![recv.local_addr()]);
        sender.send(Envelope {
            from: NodeId(7),
            to: NodeId(0),
            frame: Bytes::from_static(b"hello tcp"),
        });
        let ev = rx.recv_timeout(Duration::from_secs(5)).expect("delivered");
        match ev {
            NodeEvent::Wire { from, frame } => {
                assert_eq!(from, NodeId(7));
                assert_eq!(&frame[..], b"hello tcp");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn many_frames_keep_order_per_connection() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let sender = TcpSender::new(vec![recv.local_addr()]);
        for i in 0..100u8 {
            sender.send(env_to0(1, &[i]));
        }
        for i in 0..100u8 {
            assert_eq!(recv_frame(&rx, Duration::from_secs(5))[0], i);
        }
    }

    #[test]
    fn send_to_dead_peer_queues_without_blocking() {
        // Bind and immediately shut down to get a dead address.
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let addr = recv.local_addr();
        recv.shutdown();
        drop(recv);
        let sender = TcpSender::new(vec![addr]);
        // Must not panic or hang; the frame parks for retry.
        sender.send(env_to0(0, b"x"));
        assert_eq!(sender.pending_frames(), 1);
    }

    #[test]
    fn queue_overflow_abandons_oldest() {
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let addr = recv.local_addr();
        recv.shutdown();
        drop(recv);
        let obs = Obs::disabled(Source::Runtime);
        let policy = BackoffPolicy {
            queue_cap: 4,
            ..BackoffPolicy::default()
        };
        let sender = TcpSender::with_panel(vec![addr], &obs, FaultPanel::detached(1), policy);
        for i in 0..10u8 {
            sender.send(env_to0(0, &[i]));
        }
        // The writer trims any transient over-cap backlog on its next
        // failed flush, so poll rather than assert instantaneously.
        assert!(
            eventually(|| {
                sender.pending_frames() <= 4
                    && obs.registry().snapshot().counters["tcp_frames_abandoned"] >= 6
            }),
            "pending={} counters={:?}",
            sender.pending_frames(),
            obs.registry().snapshot().counters
        );
    }

    #[test]
    fn peer_reset_triggers_reconnect_and_redelivery() {
        // Raw listener so the test controls the server side of the
        // connection: accepting and dropping with data unread sends an
        // RST, deterministically killing the sender's cached stream.
        let obs = Obs::disabled(Source::Runtime);
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let sender = TcpSender::with_panel(
            vec![addr],
            &obs,
            FaultPanel::detached(1),
            BackoffPolicy {
                base: Duration::from_millis(5),
                ..BackoffPolicy::default()
            },
        );
        sender.send(env_to0(0, b"doomed"));
        let (first_conn, _) = listener.accept().expect("accept");
        drop(first_conn); // unread data → RST
        std::thread::sleep(Duration::from_millis(50));
        // The cached stream is now dead. A write into it can still land in
        // the kernel buffer if the RST races us (that frame is lost — TCP
        // semantics), so send a sacrificial probe first and give the
        // writer a beat to flush it separately; the failing write forces a
        // reconnect and every later frame arrives on the fresh connection.
        sender.send(env_to0(0, b"probe"));
        std::thread::sleep(Duration::from_millis(30));
        sender.send(env_to0(0, b"after reset"));
        let (mut conn, _) = listener.accept().expect("re-accept");
        let mut seen = Vec::new();
        loop {
            let mut header = [0u8; 8];
            conn.read_exact(&mut header).expect("header");
            let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
            let mut payload = vec![0u8; len];
            conn.read_exact(&mut payload).expect("payload");
            if payload == b"after reset" {
                break;
            }
            seen.push(payload);
            assert!(seen.len() < 3, "unexpected frames before redelivery");
        }
        let counters = obs.registry().snapshot().counters;
        assert!(counters["tcp_reconnects"] >= 1, "{counters:?}");
        assert_eq!(counters["tcp_connects"], 2, "{counters:?}");
    }

    #[test]
    fn blocked_link_parks_frames_and_heals_in_order() {
        let obs = Obs::disabled(Source::Runtime);
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let panel = FaultPanel::detached(2);
        let sender = TcpSender::with_panel(
            vec![recv.local_addr(), recv.local_addr()],
            &obs,
            panel.clone(),
            BackoffPolicy::default(),
        );
        panel.block(1, 0);
        for i in 0..5u8 {
            sender.send(env_to0(1, &[i]));
        }
        assert!(rx.recv_timeout(Duration::from_millis(80)).is_err());
        assert_eq!(sender.pending_frames(), 5);
        panel.heal();
        for i in 0..5u8 {
            assert_eq!(recv_frame(&rx, Duration::from_secs(5))[0], i);
        }
        assert!(eventually(|| sender.pending_frames() == 0));
        assert_eq!(obs.registry().snapshot().counters["tcp_frames_requeued"], 5);
    }

    #[test]
    fn send_stays_enqueue_only_and_batches_coalesce() {
        // Block the link first so every send is a pure enqueue, then heal:
        // the whole backlog must leave in one coalesced batch write.
        let obs = Obs::disabled(Source::Runtime);
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let panel = FaultPanel::detached(2);
        let sender = TcpSender::with_panel(
            vec![recv.local_addr(), recv.local_addr()],
            &obs,
            panel.clone(),
            BackoffPolicy::default(),
        );
        panel.block(1, 0);
        for i in 0..32u8 {
            sender.send(env_to0(1, &[i]));
        }
        panel.heal();
        for i in 0..32u8 {
            assert_eq!(recv_frame(&rx, Duration::from_secs(5))[0], i);
        }
        let snap = obs.registry().snapshot();
        let enqueue = &snap.histograms["send_enqueue_ns"];
        assert_eq!(enqueue.count, 32, "every send recorded its enqueue time");
        let per_flush = &snap.histograms["tcp_frames_per_flush"];
        assert!(
            per_flush.max >= 2,
            "parked backlog should coalesce into a multi-frame batch: {per_flush:?}"
        );
        assert!(eventually(|| obs
            .registry()
            .gauge("tcp_outbox_depth")
            .get()
            == 0));
    }

    #[test]
    fn shutdown_joins_writers_promptly_with_dead_peer() {
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        let addr = recv.local_addr();
        recv.shutdown();
        drop(recv);
        let sender = TcpSender::new(vec![addr]);
        sender.send(env_to0(0, b"x"));
        let started = Instant::now();
        sender.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(3),
            "shutdown hung: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn receiver_shutdown_joins_readers_with_live_connection() {
        let (tx, _rx) = unbounded();
        let mut recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        // A connected-but-quiet peer used to leave its reader thread
        // blocked in read_exact forever; now readers poll the stop flag.
        let _client = TcpStream::connect(recv.local_addr()).expect("connect");
        std::thread::sleep(Duration::from_millis(30)); // let accept run
        let started = Instant::now();
        recv.shutdown();
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "shutdown hung: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn oversized_frame_drops_connection_not_process() {
        let (tx, rx) = unbounded();
        let recv = TcpReceiver::bind(loopback(), tx).expect("bind");
        // Hand-craft a corrupt header claiming a gigantic frame.
        let mut s = TcpStream::connect(recv.local_addr()).expect("connect");
        let mut header = [0u8; 8];
        header[..4].copy_from_slice(&u32::MAX.to_be_bytes());
        s.write_all(&header).expect("write");
        // The reader must simply drop the connection; nothing delivered.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
    }
}
