//! Hand-rolled binary wire codec for arbiter protocol messages.
//!
//! The runtime moves messages between node threads as opaque byte frames,
//! exactly as a socket transport would, so the encode/decode path is
//! exercised by every cluster test. The format is a compact tagged binary
//! encoding over [`bytes`]; a one-byte version prefix guards against
//! format drift.
//!
//! Version 2 adds a 16-bit **shard id** between the version byte and the
//! message tag: `[version u8][shard u16 BE][tag u8]...`. One transport
//! mesh (TCP or in-process channels) carries frames for every shard of a
//! sharded cluster; the shard id is the demultiplexing key a receiving
//! node uses to route the decoded message to the right protocol instance.
//! Transports themselves never inspect it — frames stay opaque below this
//! layer.

use crate::service::ShardId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use tokq_protocol::arbiter::{ArbiterMsg, Token, TokenStatus};
use tokq_protocol::qlist::{Entry, QList};
use tokq_protocol::types::{NodeId, Priority, SeqNum};

/// Wire format version byte. Version 2 introduced the shard id field.
pub const WIRE_VERSION: u8 = 2;

/// Errors produced while decoding a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame ended before the structure was complete.
    Truncated,
    /// The version byte did not match [`WIRE_VERSION`].
    BadVersion(u8),
    /// An unknown message or status tag was encountered.
    BadTag(u8),
    /// Trailing bytes followed a complete message.
    TrailingBytes(usize),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadTag(t) => write!(f, "unknown tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl std::error::Error for WireError {}

fn need(buf: &impl Buf, n: usize) -> Result<(), WireError> {
    if buf.remaining() < n {
        Err(WireError::Truncated)
    } else {
        Ok(())
    }
}

fn put_qlist(out: &mut BytesMut, q: &QList) {
    out.put_u32(q.len() as u32);
    for e in q.iter() {
        out.put_u32(e.node.0);
        out.put_u64(e.seq.0);
        out.put_u32(e.priority.0);
    }
}

fn get_qlist(buf: &mut Bytes) -> Result<QList, WireError> {
    need(buf, 4)?;
    let len = buf.get_u32() as usize;
    // `len` is untrusted: no pre-allocation happens here (the QList grows
    // entry by entry, each gated by `need`), so a corrupt count costs at
    // most one Truncated error — never memory.
    let mut q = QList::new();
    for _ in 0..len {
        need(buf, 16)?;
        let node = NodeId(buf.get_u32());
        let seq = SeqNum(buf.get_u64());
        let priority = Priority(buf.get_u32());
        q.push_back(Entry::with_priority(node, seq, priority));
    }
    Ok(q)
}

fn put_token(out: &mut BytesMut, t: &Token) {
    put_qlist(out, &t.q);
    out.put_u32(t.last_granted.len() as u32);
    for s in &t.last_granted {
        out.put_u64(s.0);
    }
    out.put_u64(t.round);
    out.put_u64(t.epoch);
    out.put_u8(u8::from(t.via_monitor));
}

fn get_token(buf: &mut Bytes) -> Result<Token, WireError> {
    let q = get_qlist(buf)?;
    need(buf, 4)?;
    let n = buf.get_u32() as usize;
    // `n` is an untrusted length prefix: clamp the pre-allocation to what
    // the remaining bytes could actually hold (8 bytes per entry), so a
    // tiny corrupt frame claiming u32::MAX entries cannot demand a ~32 GiB
    // allocation before the per-entry bounds checks reject it.
    let mut last_granted = Vec::with_capacity(n.min(buf.remaining() / 8));
    for _ in 0..n {
        need(buf, 8)?;
        last_granted.push(SeqNum(buf.get_u64()));
    }
    need(buf, 17)?;
    let round = buf.get_u64();
    let epoch = buf.get_u64();
    let via_monitor = buf.get_u8() != 0;
    Ok(Token {
        q,
        last_granted,
        round,
        epoch,
        via_monitor,
    })
}

fn put_opt_node(out: &mut BytesMut, node: Option<NodeId>) {
    match node {
        Some(n) => {
            out.put_u8(1);
            out.put_u32(n.0);
        }
        None => out.put_u8(0),
    }
}

fn get_opt_node(buf: &mut Bytes) -> Result<Option<NodeId>, WireError> {
    need(buf, 1)?;
    if buf.get_u8() == 0 {
        Ok(None)
    } else {
        need(buf, 4)?;
        Ok(Some(NodeId(buf.get_u32())))
    }
}

/// Encodes a message for `shard` into an owned frame.
pub fn encode(shard: ShardId, msg: &ArbiterMsg) -> Bytes {
    let mut out = BytesMut::with_capacity(64);
    out.put_u8(WIRE_VERSION);
    // Big-endian u16 shard id (the vendored `bytes` shim has no put_u16).
    out.put_u8((shard.0 >> 8) as u8);
    out.put_u8(shard.0 as u8);
    match msg {
        ArbiterMsg::Request {
            requester,
            seq,
            priority,
            hops,
        } => {
            out.put_u8(0);
            out.put_u32(requester.0);
            out.put_u64(seq.0);
            out.put_u32(priority.0);
            out.put_u32(*hops);
        }
        ArbiterMsg::Privilege(token) => {
            out.put_u8(1);
            put_token(&mut out, token);
        }
        ArbiterMsg::NewArbiter {
            arbiter,
            q,
            prev,
            round,
            counter,
            epoch,
            monitor,
        } => {
            out.put_u8(2);
            out.put_u32(arbiter.0);
            put_qlist(&mut out, q);
            out.put_u32(prev.0);
            out.put_u64(*round);
            out.put_u32(*counter);
            out.put_u64(*epoch);
            put_opt_node(&mut out, *monitor);
        }
        ArbiterMsg::MonitorSubmit {
            requester,
            seq,
            priority,
        } => {
            out.put_u8(3);
            out.put_u32(requester.0);
            out.put_u64(seq.0);
            out.put_u32(priority.0);
        }
        ArbiterMsg::Warning { round } => {
            out.put_u8(4);
            out.put_u64(*round);
        }
        ArbiterMsg::Enquiry { epoch } => {
            out.put_u8(5);
            out.put_u64(*epoch);
        }
        ArbiterMsg::EnquiryReply { status } => {
            out.put_u8(6);
            out.put_u8(match status {
                TokenStatus::HadToken => 0,
                TokenStatus::HaveToken => 1,
                TokenStatus::Waiting => 2,
                TokenStatus::Idle => 3,
            });
        }
        ArbiterMsg::Resume => out.put_u8(7),
        ArbiterMsg::Invalidate { epoch } => {
            out.put_u8(8);
            out.put_u64(*epoch);
        }
        ArbiterMsg::Probe => out.put_u8(9),
        ArbiterMsg::ProbeAck { arbiter } => {
            out.put_u8(10);
            out.put_u8(u8::from(*arbiter));
        }
    }
    out.freeze()
}

/// Decodes a frame produced by [`encode`], yielding the shard it belongs
/// to together with the message.
///
/// # Errors
///
/// Returns a [`WireError`] on truncation, version mismatch, unknown tags,
/// or trailing garbage.
pub fn decode(frame: &[u8]) -> Result<(ShardId, ArbiterMsg), WireError> {
    let mut buf = Bytes::copy_from_slice(frame);
    need(&buf, 4)?;
    let version = buf.get_u8();
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion(version));
    }
    let shard = ShardId((u16::from(buf.get_u8()) << 8) | u16::from(buf.get_u8()));
    let tag = buf.get_u8();
    let msg = match tag {
        0 => {
            need(&buf, 20)?;
            ArbiterMsg::Request {
                requester: NodeId(buf.get_u32()),
                seq: SeqNum(buf.get_u64()),
                priority: Priority(buf.get_u32()),
                hops: buf.get_u32(),
            }
        }
        1 => ArbiterMsg::Privilege(get_token(&mut buf)?),
        2 => {
            need(&buf, 4)?;
            let arbiter = NodeId(buf.get_u32());
            let q = get_qlist(&mut buf)?;
            need(&buf, 24)?;
            let prev = NodeId(buf.get_u32());
            let round = buf.get_u64();
            let counter = buf.get_u32();
            let epoch = buf.get_u64();
            let monitor = get_opt_node(&mut buf)?;
            ArbiterMsg::NewArbiter {
                arbiter,
                q,
                prev,
                round,
                counter,
                epoch,
                monitor,
            }
        }
        3 => {
            need(&buf, 16)?;
            ArbiterMsg::MonitorSubmit {
                requester: NodeId(buf.get_u32()),
                seq: SeqNum(buf.get_u64()),
                priority: Priority(buf.get_u32()),
            }
        }
        4 => {
            need(&buf, 8)?;
            ArbiterMsg::Warning {
                round: buf.get_u64(),
            }
        }
        5 => {
            need(&buf, 8)?;
            ArbiterMsg::Enquiry {
                epoch: buf.get_u64(),
            }
        }
        6 => {
            need(&buf, 1)?;
            let status = match buf.get_u8() {
                0 => TokenStatus::HadToken,
                1 => TokenStatus::HaveToken,
                2 => TokenStatus::Waiting,
                3 => TokenStatus::Idle,
                t => return Err(WireError::BadTag(t)),
            };
            ArbiterMsg::EnquiryReply { status }
        }
        7 => ArbiterMsg::Resume,
        8 => {
            need(&buf, 8)?;
            ArbiterMsg::Invalidate {
                epoch: buf.get_u64(),
            }
        }
        9 => ArbiterMsg::Probe,
        10 => {
            need(&buf, 1)?;
            ArbiterMsg::ProbeAck {
                arbiter: buf.get_u8() != 0,
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    if buf.has_remaining() {
        return Err(WireError::TrailingBytes(buf.remaining()));
    }
    Ok((shard, msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ArbiterMsg) {
        for shard in [ShardId(0), ShardId(3), ShardId(u16::MAX)] {
            let frame = encode(shard, &msg);
            let (s, back) = decode(&frame).expect("decode");
            assert_eq!(s, shard);
            assert_eq!(back, msg);
        }
    }

    fn sample_token() -> Token {
        let mut t = Token::initial(4);
        t.q.push_back(Entry::with_priority(NodeId(2), SeqNum(7), Priority(3)));
        t.q.push_back(Entry::new(NodeId(0), SeqNum(1)));
        t.last_granted = vec![SeqNum(1), SeqNum(0), SeqNum(6), SeqNum(2)];
        t.round = 42;
        t.epoch = 3;
        t.via_monitor = true;
        t
    }

    #[test]
    fn roundtrip_every_variant() {
        roundtrip(ArbiterMsg::Request {
            requester: NodeId(9),
            seq: SeqNum(u64::MAX),
            priority: Priority(5),
            hops: 2,
        });
        roundtrip(ArbiterMsg::Privilege(sample_token()));
        roundtrip(ArbiterMsg::NewArbiter {
            arbiter: NodeId(1),
            q: sample_token().q,
            prev: NodeId(0),
            round: 100,
            counter: 7,
            epoch: 2,
            monitor: Some(NodeId(3)),
        });
        roundtrip(ArbiterMsg::NewArbiter {
            arbiter: NodeId(1),
            q: QList::new(),
            prev: NodeId(0),
            round: 0,
            counter: 0,
            epoch: 0,
            monitor: None,
        });
        roundtrip(ArbiterMsg::MonitorSubmit {
            requester: NodeId(2),
            seq: SeqNum(5),
            priority: Priority(0),
        });
        roundtrip(ArbiterMsg::Warning { round: 77 });
        roundtrip(ArbiterMsg::Enquiry { epoch: 11 });
        for status in [
            TokenStatus::HadToken,
            TokenStatus::HaveToken,
            TokenStatus::Waiting,
            TokenStatus::Idle,
        ] {
            roundtrip(ArbiterMsg::EnquiryReply { status });
        }
        roundtrip(ArbiterMsg::Resume);
        roundtrip(ArbiterMsg::Invalidate { epoch: 9 });
        roundtrip(ArbiterMsg::Probe);
        roundtrip(ArbiterMsg::ProbeAck { arbiter: true });
        roundtrip(ArbiterMsg::ProbeAck { arbiter: false });
    }

    #[test]
    fn rejects_bad_version() {
        let mut frame = encode(ShardId(0), &ArbiterMsg::Warning { round: 1 }).to_vec();
        frame[0] = 99;
        assert_eq!(decode(&frame), Err(WireError::BadVersion(99)));
        // The pre-shard v1 layout must be refused, not misparsed.
        frame[0] = 1;
        assert_eq!(decode(&frame), Err(WireError::BadVersion(1)));
    }

    #[test]
    fn rejects_unknown_tag() {
        let frame = vec![WIRE_VERSION, 0, 0, 200];
        assert_eq!(decode(&frame), Err(WireError::BadTag(200)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let frame = encode(ShardId(2), &ArbiterMsg::Privilege(sample_token()));
        for cut in 0..frame.len() {
            let r = decode(&frame[..cut]);
            assert!(r.is_err(), "decode of {cut}-byte prefix must fail");
        }
    }

    #[test]
    fn huge_length_prefixes_fail_without_huge_allocation() {
        // A Privilege frame with an empty qlist whose last_granted count
        // claims u32::MAX entries (~32 GiB if trusted). The clamp caps the
        // pre-allocation at what the frame could actually hold (zero) and
        // the per-entry bounds check reports truncation immediately.
        let mut frame = vec![WIRE_VERSION, 0, 0, 1];
        frame.extend_from_slice(&0u32.to_be_bytes()); // qlist: empty
        frame.extend_from_slice(&u32::MAX.to_be_bytes()); // last_granted count
        assert_eq!(decode(&frame), Err(WireError::Truncated));

        // Same attack on the qlist count itself.
        let mut frame = vec![WIRE_VERSION, 0, 0, 1];
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(decode(&frame), Err(WireError::Truncated));
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut frame = encode(ShardId(0), &ArbiterMsg::Probe).to_vec();
        frame.push(0);
        assert_eq!(decode(&frame), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn shard_rides_in_the_header() {
        // Byte layout is pinned: [version][shard hi][shard lo][tag]...
        let frame = encode(ShardId(0x0102), &ArbiterMsg::Probe);
        assert_eq!(&frame[..4], &[WIRE_VERSION, 0x01, 0x02, 9]);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(WireError::Truncated.to_string().contains("truncated"));
        assert!(WireError::BadVersion(9).to_string().contains('9'));
    }
}
