//! Workload generators and load sweeps for mutual exclusion experiments.
//!
//! The paper's evaluation (§3.3) drives every node with an independent
//! Poisson stream of rate λ; [`Workload::poisson`] reproduces that. The
//! crate adds the generators needed by the extended experiments: exact
//! saturation ([`Workload::saturating`]), bursty two-state MMPP traffic
//! ([`Workload::bursty`]), hot/cold node mixes ([`Workload::hotspot`]),
//! and the scripted Figure 2 walkthrough ([`fig2_script`]).
//!
//! # Example
//!
//! ```
//! use tokq_protocol::arbiter::ArbiterConfig;
//! use tokq_simnet::{SimConfig, Simulation};
//! use tokq_workload::Workload;
//!
//! let report = Simulation::build(
//!     SimConfig::paper_defaults(5),
//!     ArbiterConfig::basic(),
//!     Workload::poisson(1.0),
//! )
//! .run_until_cs(200);
//! assert!(report.cs_measured >= 200);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod bursty;
pub mod sweep;

use tokq_protocol::types::TimeDelta;
use tokq_simnet::arrivals::{
    ArrivalProcess, ClosedLoop, DynWorkload, Poisson, Scripted, WorkloadSpec,
};

pub use bursty::Mmpp;
pub use sweep::{LoadSweep, SweepPoint};

/// A ready-made homogeneous or structured workload.
///
/// Wraps the simulator's [`WorkloadSpec`] machinery behind descriptive
/// constructors so experiments read like the paper's setup.
#[derive(Debug)]
pub struct Workload {
    inner: DynWorkload,
}

impl Workload {
    /// Independent Poisson arrivals of `rate` requests/second at every node
    /// — the paper's workload model.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0, "Poisson rate must be positive, got {rate}");
        Workload {
            inner: DynWorkload::new(move |_, _| Box::new(Poisson::new(rate))),
        }
    }

    /// Exact saturation: every node keeps one request outstanding at all
    /// times (the paper's "heavy load" regime, Eqs. 4–6).
    pub fn saturating() -> Self {
        Workload {
            inner: DynWorkload::new(|_, _| Box::new(ClosedLoop::saturating())),
        }
    }

    /// Closed-loop traffic with a fixed think time between completions.
    pub fn closed_loop(think: TimeDelta) -> Self {
        Workload {
            inner: DynWorkload::new(move |_, _| Box::new(ClosedLoop { think })),
        }
    }

    /// Bursty two-state MMPP traffic: alternates exponentially-distributed
    /// ON (rate `hi`) and OFF (rate `lo`) periods of the given mean length.
    ///
    /// # Panics
    ///
    /// Panics if any rate is non-positive (see [`Mmpp::new`]).
    pub fn bursty(hi: f64, lo: f64, mean_period: TimeDelta) -> Self {
        // Validate eagerly so misconfiguration fails at construction.
        let _probe = Mmpp::new(hi, lo, mean_period);
        Workload {
            inner: DynWorkload::new(move |_, _| Box::new(Mmpp::new(hi, lo, mean_period))),
        }
    }

    /// A hotspot mix: the first `hot_nodes` nodes generate Poisson traffic
    /// at `hot_rate`, the rest at `cold_rate`. Exercises the paper's §5.1
    /// load-balancing claim (only requesters shoulder arbiter duty).
    ///
    /// # Panics
    ///
    /// Panics if either rate is not positive.
    pub fn hotspot(hot_nodes: usize, hot_rate: f64, cold_rate: f64) -> Self {
        assert!(hot_rate > 0.0, "hot rate must be positive");
        assert!(cold_rate > 0.0, "cold rate must be positive");
        Workload {
            inner: DynWorkload::new(move |node, _| {
                if node < hot_nodes {
                    Box::new(Poisson::new(hot_rate))
                } else {
                    Box::new(Poisson::new(cold_rate))
                }
            }),
        }
    }

    /// Only the listed nodes generate traffic (Poisson at `rate`); the
    /// rest stay silent.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn only_nodes(nodes: Vec<usize>, rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Workload {
            inner: DynWorkload::new(move |node, _| {
                if nodes.contains(&node) {
                    Box::new(Poisson::new(rate))
                } else {
                    Box::new(Scripted::silent())
                }
            }),
        }
    }

    /// A fully custom per-node builder.
    pub fn custom<F>(builder: F) -> Self
    where
        F: Fn(usize, usize) -> Box<dyn ArrivalProcess> + Send + Sync + 'static,
    {
        Workload {
            inner: DynWorkload::new(builder),
        }
    }
}

impl WorkloadSpec for Workload {
    type Process = Box<dyn ArrivalProcess>;
    fn build(&self, node: usize, n: usize) -> Box<dyn ArrivalProcess> {
        self.inner.build(node, n)
    }
}

/// The scripted workload of the paper's §2.2 illustrative example
/// (Figure 2): five nodes; nodes 2, 4 and 5 (ids 1, 3, 4 here) request
/// around t=0, and node 3 (id 2) requests a little later.
///
/// Request times are chosen so that, with all protocol durations equal to
/// 0.1 units, the requests from nodes 2 and 5 arrive during node 1's
/// collection phase, node 4's arrives during its forwarding phase, and
/// node 3's arrives at the next arbiter — exactly the §2.2 narrative.
pub fn fig2_script() -> Workload {
    Workload::custom(|node, _| {
        let at = |secs: f64| Scripted::open_loop([TimeDelta::from_secs_f64(secs)]);
        match node {
            // Node ids are 0-based: paper's node 2 is id 1, etc.
            1 => Box::new(at(0.01)), // REQUEST(2): lands in collection
            4 => Box::new(at(0.05)), // REQUEST(5): lands in collection
            3 => Box::new(at(0.17)), // REQUEST(4): lands in forwarding
            2 => Box::new(at(0.40)), // REQUEST(3): lands at arbiter 5
            _ => Box::new(Scripted::silent()),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokq_simnet::rng::SimRng;

    #[test]
    fn poisson_builds_per_node_streams() {
        let w = Workload::poisson(2.0);
        let mut rng = SimRng::new(1);
        let mut p = w.build(3, 10);
        assert!(p.next_delay(&mut rng).is_some());
    }

    #[test]
    fn hotspot_rates_differ() {
        let w = Workload::hotspot(1, 100.0, 0.001);
        let mut rng = SimRng::new(2);
        let mut hot = w.build(0, 4);
        let mut cold = w.build(3, 4);
        let h: f64 = (0..200)
            .map(|_| hot.next_delay(&mut rng).unwrap().as_secs_f64())
            .sum();
        let c: f64 = (0..200)
            .map(|_| cold.next_delay(&mut rng).unwrap().as_secs_f64())
            .sum();
        assert!(h < c, "hot node must arrive much faster");
    }

    #[test]
    fn only_nodes_silences_the_rest() {
        let w = Workload::only_nodes(vec![0], 1.0);
        let mut rng = SimRng::new(3);
        assert!(w.build(0, 3).next_delay(&mut rng).is_some());
        assert!(w.build(1, 3).next_delay(&mut rng).is_none());
    }

    #[test]
    fn fig2_script_only_four_requesters() {
        let w = fig2_script();
        let mut rng = SimRng::new(4);
        let mut count = 0;
        for node in 0..5 {
            let mut p = w.build(node, 5);
            if p.next_delay(&mut rng).is_some() {
                count += 1;
                assert!(p.next_delay(&mut rng).is_none(), "single-shot streams");
            }
        }
        assert_eq!(count, 4);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_validates() {
        let _ = Workload::poisson(-1.0);
    }
}
