//! Bursty traffic: a two-state Markov-modulated Poisson process (MMPP).
//!
//! The paper evaluates only smooth Poisson traffic; the MMPP workload
//! stresses the arbiter algorithm's adaptive behaviours (collection-window
//! batching, the monitor's adaptive period) under load that alternates
//! between hot bursts and quiet spells.

use tokq_protocol::types::TimeDelta;
use tokq_simnet::arrivals::{ArrivalProcess, Pacing};
use tokq_simnet::rng::SimRng;

/// Two-state MMPP: Poisson arrivals whose rate switches between `hi` and
/// `lo` at exponentially-distributed state holding times.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mmpp {
    hi: f64,
    lo: f64,
    /// Rate of state switching (1 / mean holding time).
    switch_rate: f64,
    /// Time left in the current state, in seconds.
    remaining: f64,
    in_hi: bool,
    initialized: bool,
}

impl Mmpp {
    /// An MMPP alternating ON periods of rate `hi` and OFF periods of rate
    /// `lo`, with mean state length `mean_period`.
    ///
    /// # Panics
    ///
    /// Panics if `hi` or `lo` is not positive, or `mean_period` is zero.
    pub fn new(hi: f64, lo: f64, mean_period: TimeDelta) -> Self {
        assert!(hi > 0.0, "hi rate must be positive, got {hi}");
        assert!(lo > 0.0, "lo rate must be positive, got {lo}");
        assert!(!mean_period.is_zero(), "mean period must be non-zero");
        Mmpp {
            hi,
            lo,
            switch_rate: 1.0 / mean_period.as_secs_f64(),
            remaining: 0.0,
            in_hi: true,
            initialized: false,
        }
    }

    fn current_rate(&self) -> f64 {
        if self.in_hi {
            self.hi
        } else {
            self.lo
        }
    }
}

impl ArrivalProcess for Mmpp {
    fn pacing(&self) -> Pacing {
        Pacing::OpenLoop
    }

    fn next_delay(&mut self, rng: &mut SimRng) -> Option<TimeDelta> {
        if !self.initialized {
            self.initialized = true;
            self.remaining = rng.exponential(self.switch_rate);
        }
        // Walk forward through state periods until an arrival falls inside
        // the current one.
        let mut offset = 0.0f64;
        loop {
            let gap = rng.exponential(self.current_rate());
            if gap <= self.remaining {
                self.remaining -= gap;
                return Some(TimeDelta::from_secs_f64(offset + gap));
            }
            offset += self.remaining;
            self.in_hi = !self.in_hi;
            self.remaining = rng.exponential(self.switch_rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn long_run_rate_between_states() {
        let mut m = Mmpp::new(50.0, 0.5, TimeDelta::from_secs(2));
        let mut rng = SimRng::new(1);
        let n = 50_000;
        let total: f64 = (0..n)
            .map(|_| m.next_delay(&mut rng).unwrap().as_secs_f64())
            .sum();
        let rate = n as f64 / total;
        // With equal mean holding times the long-run rate is the harmonic
        // blend weighted by time: (hi + lo) / 2 in arrivals-per-state terms
        // it lies strictly between the two rates and well away from both.
        assert!(rate > 1.0 && rate < 50.0, "long-run rate {rate}");
    }

    #[test]
    fn bursts_are_visible() {
        // With a huge rate gap, consecutive gaps should cluster: many tiny
        // gaps (ON) and occasional huge ones (OFF).
        let mut m = Mmpp::new(1000.0, 0.1, TimeDelta::from_secs(1));
        let mut rng = SimRng::new(2);
        let gaps: Vec<f64> = (0..30_000)
            .map(|_| m.next_delay(&mut rng).unwrap().as_secs_f64())
            .collect();
        let tiny = gaps.iter().filter(|g| **g < 0.01).count();
        // Each OFF period yields roughly one long gap, so with ~30 ON/OFF
        // alternations expect a handful (not a precise count).
        let huge = gaps.iter().filter(|g| **g > 0.5).count();
        assert!(tiny > 15_000, "expected many burst arrivals, got {tiny}");
        assert!(huge >= 5, "expected some quiet-period gaps, got {huge}");
    }

    #[test]
    #[should_panic(expected = "lo rate must be positive")]
    fn validates_rates() {
        let _ = Mmpp::new(1.0, 0.0, TimeDelta::from_secs(1));
    }
}
