//! Load sweeps: the x-axes of the paper's Figures 3–6.

use serde::{Deserialize, Serialize};

/// One x-axis point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Per-node Poisson arrival rate λ (requests/second).
    pub lambda: f64,
}

/// A set of arrival rates to sweep, mirroring the paper's log-ish spread
/// from deep light load to past saturation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadSweep {
    points: Vec<SweepPoint>,
}

impl LoadSweep {
    /// The default sweep used for Figures 3–6: λ from 0.05 to 10
    /// requests/second/node on a roughly geometric grid. With 10 nodes and
    /// 0.1 s critical sections, saturation sits near λ ≈ 0.5, so the grid
    /// covers two decades of light load and one past saturation.
    pub fn paper() -> Self {
        LoadSweep {
            points: [
                0.05, 0.08, 0.125, 0.2, 0.3, 0.45, 0.65, 1.0, 1.5, 2.5, 4.0, 6.5, 10.0,
            ]
            .iter()
            .map(|&lambda| SweepPoint { lambda })
            .collect(),
        }
    }

    /// A short three-point sweep (light / knee / heavy) for quick runs and
    /// tests.
    pub fn coarse() -> Self {
        LoadSweep {
            points: [0.05, 0.5, 5.0]
                .iter()
                .map(|&lambda| SweepPoint { lambda })
                .collect(),
        }
    }

    /// A custom sweep over the given rates.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or contains a non-positive rate.
    pub fn custom(rates: &[f64]) -> Self {
        assert!(!rates.is_empty(), "sweep needs at least one point");
        assert!(
            rates.iter().all(|r| *r > 0.0),
            "sweep rates must be positive"
        );
        LoadSweep {
            points: rates.iter().map(|&lambda| SweepPoint { lambda }).collect(),
        }
    }

    /// The sweep points in order.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the sweep is empty (never for built-in constructors).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

impl<'a> IntoIterator for &'a LoadSweep {
    type Item = &'a SweepPoint;
    type IntoIter = std::slice::Iter<'a, SweepPoint>;
    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweep_is_increasing_and_spans_saturation() {
        let s = LoadSweep::paper();
        assert!(s.len() >= 10);
        let ps = s.points();
        for w in ps.windows(2) {
            assert!(w[0].lambda < w[1].lambda, "sweep must be increasing");
        }
        assert!(ps.first().unwrap().lambda <= 0.05);
        assert!(ps.last().unwrap().lambda >= 10.0);
    }

    #[test]
    fn custom_sweep_roundtrips() {
        let s = LoadSweep::custom(&[1.0, 2.0]);
        let rates: Vec<f64> = (&s).into_iter().map(|p| p.lambda).collect();
        assert_eq!(rates, vec![1.0, 2.0]);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn custom_rejects_nonpositive() {
        let _ = LoadSweep::custom(&[1.0, 0.0]);
    }
}
