//! Streaming statistics: Welford online moments, Student-t 95% confidence
//! intervals (the paper plots 95% CIs on every simulated point), and moving
//! windows.

use serde::{Deserialize, Serialize};

/// Online mean/variance accumulator (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use tokq_analysis::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Half-width of the 95% confidence interval of the mean, using the
    /// Student-t quantile for small samples.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        t_quantile_975(self.count - 1) * self.std_err()
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom
/// (t such that P(T ≤ t) = 0.975), interpolated from standard tables;
/// converges to the normal quantile 1.96 for large `df`.
pub fn t_quantile_975(df: u64) -> f64 {
    const TABLE: [(u64, f64); 15] = [
        (1, 12.706),
        (2, 4.303),
        (3, 3.182),
        (4, 2.776),
        (5, 2.571),
        (6, 2.447),
        (7, 2.365),
        (8, 2.306),
        (9, 2.262),
        (10, 2.228),
        (15, 2.131),
        (20, 2.086),
        (30, 2.042),
        (60, 2.000),
        (120, 1.980),
    ];
    if df == 0 {
        return f64::NAN;
    }
    if df >= 120 {
        return 1.96;
    }
    let mut prev = TABLE[0];
    for &(d, t) in &TABLE {
        if df == d {
            return t;
        }
        if df < d {
            // Linear interpolation in 1/df, the standard approximation.
            let (d0, t0) = prev;
            let x0 = 1.0 / d0 as f64;
            let x1 = 1.0 / d as f64;
            let x = 1.0 / df as f64;
            return t + (t0 - t) * (x - x1) / (x0 - x1);
        }
        prev = (d, t);
    }
    1.96
}

/// Fixed-capacity moving-average window (used by the adaptive monitor
/// period ablation and by smoothing in reports).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MovingWindow {
    cap: usize,
    values: std::collections::VecDeque<f64>,
    sum: f64,
}

impl MovingWindow {
    /// A window holding at most `cap` observations.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "window capacity must be positive");
        MovingWindow {
            cap,
            values: std::collections::VecDeque::with_capacity(cap),
            sum: 0.0,
        }
    }

    /// Pushes an observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.values.len() == self.cap {
            if let Some(old) = self.values.pop_front() {
                self.sum -= old;
            }
        }
        self.values.push_back(x);
        self.sum += x;
    }

    /// The window average (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum / self.values.len() as f64
        }
    }

    /// Observations currently held.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let data = [1.5, 2.5, 3.5, -1.0, 0.0, 10.0, 4.25];
        let s: OnlineStats = data.iter().copied().collect();
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.count(), 7);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        assert!(s.min().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let all: OnlineStats = data.iter().copied().collect();
        let mut a: OnlineStats = data[..37].iter().copied().collect();
        let b: OnlineStats = data[37..].iter().copied().collect();
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn t_quantiles_decrease_toward_normal() {
        assert!((t_quantile_975(1) - 12.706).abs() < 1e-9);
        assert!((t_quantile_975(10) - 2.228).abs() < 1e-9);
        let t25 = t_quantile_975(25);
        assert!(t25 < t_quantile_975(20) && t25 > t_quantile_975(30));
        assert_eq!(t_quantile_975(10_000), 1.96);
        assert!(t_quantile_975(0).is_nan());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = OnlineStats::new();
        let mut large = OnlineStats::new();
        for i in 0..10 {
            small.push((i % 3) as f64);
        }
        for i in 0..1000 {
            large.push((i % 3) as f64);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn moving_window_evicts() {
        let mut w = MovingWindow::new(3);
        assert!(w.is_empty());
        w.push(1.0);
        w.push(2.0);
        w.push(3.0);
        assert_eq!(w.mean(), 2.0);
        w.push(10.0); // evicts 1.0
        assert_eq!(w.len(), 3);
        assert_eq!(w.mean(), 5.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_window_rejected() {
        let _ = MovingWindow::new(0);
    }
}
