//! Analytic models, statistics, and report formatting for the
//! Banerjee–Chrysanthis reproduction.
//!
//! * [`formulas`] — the paper's closed-form results (Eqs. 1–7) plus the
//!   message-cost models of the comparison algorithms, used to validate
//!   simulated results in `EXPERIMENTS.md`.
//! * [`stats`] — Welford online statistics with Student-t 95% confidence
//!   intervals (the paper reports 95% CIs on all simulated points).
//! * [`queueing`] — a batch-service queueing model that interpolates the
//!   whole Figure 3/4 load range (the paper only analyzes the extremes).
//! * [`histogram`] — latency distribution support.
//! * [`report`] — ASCII/CSV table rendering used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use tokq_analysis::formulas;
//!
//! // The paper's headline numbers for N = 10:
//! assert!((formulas::arbiter_messages_heavy(10) - 2.8).abs() < 1e-12);
//! assert!((formulas::arbiter_messages_light(10) - 9.9).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod formulas;
pub mod histogram;
pub mod queueing;
pub mod report;
pub mod stats;

pub use histogram::Histogram;
pub use report::{Cell, Table};
pub use stats::{MovingWindow, OnlineStats};
