//! Fixed-bucket latency histogram with quantile estimation.
//!
//! Used by the experiment harness to report delay distributions (the paper
//! reports only means; the histogram lets EXPERIMENTS.md also discuss
//! tails, and backs the fairness experiments).

use serde::{Deserialize, Serialize};

/// A linear-bucket histogram over `[0, max)` with an overflow bucket.
///
/// # Examples
///
/// ```
/// use tokq_analysis::histogram::Histogram;
///
/// let mut h = Histogram::new(10.0, 100);
/// for x in [1.0, 2.0, 2.5, 9.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.5) >= 2.0 && h.quantile(0.5) <= 2.6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    max: f64,
    buckets: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// A histogram over `[0, max)` with `buckets` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `max` is not positive or `buckets` is zero.
    pub fn new(max: f64, buckets: usize) -> Self {
        assert!(max > 0.0, "histogram max must be positive");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram {
            max,
            buckets: vec![0; buckets],
            overflow: 0,
            count: 0,
            sum: 0.0,
        }
    }

    /// Records one observation (negative values clamp to bucket 0).
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if x >= self.max {
            self.overflow += 1;
            return;
        }
        let idx = ((x.max(0.0) / self.max) * self.buckets.len() as f64) as usize;
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Observations at or beyond `max`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate `q`-quantile (bucket upper edge), `q ∈ [0, 1]`.
    /// Returns `max` if the quantile falls in the overflow bucket, and 0
    /// when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let width = self.max / self.buckets.len() as f64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i + 1) as f64 * width;
            }
        }
        self.max
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.max, other.max, "histogram max mismatch");
        assert_eq!(
            self.buckets.len(),
            other.buckets.len(),
            "histogram bucket-count mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_means() {
        let mut h = Histogram::new(10.0, 10);
        h.record(0.5);
        h.record(1.5);
        h.record(2.5);
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 1.5).abs() < 1e-12);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn overflow_counted() {
        let mut h = Histogram::new(1.0, 4);
        h.record(5.0);
        h.record(0.5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn quantiles_bracket_median() {
        let mut h = Histogram::new(100.0, 1000);
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        let med = h.quantile(0.5);
        assert!((med - 50.0).abs() < 1.0, "median ≈ 50, got {med}");
        let p99 = h.quantile(0.99);
        assert!((p99 - 99.0).abs() < 1.5, "p99 ≈ 99, got {p99}");
        assert_eq!(h.quantile(0.0), h.quantile(-1.0));
    }

    #[test]
    fn empty_quantile_is_zero() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(10.0, 10);
        let mut b = Histogram::new(10.0, 10);
        a.record(1.0);
        b.record(2.0);
        b.record(20.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow(), 1);
    }

    #[test]
    #[should_panic(expected = "bucket-count mismatch")]
    fn merge_rejects_mismatch() {
        let mut a = Histogram::new(10.0, 10);
        let b = Histogram::new(10.0, 20);
        a.merge(&b);
    }

    #[test]
    fn negative_values_clamp() {
        let mut h = Histogram::new(1.0, 2);
        h.record(-5.0);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) <= 0.5);
    }
}
