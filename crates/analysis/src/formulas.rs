//! The paper's closed-form performance model (§3, Eqs. 1–7) and the
//! message-cost models of the comparison algorithms.
//!
//! All message counts are *per critical-section invocation*; all times are
//! in seconds.

use serde::{Deserialize, Serialize};

/// The deterministic timing parameters of the paper's analysis (§3):
/// constant message delay, critical-section execution time, and request
/// collection duration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Constant message delay `T_msg` (seconds).
    pub t_msg: f64,
    /// Critical-section execution time `T_exec` (seconds).
    pub t_exec: f64,
    /// Request collection duration `T_req` (seconds).
    pub t_req: f64,
}

impl ModelParams {
    /// The parameters of the paper's simulation study (§3.3): all set
    /// to 0.1 units.
    pub fn paper() -> Self {
        ModelParams {
            t_msg: 0.1,
            t_exec: 0.1,
            t_req: 0.1,
        }
    }
}

impl Default for ModelParams {
    fn default() -> Self {
        Self::paper()
    }
}

/// Eq. 1: average messages per CS under *light* load,
/// `M̄ = (1 − 1/N)(1 + (N−1) + 1) = (N² − 1)/N`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn arbiter_messages_light(n: usize) -> f64 {
    assert!(n > 0, "system must have at least one node");
    let n = n as f64;
    (n * n - 1.0) / n
}

/// Eq. 4: average messages per CS under *heavy* load, `M̄ = 3 − 2/N`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn arbiter_messages_heavy(n: usize) -> f64 {
    assert!(n > 0, "system must have at least one node");
    3.0 - 2.0 / n as f64
}

/// Eq. 3: average service time per CS under light load,
/// `X̄ = (1 − 1/N)·2·T_msg + T_req + T_exec`.
pub fn arbiter_delay_light(n: usize, p: ModelParams) -> f64 {
    assert!(n > 0, "system must have at least one node");
    let n = n as f64;
    (1.0 - 1.0 / n) * 2.0 * p.t_msg + p.t_req + p.t_exec
}

/// Eq. 6: average service time per CS under heavy load,
/// `X̄ = (1 − 1/N)·T_msg + T_req + (N/2 + 1)(T_msg + T_exec)`.
pub fn arbiter_delay_heavy(n: usize, p: ModelParams) -> f64 {
    assert!(n > 0, "system must have at least one node");
    let n = n as f64;
    (1.0 - 1.0 / n) * p.t_msg + p.t_req + (n / 2.0 + 1.0) * (p.t_msg + p.t_exec)
}

/// Eq. 7's stability condition for the forwarding phase: indefinite
/// forwarding is avoided when
/// `T_privilege + T_exec + T_req > T_fwd + T_fwd_req`,
/// where the left side is the time before the *new* arbiter seals and the
/// right side the worst-case forwarded-request path. Returns `true` when
/// the inequality holds.
pub fn forwarding_is_stable(
    t_privilege: f64,
    t_exec: f64,
    t_req: f64,
    t_fwd: f64,
    t_fwd_req: f64,
) -> bool {
    t_privilege + t_exec + t_req > t_fwd + t_fwd_req
}

/// Ricart–Agrawala message cost: exactly `2(N − 1)` at every load.
pub fn ricart_agrawala_messages(n: usize) -> f64 {
    assert!(n > 0, "system must have at least one node");
    2.0 * (n as f64 - 1.0)
}

/// Suzuki–Kasami message cost when the requester does not hold the token:
/// `N` (an `N−1` REQUEST broadcast plus the token transfer); `0` when it
/// does. Under uniform load the expectation is `N(1 − 1/N) = N − 1`.
pub fn suzuki_kasami_messages(n: usize) -> f64 {
    assert!(n > 0, "system must have at least one node");
    let n = n as f64;
    n * (1.0 - 1.0 / n)
}

/// Raymond's cost under heavy load: approximately 4 messages per CS
/// (the figure the paper quotes when claiming to beat Raymond's tree
/// algorithm).
pub fn raymond_messages_heavy() -> f64 {
    4.0
}

/// Raymond's typical cost under light load on a balanced binary tree:
/// `≈ 2·(2/3)·log₂ N ≈ 1.33 log₂ N` (Raymond's own estimate of the average
/// distance to the token, doubled for the request + privilege traversal).
pub fn raymond_messages_light(n: usize) -> f64 {
    assert!(n > 0, "system must have at least one node");
    if n == 1 {
        return 0.0;
    }
    4.0 / 3.0 * (n as f64).log2()
}

/// Centralized coordinator cost: 3 messages for a non-coordinator
/// requester, 0 for the coordinator; `3(1 − 1/N)` in expectation.
pub fn centralized_messages(n: usize) -> f64 {
    assert!(n > 0, "system must have at least one node");
    3.0 * (1.0 - 1.0 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn light_load_tends_to_n() {
        // Eq. 2: M̄ → N for large N.
        assert!((arbiter_messages_light(1_000) - 1_000.0).abs() < 0.01);
        // Exact small-N values: (N²−1)/N.
        assert!((arbiter_messages_light(5) - 24.0 / 5.0).abs() < 1e-12);
        assert!((arbiter_messages_light(10) - 99.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_load_tends_to_three() {
        // Eq. 5: M̄ → 3 for large N.
        assert!((arbiter_messages_heavy(1_000) - 3.0).abs() < 0.01);
        assert!((arbiter_messages_heavy(10) - 2.8).abs() < 1e-12);
        assert!((arbiter_messages_heavy(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_headline_comparison_holds() {
        // At high load the arbiter beats Raymond (≈4) and Ricart–Agrawala.
        for n in [5, 10, 50, 100] {
            assert!(arbiter_messages_heavy(n) < raymond_messages_heavy());
            assert!(arbiter_messages_heavy(n) < ricart_agrawala_messages(n));
        }
    }

    #[test]
    fn delay_formulas_with_paper_params() {
        let p = ModelParams::paper();
        // Eq. 3 with N=10: 0.9·0.2 + 0.1 + 0.1 = 0.38.
        assert!((arbiter_delay_light(10, p) - 0.38).abs() < 1e-12);
        // Eq. 6 with N=10: 0.9·0.1 + 0.1 + 6·0.2 = 1.39.
        assert!((arbiter_delay_heavy(10, p) - 1.39).abs() < 1e-12);
        // Heavy-load delay grows linearly with N.
        assert!(arbiter_delay_heavy(20, p) > arbiter_delay_heavy(10, p));
    }

    #[test]
    fn forwarding_stability_inequality() {
        // Paper's worked condition: generous left side is stable.
        assert!(forwarding_is_stable(0.1, 0.1, 0.1, 0.1, 0.05));
        assert!(!forwarding_is_stable(0.01, 0.01, 0.01, 0.1, 0.1));
    }

    #[test]
    fn baseline_models() {
        assert_eq!(ricart_agrawala_messages(10), 18.0);
        assert_eq!(suzuki_kasami_messages(10), 9.0);
        assert!((raymond_messages_light(16) - 4.0 / 3.0 * 4.0).abs() < 1e-12);
        assert_eq!(raymond_messages_light(1), 0.0);
        assert!((centralized_messages(10) - 2.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = arbiter_messages_light(0);
    }
}
