//! A batch-service queueing model of the arbiter algorithm.
//!
//! The paper analyzes only the load extremes (Eqs. 1–6). This module
//! models the *whole* load range: the system alternates collection windows
//! and Q-list service cycles, so it behaves like a batch-service queue
//! whose batch size `B` is fixed by flow balance — the requests arriving
//! during one cycle are exactly the batch served by the next:
//!
//! ```text
//! B = Λ · T_cycle(B),   T_cycle(B) = T_req + T_msg + B·(T_msg + T_exec)
//! ```
//!
//! with `Λ = N·λ` the system arrival rate. Solving gives
//! `B = Λ(T_req + T_msg) / (1 − Λ(T_msg + T_exec))`, clamped to `[1, N]`
//! (below one request per cycle the light-load analysis applies; the batch
//! cannot exceed one outstanding request per node). Message and delay
//! predictions then follow from per-cycle accounting and interpolate the
//! paper's Figure 3/4 curves, meeting Eq. 1/3 at `B → 1` and Eq. 4/6's
//! asymptotes at `B → N`.

use crate::formulas::ModelParams;

/// The predicted steady-state batch (Q-list) size at per-node rate
/// `lambda`, clamped to `[1, n]`.
///
/// # Panics
///
/// Panics if `n == 0` or `lambda` is not positive.
pub fn batch_size(lambda: f64, n: usize, p: ModelParams) -> f64 {
    assert!(n > 0, "system must have at least one node");
    assert!(lambda > 0.0, "arrival rate must be positive");
    let big_lambda = lambda * n as f64;
    let service = p.t_msg + p.t_exec;
    let denom = 1.0 - big_lambda * service;
    let b = if denom <= 0.0 {
        // Past saturation the batch is everyone.
        n as f64
    } else {
        big_lambda * (p.t_req + p.t_msg) / denom
    };
    b.clamp(1.0, n as f64)
}

/// Predicted messages per critical section at per-node rate `lambda`.
///
/// Per cycle of batch `B`: `B(1 − 1/N)` REQUESTs (the arbiter's own is
/// free), `B` PRIVILEGE transfers, and one NEW-ARBITER broadcast of
/// `N − 1 − [B = 1]` messages (the single-entry broadcast skips the sole
/// requester, paper §3.1).
pub fn predicted_messages(lambda: f64, n: usize, p: ModelParams) -> f64 {
    let b = batch_size(lambda, n, p);
    let nf = n as f64;
    let broadcast = if b < 1.5 { nf - 2.0 } else { nf - 1.0 };
    (1.0 - 1.0 / nf) + 1.0 + broadcast.max(0.0) / b
}

/// Predicted request-to-completion delay (seconds) at per-node rate
/// `lambda`: request flight, residual collection wait, half a batch of
/// predecessors, own token hop and execution.
pub fn predicted_delay(lambda: f64, n: usize, p: ModelParams) -> f64 {
    let b = batch_size(lambda, n, p);
    let nf = n as f64;
    (1.0 - 1.0 / nf) * p.t_msg          // request to the arbiter
        + p.t_req                        // collection window
        + (b - 1.0) / 2.0 * (p.t_msg + p.t_exec) // predecessors in the batch
        + p.t_msg * (1.0 - 1.0 / nf)     // the token's hop to us
        + p.t_exec // our own section
}

/// The per-node arrival rate at which the system saturates
/// (`Λ·(T_msg + T_exec) = 1`).
pub fn saturation_rate(n: usize, p: ModelParams) -> f64 {
    assert!(n > 0, "system must have at least one node");
    1.0 / (n as f64 * (p.t_msg + p.t_exec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formulas;

    const P: ModelParams = ModelParams {
        t_msg: 0.1,
        t_exec: 0.1,
        t_req: 0.1,
    };

    #[test]
    fn batch_size_grows_with_load_and_clamps() {
        let light = batch_size(0.01, 10, P);
        let mid = batch_size(0.3, 10, P);
        let heavy = batch_size(10.0, 10, P);
        assert_eq!(light, 1.0, "light load is one request per cycle");
        assert!(mid > 1.0 && mid < 10.0, "mid load batches partially: {mid}");
        assert_eq!(heavy, 10.0, "overload saturates the batch at N");
    }

    #[test]
    fn messages_meet_paper_formulas_at_the_extremes() {
        // B → 1 reproduces the light-load count under our broadcast
        // accounting (N messages; Eq. 1 gives (N²−1)/N ≈ N).
        let light = predicted_messages(0.01, 10, P);
        assert!(
            (light - 10.0 * (1.0 - 1.0 / 10.0) - 0.1).abs() < 1.5,
            "light ≈ N: {light}"
        );
        assert!((light - formulas::arbiter_messages_light(10)).abs() < 1.0);
        // B → N reproduces Eq. 4 exactly.
        let heavy = predicted_messages(10.0, 10, P);
        assert!(
            (heavy - formulas::arbiter_messages_heavy(10)).abs() < 1e-9,
            "heavy {heavy}"
        );
    }

    #[test]
    fn model_matches_measured_fig3_mid_load() {
        // Measured values from EXPERIMENTS.md (N=10, T_req=0.1):
        //   λ=0.125 → 9.17,  λ=0.30 → 7.24,  λ=0.45 → 3.70.
        for (lambda, measured) in [(0.125, 9.17), (0.30, 7.24), (0.45, 3.70)] {
            let predicted = predicted_messages(lambda, 10, P);
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.30,
                "λ={lambda}: model {predicted:.2} vs measured {measured:.2} (err {err:.2})"
            );
        }
    }

    #[test]
    fn model_matches_measured_fig4_mid_load() {
        // Measured delays (N=10, T_req=0.1): λ=0.05 → 0.394, λ=0.30 → 0.591.
        for (lambda, measured) in [(0.05, 0.394), (0.30, 0.591)] {
            let predicted = predicted_delay(lambda, 10, P);
            let err = (predicted - measured).abs() / measured;
            assert!(
                err < 0.30,
                "λ={lambda}: model {predicted:.3} vs measured {measured:.3}"
            );
        }
    }

    #[test]
    fn delay_meets_eq3_at_light_load() {
        let light = predicted_delay(0.001, 10, P);
        let eq3 = formulas::arbiter_delay_light(10, P);
        assert!((light - eq3).abs() < 0.02, "{light} vs Eq.3 {eq3}");
    }

    #[test]
    fn saturation_rate_matches_capacity() {
        // N=10, 0.2 s per section => 0.5 CS/s/node.
        assert!((saturation_rate(10, P) - 0.5).abs() < 1e-12);
        // Figure 3's knee sits just below this rate (measured collapse
        // between λ=0.45 and λ=0.65).
        assert!(batch_size(0.45, 10, P) < 10.0);
        assert_eq!(batch_size(0.65, 10, P), 10.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn rejects_nonpositive_rate() {
        let _ = batch_size(0.0, 10, P);
    }
}
