//! Plain-text table and CSV rendering for experiment output.
//!
//! Every experiment in the harness prints one [`Table`]: a header row and
//! numeric data rows, renderable as an aligned ASCII table (for the
//! terminal) or CSV (for plotting).

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A single cell value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cell {
    /// A text label.
    Text(String),
    /// A number rendered with a fixed number of decimals.
    Num(f64),
    /// An integer count.
    Int(u64),
}

impl Cell {
    fn render(&self, decimals: usize) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v) => {
                if v.is_nan() {
                    "-".to_owned()
                } else {
                    format!("{v:.decimals$}")
                }
            }
            Cell::Int(v) => v.to_string(),
        }
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Num(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as u64)
    }
}

/// A titled table of experiment results.
///
/// # Examples
///
/// ```
/// use tokq_analysis::report::Table;
///
/// let mut t = Table::new("demo", &["x", "y"]);
/// t.row(vec![1.0.into(), 2.5.into()]);
/// let ascii = t.to_ascii();
/// assert!(ascii.contains("demo"));
/// assert!(t.to_csv().starts_with("x,y\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// The table's title (the figure/table id it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
    /// Decimal places for numeric cells.
    pub decimals: usize,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            decimals: 4,
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header count.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(cells);
    }

    /// Renders an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.render(self.decimals)).collect())
            .collect();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders RFC-4180-style CSV (header row first).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .map(|c| {
                    let s = c.render(self.decimals);
                    if s.contains(',') || s.contains('"') {
                        format!("\"{}\"", s.replace('"', "\"\""))
                    } else {
                        s
                    }
                })
                .collect();
            let _ = writeln!(out, "{}", line.join(","));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("fig-test", &["lambda", "msgs", "name"]);
        t.row(vec![0.5.into(), 2.8123.into(), "arbiter".into()]);
        t.row(vec![1.0.into(), Cell::Num(f64::NAN), "x,y".into()]);
        t
    }

    #[test]
    fn ascii_alignment_and_title() {
        let s = sample().to_ascii();
        assert!(s.starts_with("## fig-test"));
        assert!(s.contains("lambda"));
        assert!(s.contains("2.8123"));
        // NaN renders as a dash.
        assert!(s.contains(" -"));
    }

    #[test]
    fn csv_escapes_commas() {
        let s = sample().to_csv();
        assert!(s.starts_with("lambda,msgs,name\n"));
        assert!(s.contains("\"x,y\""));
    }

    #[test]
    fn decimals_respected() {
        let mut t = Table::new("d", &["v"]);
        t.decimals = 1;
        t.row(vec![1.26.into()]);
        assert!(t.to_csv().contains("1.3"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec![1.0.into()]);
    }

    #[test]
    fn cell_conversions() {
        assert_eq!(Cell::from(3usize), Cell::Int(3));
        assert_eq!(Cell::from(3u64), Cell::Int(3));
        assert_eq!(Cell::from("hi"), Cell::Text("hi".into()));
    }
}
