//! Deterministic random number generation for simulations.
//!
//! Every random draw in a simulation flows through one [`SimRng`] seeded
//! from the run configuration, making every experiment reproducible
//! bit-for-bit. The generator is SplitMix64 — tiny, fast, and more than
//! adequate for workload sampling (we are not doing cryptography).

use serde::{Deserialize, Serialize};

/// A seeded SplitMix64 generator with the distribution samplers the
/// simulator needs (uniform, exponential, Bernoulli).
///
/// # Examples
///
/// ```
/// use tokq_simnet::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.exponential(2.0);
/// assert!(x >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derives an independent child generator (used to give each node its
    /// own stream so adding a node does not perturb the others).
    pub fn fork(&mut self) -> SimRng {
        SimRng {
            state: self.next_u64() ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits of uniformity.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        lo + (hi - lo) * self.next_f64()
    }

    /// A uniform integer draw in `[0, n)` via rejection-free modulo (bias
    /// negligible for the simulator's ranges).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "range must be non-empty");
        self.next_u64() % n
    }

    /// An exponential draw with the given `rate` (mean `1/rate`), via
    /// inverse-CDF sampling.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive, got {rate}");
        // 1 - U avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(SimRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn forked_streams_diverge() {
        let mut root = SimRng::new(1);
        let mut a = root.fork();
        let mut b = root.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SimRng::new(3);
        for _ in 0..1_000 {
            let x = r.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = SimRng::new(11);
        let rate = 4.0;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.01,
            "sample mean {mean} far from {}",
            1.0 / rate
        );
    }

    #[test]
    fn chance_extremes_and_frequency() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.25).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SimRng::new(9);
        for _ in 0..1_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn exponential_rejects_zero_rate() {
        let _ = SimRng::new(1).exponential(0.0);
    }
}
