//! The simulated network: delay models and unreliability knobs.
//!
//! The paper's analysis assumes a constant message delay `T_msg` between
//! any two nodes and no topology ([`DelayModel::Constant`] on a fully
//! connected logical network); the simulator generalizes this with
//! stochastic delays, loss, and duplication for robustness experiments.

use serde::{Deserialize, Serialize};
use tokq_protocol::types::TimeDelta;

use crate::rng::SimRng;

/// Distribution of per-message network delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this long (the paper's `T_msg`).
    Constant(TimeDelta),
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Minimum delay.
        lo: TimeDelta,
        /// Maximum delay (exclusive).
        hi: TimeDelta,
    },
    /// `base` plus an exponential tail with the given mean — a common
    /// model of queueing jitter on top of propagation delay.
    ExponentialTail {
        /// Fixed propagation component.
        base: TimeDelta,
        /// Mean of the exponential jitter component.
        mean_tail: TimeDelta,
    },
}

impl DelayModel {
    /// The paper's constant 0.1-unit message delay.
    pub fn paper() -> Self {
        DelayModel::Constant(TimeDelta::from_millis(100))
    }

    /// Samples one delay.
    pub fn sample(&self, rng: &mut SimRng) -> TimeDelta {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                let l = lo.as_secs_f64();
                let h = hi.as_secs_f64().max(l);
                TimeDelta::from_secs_f64(rng.uniform(l, h))
            }
            DelayModel::ExponentialTail { base, mean_tail } => {
                let mean = mean_tail.as_secs_f64();
                let tail = if mean > 0.0 {
                    rng.exponential(1.0 / mean)
                } else {
                    0.0
                };
                base.saturating_add(TimeDelta::from_secs_f64(tail))
            }
        }
    }

    /// The model's mean delay (useful for timeout heuristics).
    pub fn mean(&self) -> TimeDelta {
        match *self {
            DelayModel::Constant(d) => d,
            DelayModel::Uniform { lo, hi } => {
                TimeDelta::from_secs_f64((lo.as_secs_f64() + hi.as_secs_f64()) / 2.0)
            }
            DelayModel::ExponentialTail { base, mean_tail } => base.saturating_add(mean_tail),
        }
    }
}

impl Default for DelayModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Unreliability parameters of the simulated network.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Unreliability {
    /// Probability an individual message is silently dropped.
    pub loss: f64,
    /// Probability a delivered message is delivered twice.
    pub duplication: f64,
}

impl Unreliability {
    /// A perfectly reliable network (the paper's fault-free evaluation).
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A lossy network dropping each message with probability `loss`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is outside `[0, 1]`.
    pub fn lossy(loss: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss), "loss must be a probability");
        Unreliability {
            loss,
            duplication: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_exact() {
        let mut rng = SimRng::new(1);
        let d = DelayModel::paper();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), TimeDelta::from_millis(100));
        }
        assert_eq!(d.mean(), TimeDelta::from_millis(100));
    }

    #[test]
    fn uniform_model_in_bounds() {
        let mut rng = SimRng::new(2);
        let d = DelayModel::Uniform {
            lo: TimeDelta::from_millis(10),
            hi: TimeDelta::from_millis(20),
        };
        for _ in 0..1_000 {
            let s = d.sample(&mut rng);
            assert!(s >= TimeDelta::from_millis(10) && s < TimeDelta::from_millis(20));
        }
        assert_eq!(d.mean(), TimeDelta::from_millis(15));
    }

    #[test]
    fn exponential_tail_at_least_base() {
        let mut rng = SimRng::new(3);
        let d = DelayModel::ExponentialTail {
            base: TimeDelta::from_millis(5),
            mean_tail: TimeDelta::from_millis(10),
        };
        let mut sum = 0.0;
        for _ in 0..50_000 {
            let s = d.sample(&mut rng);
            assert!(s >= TimeDelta::from_millis(5));
            sum += s.as_secs_f64();
        }
        let mean = sum / 50_000.0;
        assert!((mean - 0.015).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn zero_tail_degenerates_to_constant() {
        let mut rng = SimRng::new(4);
        let d = DelayModel::ExponentialTail {
            base: TimeDelta::from_millis(7),
            mean_tail: TimeDelta::ZERO,
        };
        assert_eq!(d.sample(&mut rng), TimeDelta::from_millis(7));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn lossy_validates() {
        let _ = Unreliability::lossy(1.5);
    }
}
