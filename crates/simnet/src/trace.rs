//! Structured execution traces, used to reproduce the paper's Figure 2
//! timeline and to debug protocol runs.

use std::fmt;

use serde::{Deserialize, Serialize};
use tokq_obs::{Event, Level};
use tokq_protocol::types::NodeId;

use crate::time::SimTime;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// An application request arrived at the node.
    Arrival,
    /// The node transmitted a message.
    Sent {
        /// Destination.
        to: NodeId,
        /// Message kind label.
        kind: String,
    },
    /// The node received a message.
    Received {
        /// Source.
        from: NodeId,
        /// Message kind label.
        kind: String,
    },
    /// The node entered its critical section.
    EnterCs,
    /// The node exited its critical section.
    ExitCs,
    /// A protocol note.
    Note(String),
    /// The node crashed.
    Crashed,
    /// The node recovered.
    Recovered,
}

impl TraceKind {
    /// Trace target in the shared [`tokq_obs`] schema, matching the
    /// targets the threaded runtime uses (`net`, `node`, `arbiter`).
    pub fn target(&self) -> &'static str {
        match self {
            TraceKind::Sent { .. } | TraceKind::Received { .. } => "net",
            TraceKind::Note(_) => "arbiter",
            _ => "node",
        }
    }

    /// Verbosity level in the shared [`tokq_obs`] schema.
    pub fn level(&self) -> Level {
        match self {
            TraceKind::Sent { .. } | TraceKind::Received { .. } => Level::Trace,
            TraceKind::Crashed | TraceKind::Recovered => Level::Info,
            _ => Level::Debug,
        }
    }
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// The node it happened at.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

impl TraceEvent {
    /// Converts into the shared [`tokq_obs`] event schema.
    ///
    /// Event names and fields match what the threaded runtime emits
    /// (`msg_sent`, `msg_recv`, `cs_granted`, `cs_released`, note labels,
    /// `crashed`, `recovered`), so a simulator JSONL stream and a runtime
    /// one can be diffed line-for-line apart from the `ts`/`src` stamps.
    pub fn to_obs_event(&self) -> Event {
        let ev = match &self.kind {
            TraceKind::Arrival => Event::new("node", Level::Debug, "arrival"),
            TraceKind::Sent { to, kind } => Event::new("net", Level::Trace, "msg_sent")
                .field("to", &to.0)
                .field("kind", kind),
            TraceKind::Received { from, kind } => Event::new("net", Level::Trace, "msg_recv")
                .field("from", &from.0)
                .field("kind", kind),
            TraceKind::EnterCs => Event::new("node", Level::Debug, "cs_granted"),
            TraceKind::ExitCs => Event::new("node", Level::Debug, "cs_released"),
            TraceKind::Note(label) => Event::new("arbiter", Level::Debug, label),
            TraceKind::Crashed => Event::new("node", Level::Info, "crashed"),
            TraceKind::Recovered => Event::new("node", Level::Info, "recovered"),
        };
        let mut ev = ev.node(u64::from(self.node.0));
        ev.ts = self.at.as_secs_f64();
        ev
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:>4} ", self.at, self.node.to_string())?;
        match &self.kind {
            TraceKind::Arrival => write!(f, "request arrives"),
            TraceKind::Sent { to, kind } => write!(f, "sends {kind} to {to}"),
            TraceKind::Received { from, kind } => write!(f, "receives {kind} from {from}"),
            TraceKind::EnterCs => write!(f, "ENTERS critical section"),
            TraceKind::ExitCs => write!(f, "exits critical section"),
            TraceKind::Note(s) => write!(f, "[{s}]"),
            TraceKind::Crashed => write!(f, "CRASHES"),
            TraceKind::Recovered => write!(f, "recovers"),
        }
    }
}

/// A bounded in-memory trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Trace {
    /// A trace that records up to `cap` events, or nothing when disabled.
    pub fn new(enabled: bool, cap: usize) -> Self {
        Trace {
            enabled,
            cap,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// Records an event (no-op when disabled or full).
    pub fn push(&mut self, at: SimTime, node: NodeId, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.events.push(TraceEvent { at, node, kind });
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if events were discarded after hitting the cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        if self.truncated {
            out.push_str("... (trace truncated)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false, 10);
        t.push(SimTime::ZERO, NodeId(0), TraceKind::Arrival);
        assert!(t.events().is_empty());
        assert!(!t.truncated());
    }

    #[test]
    fn cap_truncates() {
        let mut t = Trace::new(true, 2);
        for i in 0..5 {
            t.push(SimTime::from_nanos(i), NodeId(0), TraceKind::EnterCs);
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        assert!(t.render().contains("truncated"));
    }

    fn all_kinds() -> Vec<TraceKind> {
        vec![
            TraceKind::Arrival,
            TraceKind::Sent {
                to: NodeId(4),
                kind: "PRIVILEGE".into(),
            },
            TraceKind::Received {
                from: NodeId(1),
                kind: "REQUEST".into(),
            },
            TraceKind::EnterCs,
            TraceKind::ExitCs,
            TraceKind::Note("qlist_sealed".into()),
            TraceKind::Crashed,
            TraceKind::Recovered,
        ]
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;
        use serde::{Deserialize, Serialize};

        fn msg_kind() -> BoxedStrategy<String> {
            prop_oneof![
                Just("REQUEST".to_owned()),
                Just("PRIVILEGE".to_owned()),
                Just("NEW-ARBITER".to_owned()),
                Just("TOKEN-WARNING".to_owned()),
            ]
            .boxed()
        }

        fn kind_strategy() -> BoxedStrategy<TraceKind> {
            prop_oneof![
                Just(TraceKind::Arrival),
                (0u32..64, msg_kind()).prop_map(|(to, kind)| TraceKind::Sent {
                    to: NodeId(to),
                    kind
                }),
                (0u32..64, msg_kind()).prop_map(|(from, kind)| TraceKind::Received {
                    from: NodeId(from),
                    kind
                }),
                Just(TraceKind::EnterCs),
                Just(TraceKind::ExitCs),
                Just(TraceKind::Note("token_regenerated".to_owned())),
                // Exercises JSON string escaping in the JSONL schema.
                Just(TraceKind::Note("weird \"label\"\n\t\\x".to_owned())),
                Just(TraceKind::Crashed),
                Just(TraceKind::Recovered),
            ]
            .boxed()
        }

        proptest! {
            #[test]
            fn jsonl_reparse_is_lossless(
                at_ns in 0u64..2_000_000_000_000,
                node in 0u32..128,
                kind in kind_strategy(),
            ) {
                let ev = TraceEvent {
                    at: SimTime::from_nanos(at_ns),
                    node: NodeId(node),
                    kind,
                };
                // Serde value-tree round trip.
                let back = TraceEvent::deserialize(&ev.serialize()).expect("serde");
                prop_assert_eq!(&back, &ev);
                // Obs JSONL schema round trip: render, parse, compare.
                let mut obs_ev = ev.to_obs_event();
                obs_ev.src = tokq_obs::event::Source::Sim;
                let line = obs_ev.to_jsonl();
                let reparsed = Event::from_jsonl(&line).expect("jsonl");
                prop_assert_eq!(reparsed, obs_ev);
            }
        }
    }

    #[test]
    fn serde_roundtrip_every_kind() {
        use serde::{Deserialize, Serialize};
        for kind in all_kinds() {
            let ev = TraceEvent {
                at: SimTime::from_secs_f64(3.25),
                node: NodeId(7),
                kind,
            };
            let v = ev.serialize();
            let back = TraceEvent::deserialize(&v).expect("roundtrip");
            assert_eq!(back, ev);
        }
    }

    #[test]
    fn obs_event_jsonl_roundtrips_every_kind() {
        use tokq_obs::event::Source;
        for kind in all_kinds() {
            let ev = TraceEvent {
                at: SimTime::from_nanos(1_234_567_890),
                node: NodeId(3),
                kind,
            };
            let mut obs_ev = ev.to_obs_event();
            obs_ev.src = Source::Sim;
            let line = obs_ev.to_jsonl();
            let back = Event::from_jsonl(&line).expect("jsonl parse");
            assert_eq!(back, obs_ev, "lossy JSONL for {line}");
            assert_eq!(back.node, Some(3));
            assert_eq!(back.target, ev.kind.target());
            assert_eq!(back.level, ev.kind.level());
        }
    }

    #[test]
    fn obs_event_names_match_runtime_vocabulary() {
        let names: Vec<String> = all_kinds()
            .into_iter()
            .map(|kind| {
                TraceEvent {
                    at: SimTime::ZERO,
                    node: NodeId(0),
                    kind,
                }
                .to_obs_event()
                .name
            })
            .collect();
        assert_eq!(
            names,
            [
                "arrival",
                "msg_sent",
                "msg_recv",
                "cs_granted",
                "cs_released",
                "qlist_sealed",
                "crashed",
                "recovered"
            ]
        );
    }

    #[test]
    fn display_formats_read_naturally() {
        let ev = TraceEvent {
            at: SimTime::from_secs_f64(1.5),
            node: NodeId(2),
            kind: TraceKind::Sent {
                to: NodeId(4),
                kind: "PRIVILEGE".into(),
            },
        };
        let s = ev.to_string();
        assert!(s.contains("n2"), "{s}");
        assert!(s.contains("sends PRIVILEGE to n4"), "{s}");
    }
}
