//! Structured execution traces, used to reproduce the paper's Figure 2
//! timeline and to debug protocol runs.

use std::fmt;

use serde::{Deserialize, Serialize};
use tokq_protocol::types::NodeId;

use crate::time::SimTime;

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// An application request arrived at the node.
    Arrival,
    /// The node transmitted a message.
    Sent {
        /// Destination.
        to: NodeId,
        /// Message kind label.
        kind: String,
    },
    /// The node received a message.
    Received {
        /// Source.
        from: NodeId,
        /// Message kind label.
        kind: String,
    },
    /// The node entered its critical section.
    EnterCs,
    /// The node exited its critical section.
    ExitCs,
    /// A protocol note.
    Note(String),
    /// The node crashed.
    Crashed,
    /// The node recovered.
    Recovered,
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub at: SimTime,
    /// The node it happened at.
    pub node: NodeId,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:>4} ", self.at, self.node.to_string())?;
        match &self.kind {
            TraceKind::Arrival => write!(f, "request arrives"),
            TraceKind::Sent { to, kind } => write!(f, "sends {kind} to {to}"),
            TraceKind::Received { from, kind } => write!(f, "receives {kind} from {from}"),
            TraceKind::EnterCs => write!(f, "ENTERS critical section"),
            TraceKind::ExitCs => write!(f, "exits critical section"),
            TraceKind::Note(s) => write!(f, "[{s}]"),
            TraceKind::Crashed => write!(f, "CRASHES"),
            TraceKind::Recovered => write!(f, "recovers"),
        }
    }
}

/// A bounded in-memory trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    enabled: bool,
    cap: usize,
    events: Vec<TraceEvent>,
    truncated: bool,
}

impl Trace {
    /// A trace that records up to `cap` events, or nothing when disabled.
    pub fn new(enabled: bool, cap: usize) -> Self {
        Trace {
            enabled,
            cap,
            events: Vec::new(),
            truncated: false,
        }
    }

    /// Records an event (no-op when disabled or full).
    pub fn push(&mut self, at: SimTime, node: NodeId, kind: TraceKind) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.cap {
            self.truncated = true;
            return;
        }
        self.events.push(TraceEvent { at, node, kind });
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// True if events were discarded after hitting the cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Renders the trace as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        if self.truncated {
            out.push_str("... (trace truncated)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new(false, 10);
        t.push(SimTime::ZERO, NodeId(0), TraceKind::Arrival);
        assert!(t.events().is_empty());
        assert!(!t.truncated());
    }

    #[test]
    fn cap_truncates() {
        let mut t = Trace::new(true, 2);
        for i in 0..5 {
            t.push(SimTime::from_nanos(i), NodeId(0), TraceKind::EnterCs);
        }
        assert_eq!(t.events().len(), 2);
        assert!(t.truncated());
        assert!(t.render().contains("truncated"));
    }

    #[test]
    fn display_formats_read_naturally() {
        let ev = TraceEvent {
            at: SimTime::from_secs_f64(1.5),
            node: NodeId(2),
            kind: TraceKind::Sent {
                to: NodeId(4),
                kind: "PRIVILEGE".into(),
            },
        };
        let s = ev.to_string();
        assert!(s.contains("n2"), "{s}");
        assert!(s.contains("sends PRIVILEGE to n4"), "{s}");
    }
}
