//! The discrete-event simulation driver.
//!
//! [`Simulation`] owns `n` protocol state machines, a virtual clock, an
//! event heap, a network model, a workload, and an optional fault plan. It
//! enforces the mutual-exclusion safety property *online*: any overlapping
//! critical sections abort the run immediately.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use serde::{Deserialize, Serialize};
use tokq_obs::{Obs, Source};
use tokq_protocol::api::{Protocol, ProtocolFactory, ProtocolMessage};
use tokq_protocol::event::{Action, Input};
use tokq_protocol::types::{NodeId, TimeDelta};

use crate::arrivals::{ArrivalProcess, Pacing, WorkloadSpec};
use crate::fault::FaultPlan;
use crate::metrics::{Collector, Report};
use crate::network::{DelayModel, Unreliability};
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{Trace, TraceEvent, TraceKind};

/// Static parameters of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of nodes.
    pub n: usize,
    /// Network delay model (`T_msg`).
    pub delay: DelayModel,
    /// Critical-section execution time (`T_exec`).
    pub t_exec: TimeDelta,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
    /// Base network unreliability.
    pub unreliability: Unreliability,
    /// Critical sections discarded before measurement starts.
    pub warmup_cs: u64,
    /// Hard stop on virtual time, if any.
    pub max_sim_time: Option<SimTime>,
    /// Record an execution trace.
    pub trace: bool,
    /// Maximum trace events retained.
    pub trace_cap: usize,
}

impl SimConfig {
    /// The paper's §3.3 parameters: `T_msg = T_exec = 0.1` units on a
    /// reliable network.
    pub fn paper_defaults(n: usize) -> Self {
        SimConfig {
            n,
            delay: DelayModel::paper(),
            t_exec: TimeDelta::from_millis(100),
            seed: 0xB1EF_CAFE,
            unreliability: Unreliability::reliable(),
            warmup_cs: 500,
            max_sim_time: None,
            trace: false,
            trace_cap: 100_000,
        }
    }

    /// Replaces the seed, returning `self` for chaining.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables trace recording, returning `self` for chaining.
    #[must_use]
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }
}

#[derive(Debug)]
enum EventKind<M, T> {
    Deliver { to: NodeId, from: NodeId, msg: M },
    Timer { node: NodeId, timer: T, gen: u64 },
    Arrival { node: NodeId },
    CsExit { node: NodeId, gen: u64 },
    Crash { node: NodeId },
    Recover { node: NodeId },
}

struct HeapEntry<M, T> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M, T>,
}

impl<M, T> PartialEq for HeapEntry<M, T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M, T> Eq for HeapEntry<M, T> {}
impl<M, T> PartialOrd for HeapEntry<M, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M, T> Ord for HeapEntry<M, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse for earliest-first, with the
        // insertion sequence as a deterministic tie-break.
        Reverse((self.at, self.seq)).cmp(&Reverse((other.at, other.seq)))
    }
}

struct NodeDriver {
    alive: bool,
    in_cs: bool,
    cs_gen: u64,
    /// (arrived_at, requested_at) of the request inside the protocol.
    outstanding: Option<(SimTime, SimTime)>,
    /// Arrival timestamps waiting to be issued to the protocol.
    app_queue: VecDeque<SimTime>,
    process: Box<dyn ArrivalProcess>,
}

/// A deterministic discrete-event simulation of one protocol instance set.
///
/// # Examples
///
/// ```
/// use tokq_protocol::arbiter::ArbiterConfig;
/// use tokq_simnet::arrivals::Poisson;
/// use tokq_simnet::sim::{SimConfig, Simulation};
///
/// let report = Simulation::build(
///     SimConfig::paper_defaults(5),
///     ArbiterConfig::basic(),
///     Poisson::new(1.0),
/// )
/// .run_until_cs(200);
/// assert!(report.cs_measured >= 200);
/// ```
pub struct Simulation<P: Protocol> {
    cfg: SimConfig,
    nodes: Vec<P>,
    drivers: Vec<NodeDriver>,
    heap: BinaryHeap<HeapEntry<P::Msg, P::Timer>>,
    seq: u64,
    now: SimTime,
    rng: SimRng,
    timer_gen: HashMap<(u32, P::Timer), u64>,
    collector: Collector,
    trace: Trace,
    obs: Obs,
    faults: FaultPlan,
    /// Remaining deterministic token drops: (active_from, remaining).
    token_drops: Vec<(SimTime, u32)>,
    /// Which node is currently inside its critical section, if any.
    cs_holder: Option<NodeId>,
}

impl<P: Protocol> std::fmt::Debug for Simulation<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.cfg.n)
            .field("now", &self.now)
            .field("cs_total", &self.collector.cs_total())
            .finish_non_exhaustive()
    }
}

impl<P: Protocol> Simulation<P> {
    /// Builds a simulation over `factory`-built nodes fed by `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.n == 0`.
    pub fn build<F, W>(cfg: SimConfig, factory: F, workload: W) -> Self
    where
        F: ProtocolFactory<Node = P>,
        W: WorkloadSpec,
    {
        assert!(cfg.n > 0, "simulation needs at least one node");
        let mut rng = SimRng::new(cfg.seed);
        let nodes = factory.build_all(cfg.n);
        let drivers: Vec<NodeDriver> = (0..cfg.n)
            .map(|i| NodeDriver {
                alive: true,
                in_cs: false,
                cs_gen: 0,
                outstanding: None,
                app_queue: VecDeque::new(),
                process: Box::new(workload.build(i, cfg.n)),
            })
            .collect();
        let collector = Collector::new(cfg.n, cfg.warmup_cs);
        let trace = Trace::new(cfg.trace, cfg.trace_cap);
        let mut sim = Simulation {
            nodes,
            drivers,
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            timer_gen: HashMap::new(),
            collector,
            trace,
            obs: Obs::disabled(Source::Sim),
            faults: FaultPlan::none(),
            token_drops: Vec::new(),
            cs_holder: None,
            rng: rng.fork(),
            cfg,
        };
        let _ = rng;
        // Boot every node, then seed the first arrival of every stream.
        for i in 0..sim.cfg.n {
            sim.dispatch(NodeId::from_index(i), Input::Start);
        }
        for i in 0..sim.cfg.n {
            sim.schedule_next_arrival(NodeId::from_index(i));
        }
        sim
    }

    /// Routes every trace record through an observability handle in the
    /// shared [`tokq_obs`] event schema (stamped with virtual time in the
    /// [`Source::Sim`] clock domain), and records request-to-grant
    /// latencies into its `span_ns/cs_grant` histogram — the same metric
    /// names the threaded runtime uses, so sim and runtime output can be
    /// compared directly.
    ///
    /// Independent of [`SimConfig::trace`]: the in-memory [`Trace`] and
    /// the obs stream can be enabled separately.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = obs;
        self
    }

    /// The observability handle events are routed to.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Installs a fault plan (crashes, loss windows, token drops).
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        for (at, node, is_crash) in plan.node_events() {
            let kind = if is_crash {
                EventKind::Crash { node }
            } else {
                EventKind::Recover { node }
            };
            self.push_event(at, kind);
        }
        self.token_drops = plan.token_drops().collect();
        self.faults = plan;
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Runs until `target` critical sections have been *measured*
    /// (post-warmup), events run out, or the time bound hits.
    pub fn run_until_cs(mut self, target: u64) -> Report {
        self.pump(|sim| sim.collector.completed_after_warmup() >= target);
        self.finish()
    }

    /// Runs until virtual time `until` (or event exhaustion).
    pub fn run_until_time(mut self, until: SimTime) -> Report {
        self.pump(|sim| sim.now >= until);
        self.finish()
    }

    /// Runs until no events remain (finite workloads only).
    pub fn run_to_quiescence(mut self) -> Report {
        self.pump(|_| false);
        self.finish()
    }

    fn finish(self) -> Report {
        let mut report = self.collector.finish(self.now, self.cfg.seed);
        let _ = &mut report;
        report
    }

    /// Consumes the simulation returning both the report and the trace.
    pub fn run_until_cs_with_trace(mut self, target: u64) -> (Report, Trace) {
        self.pump(|sim| sim.collector.completed_after_warmup() >= target);
        let trace = std::mem::take(&mut self.trace);
        (self.finish(), trace)
    }

    /// Runs a finite workload to quiescence, returning report and trace.
    pub fn run_to_quiescence_with_trace(mut self) -> (Report, Trace) {
        self.pump(|_| false);
        let trace = std::mem::take(&mut self.trace);
        (self.finish(), trace)
    }

    // ------------------------------------------------------------------
    // Event machinery
    // ------------------------------------------------------------------

    fn push_event(&mut self, at: SimTime, kind: EventKind<P::Msg, P::Timer>) {
        self.seq += 1;
        self.heap.push(HeapEntry {
            at,
            seq: self.seq,
            kind,
        });
    }

    /// Records one occurrence into the in-memory trace and, when the obs
    /// filter (or flight recorder) wants it, the obs stream.
    fn record(&mut self, node: NodeId, kind: TraceKind) {
        if self.obs.enabled(kind.target(), kind.level()) {
            let ev = TraceEvent {
                at: self.now,
                node,
                kind: kind.clone(),
            };
            self.obs.emit_at(self.now.as_secs_f64(), ev.to_obs_event());
        }
        self.trace.push(self.now, node, kind);
    }

    fn pump(&mut self, stop: impl Fn(&Self) -> bool) {
        if stop(self) {
            return;
        }
        while let Some(entry) = self.heap.pop() {
            if let Some(maxt) = self.cfg.max_sim_time {
                if entry.at > maxt {
                    self.now = maxt;
                    break;
                }
            }
            debug_assert!(entry.at >= self.now, "event heap went backwards");
            self.now = entry.at;
            match entry.kind {
                EventKind::Arrival { node } => self.on_arrival(node),
                EventKind::Deliver { to, from, msg } => {
                    if self.drivers[to.index()].alive {
                        self.record(
                            to,
                            TraceKind::Received {
                                from,
                                kind: msg.kind().to_owned(),
                            },
                        );
                        self.dispatch(to, Input::Deliver { from, msg });
                    }
                }
                EventKind::Timer { node, timer, gen } => {
                    let live = self
                        .timer_gen
                        .get(&(node.0, timer))
                        .is_some_and(|&g| g == gen);
                    if live && self.drivers[node.index()].alive {
                        self.dispatch(node, Input::Timer(timer));
                    }
                }
                EventKind::CsExit { node, gen } => self.on_cs_exit(node, gen),
                EventKind::Crash { node } => self.on_crash(node),
                EventKind::Recover { node } => self.on_recover(node),
            }
            if stop(self) {
                break;
            }
        }
    }

    fn on_arrival(&mut self, node: NodeId) {
        let d = &mut self.drivers[node.index()];
        let alive = d.alive;
        if alive {
            self.collector.arrival();
            d.app_queue.push_back(self.now);
            self.record(node, TraceKind::Arrival);
        }
        // Open-loop streams keep their own cadence even across crashes;
        // closed-loop streams re-arm at completion instead.
        if self.drivers[node.index()].process.pacing() == Pacing::OpenLoop {
            self.schedule_next_arrival(node);
        }
        if alive {
            self.try_issue(node);
        }
    }

    fn schedule_next_arrival(&mut self, node: NodeId) {
        let d = &mut self.drivers[node.index()];
        if let Some(delay) = d.process.next_delay(&mut self.rng) {
            let at = self.now + delay;
            self.push_event(at, EventKind::Arrival { node });
        }
    }

    fn try_issue(&mut self, node: NodeId) {
        let d = &mut self.drivers[node.index()];
        if !d.alive || d.in_cs || d.outstanding.is_some() {
            return;
        }
        let Some(arrived_at) = d.app_queue.pop_front() else {
            return;
        };
        d.outstanding = Some((arrived_at, self.now));
        self.dispatch(node, Input::RequestCs);
    }

    fn on_cs_exit(&mut self, node: NodeId, gen: u64) {
        let d = &mut self.drivers[node.index()];
        if !d.alive || !d.in_cs || d.cs_gen != gen {
            return; // stale exit (crash intervened)
        }
        d.in_cs = false;
        debug_assert_eq!(self.cs_holder, Some(node));
        self.cs_holder = None;
        let (arrived_at, requested_at) = d
            .outstanding
            .take()
            .expect("a node in its CS has an outstanding request");
        self.collector
            .cs_completed(node, arrived_at, requested_at, self.now);
        self.record(node, TraceKind::ExitCs);
        self.dispatch(node, Input::CsDone);
        if self.drivers[node.index()].process.pacing() == Pacing::ClosedLoop {
            self.schedule_next_arrival(node);
        }
        self.try_issue(node);
    }

    fn on_crash(&mut self, node: NodeId) {
        let d = &mut self.drivers[node.index()];
        if !d.alive {
            return;
        }
        if d.in_cs {
            d.in_cs = false;
            d.cs_gen += 1;
            self.cs_holder = None;
        }
        d.outstanding = None;
        d.app_queue.clear();
        self.record(node, TraceKind::Crashed);
        self.dispatch(node, Input::Crash);
        self.drivers[node.index()].alive = false;
    }

    fn on_recover(&mut self, node: NodeId) {
        let d = &mut self.drivers[node.index()];
        if d.alive {
            return;
        }
        d.alive = true;
        self.record(node, TraceKind::Recovered);
        self.dispatch(node, Input::Recover);
    }

    fn dispatch(&mut self, node: NodeId, input: Input<P::Msg, P::Timer>) {
        let actions = self.nodes[node.index()].step(input);
        self.execute(node, actions);
    }

    fn execute(&mut self, src: NodeId, actions: Vec<Action<P::Msg, P::Timer>>) {
        for action in actions {
            match action {
                Action::Send { to, msg } => self.transmit(src, to, msg),
                Action::Broadcast { msg, except } => {
                    for i in 0..self.cfg.n {
                        let to = NodeId::from_index(i);
                        if to != src && !except.contains(&to) {
                            self.transmit(src, to, msg.clone());
                        }
                    }
                }
                Action::SetTimer { timer, after } => {
                    let gen = self.timer_gen.entry((src.0, timer)).or_insert(0);
                    *gen += 1;
                    let gen = *gen;
                    self.push_event(
                        self.now + after,
                        EventKind::Timer {
                            node: src,
                            timer,
                            gen,
                        },
                    );
                }
                Action::CancelTimer(timer) => {
                    *self.timer_gen.entry((src.0, timer)).or_insert(0) += 1;
                }
                Action::EnterCs => self.on_enter_cs(src),
                Action::Note(note) => {
                    self.collector.note(note);
                    self.record(src, TraceKind::Note(note.label().to_owned()));
                }
            }
        }
    }

    fn on_enter_cs(&mut self, node: NodeId) {
        if let Some(holder) = self.cs_holder {
            panic!(
                "MUTUAL EXCLUSION VIOLATED at {}: {} entered while {} is inside \
                 (algorithm {}, seed {})",
                self.now,
                node,
                holder,
                self.nodes[node.index()].algorithm(),
                self.cfg.seed
            );
        }
        self.cs_holder = Some(node);
        let d = &mut self.drivers[node.index()];
        debug_assert!(d.alive, "dead node entered CS");
        d.in_cs = true;
        d.cs_gen += 1;
        let gen = d.cs_gen;
        let (_, requested_at) = d
            .outstanding
            .expect("EnterCs without an outstanding request");
        self.collector.cs_entered(requested_at, self.now);
        let waited_ns = self.now.since(requested_at).as_nanos();
        self.obs.record_latency("cs_grant", waited_ns);
        self.record(node, TraceKind::EnterCs);
        let at = self.now + self.cfg.t_exec;
        self.push_event(at, EventKind::CsExit { node, gen });
    }

    fn transmit(&mut self, from: NodeId, to: NodeId, msg: P::Msg) {
        let kind = msg.kind();
        self.collector.message(kind);
        self.record(
            from,
            TraceKind::Sent {
                to,
                kind: kind.to_owned(),
            },
        );
        // Deterministic token-drop injection (paper §6's lost-token case).
        if crate::fault::is_token_kind(kind) {
            for drop in &mut self.token_drops {
                if self.now >= drop.0 && drop.1 > 0 {
                    drop.1 -= 1;
                    return;
                }
            }
        }
        if self.faults.crosses_partition(from, to, self.now) {
            return;
        }
        let loss = self
            .cfg
            .unreliability
            .loss
            .max(self.faults.extra_loss_at(self.now));
        if self.rng.chance(loss) {
            return;
        }
        let duplicate = self
            .rng
            .chance(self.cfg.unreliability.duplication)
            .then(|| msg.clone());
        let delay = self.cfg.delay.sample(&mut self.rng);
        self.push_event(self.now + delay, EventKind::Deliver { to, from, msg });
        if let Some(copy) = duplicate {
            let delay = self.cfg.delay.sample(&mut self.rng);
            self.push_event(
                self.now + delay,
                EventKind::Deliver {
                    to,
                    from,
                    msg: copy,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ClosedLoop, Poisson, Scripted};
    use tokq_protocol::centralized::CentralConfig;
    use tokq_protocol::ricart_agrawala::RaConfig;

    fn quick(n: usize) -> SimConfig {
        let mut c = SimConfig::paper_defaults(n).with_seed(42);
        c.warmup_cs = 0;
        c
    }

    #[test]
    fn run_until_cs_reaches_target() {
        let r = Simulation::build(quick(3), CentralConfig::default(), Poisson::new(2.0))
            .run_until_cs(500);
        assert!(r.cs_measured >= 500);
        assert!(r.sim_end_secs > 0.0);
    }

    #[test]
    fn max_sim_time_bounds_the_run() {
        let mut cfg = quick(3);
        cfg.max_sim_time = Some(SimTime::from_secs_f64(10.0));
        let r = Simulation::build(cfg, CentralConfig::default(), Poisson::new(1.0))
            .run_until_cs(1_000_000);
        assert!(r.sim_end_secs <= 10.0 + 1e-9);
        assert!(r.cs_measured < 1_000_000);
    }

    #[test]
    fn warmup_discards_early_sections() {
        let mut cfg = quick(2);
        cfg.warmup_cs = 100;
        let r =
            Simulation::build(cfg, CentralConfig::default(), Poisson::new(5.0)).run_until_cs(200);
        assert!(r.cs_total >= 300, "total includes warmup");
        assert!(r.cs_measured >= 200);
        assert!(r.messages_measured < r.messages_total);
    }

    #[test]
    fn scripted_workload_runs_to_quiescence() {
        use tokq_protocol::types::TimeDelta;
        let w = crate::arrivals::DynWorkload::new(|node, _| {
            if node == 1 {
                Box::new(Scripted::open_loop([TimeDelta::from_millis(10)]))
            } else {
                Box::new(Scripted::silent())
            }
        });
        let r = Simulation::build(quick(3), CentralConfig::default(), w).run_to_quiescence();
        assert_eq!(r.cs_total, 1);
        assert_eq!(r.per_node_cs, vec![0, 1, 0]);
        // Exactly REQUEST + GRANT + RELEASE.
        assert_eq!(r.messages_total, 3);
    }

    #[test]
    fn closed_loop_paces_on_completion() {
        use tokq_protocol::types::TimeDelta;
        let mut cfg = quick(2);
        cfg.max_sim_time = Some(SimTime::from_secs_f64(10.0));
        // Think time 0.9s + CS 0.1s (+ messages) => about 1 CS/sec/node.
        let r = Simulation::build(
            cfg,
            CentralConfig::default(),
            ClosedLoop {
                think: TimeDelta::from_millis(900),
            },
        )
        .run_until_cs(1_000_000);
        let per_sec = r.cs_total as f64 / r.sim_end_secs;
        assert!(
            (1.2..=2.2).contains(&per_sec),
            "closed loop rate {per_sec:.2} CS/s"
        );
    }

    #[test]
    fn loss_makes_permissionless_protocols_stall() {
        // RA with no recovery: a lost REPLY wedges the requester forever.
        let mut cfg = quick(4);
        cfg.unreliability = Unreliability::lossy(0.2);
        cfg.max_sim_time = Some(SimTime::from_secs_f64(2_000.0));
        let r = Simulation::build(cfg, RaConfig, Poisson::new(1.0)).run_until_cs(1_000_000);
        assert!(
            r.cs_measured < 1_000_000,
            "20% loss must eventually stall Ricart-Agrawala"
        );
    }

    #[test]
    fn duplication_does_not_violate_safety_for_centralized() {
        // The centralized coordinator queues duplicates but its single
        // grant token means safety holds; liveness holds because releases
        // regenerate grants.
        let mut cfg = quick(3);
        cfg.unreliability.duplication = 0.3;
        let r =
            Simulation::build(cfg, CentralConfig::default(), Poisson::new(2.0)).run_until_cs(300);
        assert!(r.cs_measured >= 300);
    }

    #[test]
    fn report_counts_messages_by_kind() {
        let r = Simulation::build(quick(3), CentralConfig::default(), Poisson::new(2.0))
            .run_until_cs(100);
        let req = r.kind_count("REQUEST");
        let grant = r.kind_count("GRANT");
        let rel = r.kind_count("RELEASE");
        assert!(req > 0 && grant > 0 && rel > 0);
        // Every remote grant pairs with a release.
        assert!((grant as i64 - rel as i64).abs() <= 1);
    }

    #[test]
    fn trace_capture_returns_events() {
        let mut cfg = quick(2);
        cfg.trace = true;
        let (r, trace) = Simulation::build(cfg, CentralConfig::default(), Poisson::new(2.0))
            .run_until_cs_with_trace(20);
        assert!(r.cs_measured >= 20);
        assert!(!trace.events().is_empty());
        let rendered = trace.render();
        assert!(rendered.contains("ENTERS"), "{rendered}");
    }
}
