//! Deterministic discrete-event network simulator for distributed mutual
//! exclusion protocols.
//!
//! The paper's evaluation (§3.3) ran an event-driven simulation of 10 nodes
//! generating Poisson request streams against constant message/execution
//! times. The authors' simulator is not available, so this crate rebuilds
//! that substrate: a virtual clock, an event heap with deterministic
//! tie-breaking, configurable delay/loss models, crash/recovery fault
//! plans, metrics with 95% confidence intervals, and structured traces.
//!
//! Any [`tokq_protocol::api::Protocol`] implementation can be simulated;
//! the simulator enforces the mutual-exclusion invariant online and panics
//! the run on any violation.
//!
//! # Example
//!
//! ```
//! use tokq_protocol::arbiter::ArbiterConfig;
//! use tokq_simnet::arrivals::Poisson;
//! use tokq_simnet::sim::{SimConfig, Simulation};
//!
//! // 10 nodes, the paper's parameters, moderate load.
//! let report = Simulation::build(
//!     SimConfig::paper_defaults(10),
//!     ArbiterConfig::basic(),
//!     Poisson::new(2.0),
//! )
//! .run_until_cs(500);
//! assert!(report.messages_per_cs() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod arrivals;
pub mod explore;
pub mod fault;
pub mod metrics;
pub mod network;
pub mod replay;
pub mod rng;
pub mod sim;
pub mod time;
pub mod trace;

pub use arrivals::{ArrivalProcess, ClosedLoop, Poisson, Scripted, WorkloadSpec};
pub use explore::{
    shrink_schedule, ExploreConfig, ExploreStats, Explorer, Violation, ViolationKind,
};
pub use fault::{Fault, FaultBudget, FaultPlan, Partition};
pub use metrics::Report;
pub use network::{DelayModel, Unreliability};
pub use replay::{random_schedule, replay, Replay, ReplayStep, Schedule, Step};
pub use rng::SimRng;
pub use sim::{SimConfig, Simulation};
pub use time::SimTime;
pub use trace::{Trace, TraceEvent, TraceKind};
