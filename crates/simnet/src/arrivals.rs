//! Arrival processes: how critical-section requests are generated.
//!
//! The paper's simulation uses independent Poisson arrivals of rate λ at
//! every node (§3.3); the trait also supports closed-loop (think-time)
//! generation for driving the system to exact saturation in the heavy-load
//! validation experiments.

use tokq_protocol::types::TimeDelta;

use crate::rng::SimRng;

/// When the next request of a node is scheduled relative to its history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pacing {
    /// Open loop: each arrival is scheduled relative to the previous
    /// *arrival*, regardless of service (Poisson and friends).
    OpenLoop,
    /// Closed loop: the next request is scheduled relative to the previous
    /// request's *completion* (think-time model; zero think time saturates
    /// the node, the paper's "heavy load" regime).
    ClosedLoop,
}

/// A per-node stream of request inter-arrival times.
pub trait ArrivalProcess: Send {
    /// Open- or closed-loop scheduling for this stream.
    fn pacing(&self) -> Pacing;

    /// The next inter-arrival (or think-time) draw; `None` ends the stream.
    fn next_delay(&mut self, rng: &mut SimRng) -> Option<TimeDelta>;
}

/// Builds one [`ArrivalProcess`] per node. Implemented by workload types.
pub trait WorkloadSpec {
    /// The per-node process type.
    type Process: ArrivalProcess + 'static;

    /// Builds the stream for node `node` of `n`.
    fn build(&self, node: usize, n: usize) -> Self::Process;
}

/// Poisson arrivals with rate λ (requests/second) — the paper's workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Arrival rate λ in requests per second per node.
    pub rate: f64,
}

impl Poisson {
    /// A Poisson stream of `rate` requests/second.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Poisson rate must be positive, got {rate}");
        Poisson { rate }
    }
}

impl ArrivalProcess for Poisson {
    fn pacing(&self) -> Pacing {
        Pacing::OpenLoop
    }

    fn next_delay(&mut self, rng: &mut SimRng) -> Option<TimeDelta> {
        Some(TimeDelta::from_secs_f64(rng.exponential(self.rate)))
    }
}

impl WorkloadSpec for Poisson {
    type Process = Poisson;
    fn build(&self, _node: usize, _n: usize) -> Poisson {
        *self
    }
}

/// Closed-loop generation with a fixed think time; zero think time keeps a
/// request outstanding at every node permanently (exact saturation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoop {
    /// Pause between a completion and the next request.
    pub think: TimeDelta,
}

impl ClosedLoop {
    /// Saturation: a new request the instant the previous one completes.
    pub fn saturating() -> Self {
        ClosedLoop {
            think: TimeDelta::ZERO,
        }
    }
}

impl ArrivalProcess for ClosedLoop {
    fn pacing(&self) -> Pacing {
        Pacing::ClosedLoop
    }

    fn next_delay(&mut self, _rng: &mut SimRng) -> Option<TimeDelta> {
        Some(self.think)
    }
}

impl WorkloadSpec for ClosedLoop {
    type Process = ClosedLoop;
    fn build(&self, _node: usize, _n: usize) -> ClosedLoop {
        *self
    }
}

/// A finite, scripted list of absolute-ish delays (used by the Figure 2
/// walkthrough and unit tests): emits each delay once, then stops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scripted {
    delays: std::collections::VecDeque<TimeDelta>,
    pacing: Pacing,
}

impl Scripted {
    /// An open-loop script of inter-arrival gaps.
    pub fn open_loop<I: IntoIterator<Item = TimeDelta>>(gaps: I) -> Self {
        Scripted {
            delays: gaps.into_iter().collect(),
            pacing: Pacing::OpenLoop,
        }
    }

    /// A stream that never produces requests.
    pub fn silent() -> Self {
        Scripted {
            delays: std::collections::VecDeque::new(),
            pacing: Pacing::OpenLoop,
        }
    }
}

impl ArrivalProcess for Scripted {
    fn pacing(&self) -> Pacing {
        self.pacing
    }

    fn next_delay(&mut self, _rng: &mut SimRng) -> Option<TimeDelta> {
        self.delays.pop_front()
    }
}

/// Type-erased workload builder, letting heterogeneous per-node processes
/// coexist (e.g. the Figure 2 script, or hot/cold node mixes).
pub struct DynWorkload {
    builder: Box<dyn Fn(usize, usize) -> Box<dyn ArrivalProcess> + Send + Sync>,
}

impl std::fmt::Debug for DynWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynWorkload").finish_non_exhaustive()
    }
}

impl DynWorkload {
    /// Wraps a per-node builder closure.
    pub fn new<F>(builder: F) -> Self
    where
        F: Fn(usize, usize) -> Box<dyn ArrivalProcess> + Send + Sync + 'static,
    {
        DynWorkload {
            builder: Box::new(builder),
        }
    }
}

impl WorkloadSpec for DynWorkload {
    type Process = Box<dyn ArrivalProcess>;
    fn build(&self, node: usize, n: usize) -> Box<dyn ArrivalProcess> {
        (self.builder)(node, n)
    }
}

impl ArrivalProcess for Box<dyn ArrivalProcess> {
    fn pacing(&self) -> Pacing {
        self.as_ref().pacing()
    }
    fn next_delay(&mut self, rng: &mut SimRng) -> Option<TimeDelta> {
        self.as_mut().next_delay(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_interarrival() {
        let mut p = Poisson::new(10.0);
        let mut rng = SimRng::new(1);
        let n = 100_000;
        let sum: f64 = (0..n)
            .map(|_| p.next_delay(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = sum / n as f64;
        assert!((mean - 0.1).abs() < 0.005, "mean inter-arrival {mean}");
        assert_eq!(p.pacing(), Pacing::OpenLoop);
    }

    #[test]
    fn closed_loop_thinks() {
        let mut c = ClosedLoop::saturating();
        let mut rng = SimRng::new(2);
        assert_eq!(c.next_delay(&mut rng), Some(TimeDelta::ZERO));
        assert_eq!(c.pacing(), Pacing::ClosedLoop);
    }

    #[test]
    fn scripted_runs_out() {
        let mut s = Scripted::open_loop([TimeDelta::from_secs(1), TimeDelta::from_secs(2)]);
        let mut rng = SimRng::new(3);
        assert_eq!(s.next_delay(&mut rng), Some(TimeDelta::from_secs(1)));
        assert_eq!(s.next_delay(&mut rng), Some(TimeDelta::from_secs(2)));
        assert_eq!(s.next_delay(&mut rng), None);
        assert_eq!(Scripted::silent().delays.len(), 0);
    }

    #[test]
    fn dyn_workload_builds_per_node() {
        let w = DynWorkload::new(|node, _n| {
            if node == 0 {
                Box::new(Poisson::new(1.0))
            } else {
                Box::new(Scripted::silent())
            }
        });
        let mut rng = SimRng::new(4);
        let mut p0 = w.build(0, 2);
        let mut p1 = w.build(1, 2);
        assert!(p0.next_delay(&mut rng).is_some());
        assert!(p1.next_delay(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn poisson_validates_rate() {
        let _ = Poisson::new(0.0);
    }
}
