//! Fault injection plans: node crashes/recoveries, loss windows, and
//! targeted token drops (paper §6's failure scenarios).

use serde::{Deserialize, Serialize};
use tokq_protocol::types::NodeId;

use crate::time::SimTime;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Fault {
    /// Node `node` crashes at `at`, losing all volatile state; in-flight
    /// messages to it are discarded on delivery.
    Crash {
        /// When the crash happens.
        at: SimTime,
        /// The crashing node.
        node: NodeId,
    },
    /// Node `node` restarts at `at` with fresh state.
    Recover {
        /// When the recovery happens.
        at: SimTime,
        /// The recovering node.
        node: NodeId,
    },
    /// Every message sent in `[from, until)` is dropped with probability
    /// `prob` (on top of the network's base loss).
    LossWindow {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Drop probability inside the window.
        prob: f64,
    },
    /// Drop the next `count` token-carrying messages sent at or after
    /// `at` — the paper's "PRIVILEGE message was dropped" scenario,
    /// injected deterministically.
    DropToken {
        /// Earliest time the drops apply.
        at: SimTime,
        /// Number of token messages to drop.
        count: u32,
    },
}

/// A network partition: during `[from, until)` messages crossing between
/// the `island` and the rest of the system are dropped in both directions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    /// Window start.
    pub from: SimTime,
    /// Window end (exclusive) — the partition heals here.
    pub until: SimTime,
    /// Nodes cut off from the remainder.
    pub island: Vec<NodeId>,
}

/// A collection of scheduled faults.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    faults: Vec<Fault>,
    partitions: Vec<Partition>,
}

impl FaultPlan {
    /// A plan with no faults (the paper's fault-free experiments).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault, returning `self` for chaining.
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Crash `node` at `at`.
    #[must_use]
    pub fn crash(self, node: NodeId, at: SimTime) -> Self {
        self.with(Fault::Crash { at, node })
    }

    /// Recover `node` at `at`.
    #[must_use]
    pub fn recover(self, node: NodeId, at: SimTime) -> Self {
        self.with(Fault::Recover { at, node })
    }

    /// Drop the next `count` token messages at or after `at`.
    #[must_use]
    pub fn drop_token(self, at: SimTime, count: u32) -> Self {
        self.with(Fault::DropToken { at, count })
    }

    /// Isolate `island` from the rest of the system during `[from, until)`.
    #[must_use]
    pub fn partition(mut self, island: Vec<NodeId>, from: SimTime, until: SimTime) -> Self {
        self.partitions.push(Partition {
            from,
            until,
            island,
        });
        self
    }

    /// True when a message from `a` to `b` at time `now` crosses an active
    /// partition boundary.
    pub fn crosses_partition(&self, a: NodeId, b: NodeId, now: SimTime) -> bool {
        self.partitions.iter().any(|p| {
            now >= p.from && now < p.until && (p.island.contains(&a) != p.island.contains(&b))
        })
    }

    /// All crash/recover events, for scheduling.
    pub fn node_events(&self) -> impl Iterator<Item = (SimTime, NodeId, bool)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::Crash { at, node } => Some((at, node, true)),
            Fault::Recover { at, node } => Some((at, node, false)),
            _ => None,
        })
    }

    /// Extra loss probability applying to a message sent at `now`.
    pub fn extra_loss_at(&self, now: SimTime) -> f64 {
        let mut p = 0.0f64;
        for f in &self.faults {
            if let Fault::LossWindow { from, until, prob } = *f {
                if now >= from && now < until {
                    p = p.max(prob);
                }
            }
        }
        p
    }

    /// All token-drop directives.
    pub fn token_drops(&self) -> impl Iterator<Item = (SimTime, u32)> + '_ {
        self.faults.iter().filter_map(|f| match *f {
            Fault::DropToken { at, count } => Some((at, count)),
            _ => None,
        })
    }

    /// True when the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && self.partitions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates() {
        let plan = FaultPlan::none()
            .crash(NodeId(2), SimTime::from_secs_f64(1.0))
            .recover(NodeId(2), SimTime::from_secs_f64(2.0))
            .drop_token(SimTime::from_secs_f64(0.5), 1);
        assert!(!plan.is_empty());
        let events: Vec<_> = plan.node_events().collect();
        assert_eq!(
            events,
            vec![
                (SimTime::from_secs_f64(1.0), NodeId(2), true),
                (SimTime::from_secs_f64(2.0), NodeId(2), false)
            ]
        );
        assert_eq!(
            plan.token_drops().collect::<Vec<_>>(),
            vec![(SimTime::from_secs_f64(0.5), 1)]
        );
    }

    #[test]
    fn partition_cuts_both_directions_within_window() {
        let plan = FaultPlan::none().partition(
            vec![NodeId(0), NodeId(1)],
            SimTime::from_secs_f64(5.0),
            SimTime::from_secs_f64(10.0),
        );
        let t = SimTime::from_secs_f64(7.0);
        assert!(plan.crosses_partition(NodeId(0), NodeId(2), t));
        assert!(plan.crosses_partition(NodeId(2), NodeId(1), t));
        // Same side: allowed.
        assert!(!plan.crosses_partition(NodeId(0), NodeId(1), t));
        assert!(!plan.crosses_partition(NodeId(2), NodeId(3), t));
        // Outside the window: healed.
        assert!(!plan.crosses_partition(NodeId(0), NodeId(2), SimTime::from_secs_f64(10.0)));
        assert!(!plan.crosses_partition(NodeId(0), NodeId(2), SimTime::from_secs_f64(1.0)));
        assert!(!plan.is_empty());
    }

    #[test]
    fn loss_window_bounds() {
        let plan = FaultPlan::none().with(Fault::LossWindow {
            from: SimTime::from_secs_f64(1.0),
            until: SimTime::from_secs_f64(2.0),
            prob: 0.7,
        });
        assert_eq!(plan.extra_loss_at(SimTime::from_secs_f64(0.9)), 0.0);
        assert_eq!(plan.extra_loss_at(SimTime::from_secs_f64(1.5)), 0.7);
        assert_eq!(plan.extra_loss_at(SimTime::from_secs_f64(2.0)), 0.0);
    }

    #[test]
    fn overlapping_windows_take_max() {
        let plan = FaultPlan::none()
            .with(Fault::LossWindow {
                from: SimTime::ZERO,
                until: SimTime::from_secs_f64(10.0),
                prob: 0.1,
            })
            .with(Fault::LossWindow {
                from: SimTime::from_secs_f64(5.0),
                until: SimTime::from_secs_f64(6.0),
                prob: 0.9,
            });
        assert_eq!(plan.extra_loss_at(SimTime::from_secs_f64(5.5)), 0.9);
        assert_eq!(plan.extra_loss_at(SimTime::from_secs_f64(7.0)), 0.1);
    }
}

/// True for message kinds that carry the token (or a privilege grant) on
/// the wire. These are the messages whose loss the paper's §6 recovery
/// machinery exists to survive, so the model checker's default drop
/// budget targets exactly them. (Duplication is gated separately, on
/// [`tokq_protocol::api::ProtocolMessage::duplication_tolerant`].)
pub fn is_token_kind(kind: &str) -> bool {
    kind == "PRIVILEGE" || kind == "TOKEN"
}

/// Budgeted fault branching for the model checker ([`crate::explore`]).
///
/// Where [`FaultPlan`] injects *scripted* faults at fixed virtual times
/// into one simulated execution, `FaultBudget` bounds how many faults of
/// each class the explorer may inject *anywhere*: at every decision level
/// the checker also branches on crashing a node, recovering a crashed one,
/// dropping an in-flight token message, or duplicating a
/// duplication-tolerant message, as long as the matching budget is not yet
/// spent along the current path. Budgets are per-path, so `crashes: 1` means "every
/// schedule containing at most one crash", not one crash total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FaultBudget {
    /// Node crashes the explorer may inject along one path.
    pub crashes: u32,
    /// Recoveries of crashed nodes the explorer may inject along one path.
    pub recoveries: u32,
    /// In-flight message drops (token-carrying messages only, unless
    /// [`FaultBudget::drop_any`] is set).
    pub drops: u32,
    /// In-flight message duplications. Only messages whose handlers
    /// declare themselves idempotent
    /// ([`tokq_protocol::api::ProtocolMessage::duplication_tolerant`]) are
    /// ever duplicated: the no-duplication channel assumption is not
    /// specific to tokens (e.g. Ricart–Agrawala counts REPLYs and Maekawa
    /// counts LOCKED votes with plain counters), so duplicating an
    /// intolerant message would manufacture violations of an assumption
    /// the algorithm never claimed to survive. For such protocols this
    /// budget is inert.
    pub duplicates: u32,
    /// Widen [`FaultBudget::drops`] to every message kind instead of just
    /// token carriers.
    pub drop_any: bool,
}

impl FaultBudget {
    /// No fault injection (the default).
    pub const NONE: FaultBudget = FaultBudget {
        crashes: 0,
        recoveries: 0,
        drops: 0,
        duplicates: 0,
        drop_any: false,
    };

    /// True if at least one budget class is non-zero.
    pub fn any(&self) -> bool {
        self.crashes > 0 || self.recoveries > 0 || self.drops > 0 || self.duplicates > 0
    }
}
