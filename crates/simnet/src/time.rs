//! The simulator's virtual clock.

use std::fmt;

use serde::{Deserialize, Serialize};
use tokq_protocol::types::TimeDelta;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
///
/// # Examples
///
/// ```
/// use tokq_simnet::time::SimTime;
/// use tokq_protocol::types::TimeDelta;
///
/// let t = SimTime::ZERO + TimeDelta::from_millis(100);
/// assert_eq!(t.as_secs_f64(), 0.1);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs an instant from nanoseconds since start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Constructs an instant from fractional seconds since start.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "sim time must be finite and non-negative, got {secs}"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// Nanoseconds since the start of the run.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the start of the run.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> TimeDelta {
        debug_assert!(earlier <= self, "time went backwards");
        TimeDelta::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl std::ops::Add<TimeDelta> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: TimeDelta) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::from_secs_f64(1.0);
        let b = a + TimeDelta::from_millis(500);
        assert!(b > a);
        assert_eq!(b.since(a), TimeDelta::from_millis(500));
        assert_eq!(b.as_secs_f64(), 1.5);
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_secs_f64(0.25).to_string(), "t=0.250000s");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs_f64(-0.1);
    }
}
