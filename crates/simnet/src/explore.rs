//! A stateful model checker for the protocol state machines.
//!
//! The Monte-Carlo simulator samples one schedule per seed; this module
//! instead *enumerates* scheduling decisions — message deliveries, timer
//! firings, CS completions, and (under a [`FaultBudget`]) injected node
//! crashes, recoveries, token drops, and message duplications — checking
//! the mutual-exclusion invariant in every reachable state and, on
//! fault-free paths, flagging quiescent states that leave a requester
//! starving (a deadlock).
//!
//! Two reductions make the search stateful rather than a naive tree walk:
//!
//! * **visited-state deduplication** — every [`Protocol`] contributes a
//!   canonical [`Protocol::fingerprint`]; the world fingerprint combines
//!   the per-node fingerprints with the in-flight message *multiset* (the
//!   queue order is irrelevant because the checker branches over every
//!   delivery order anyway), the pending-timer multiset, and the remaining
//!   fault budgets. Because the search is depth-bounded, each fingerprint
//!   stores the depth budget it was explored with: a state first reached
//!   near `max_depth` has a truncated subtree, so a later, shallower
//!   revisit (with more budget left) re-explores instead of being pruned
//!   against the truncated claim.
//! * **sleep sets** (a partial-order reduction) — two scheduling decisions
//!   targeting *different* nodes commute, so after exploring `t₁` before
//!   `t₂`, the redundant `t₂`-before-`t₁` orders are skipped. Fault
//!   injections are treated as dependent on everything and are never
//!   slept. Combining sleep sets with state caching is only sound with a
//!   subsumption check: a revisit is pruned only if the current sleep set
//!   *covers* the stored one (and no extra depth budget remains);
//!   otherwise the state is re-explored and the stored claim adjusted.
//!
//! A [`Violation`] carries a [`Schedule`] counterexample, shrunk by
//! delta-debugging ([`shrink_schedule`]) to a locally-minimal step
//! sequence, replayable deterministically with [`crate::replay::replay`],
//! and emittable through the `tokq-obs` flight recorder.
//!
//! # Example
//!
//! ```
//! use tokq_protocol::arbiter::ArbiterConfig;
//! use tokq_simnet::explore::{Explorer, ExploreConfig};
//!
//! // Three nodes, two of which request: every delivery order is safe.
//! let stats = Explorer::new(ExploreConfig::default())
//!     .check(ArbiterConfig::basic(), 3, &[0, 1])
//!     .expect("mutual exclusion holds in every interleaving");
//! assert!(stats.states_explored > 0);
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use serde::{Deserialize, Serialize};
use tokq_obs::{Event, Level, Obs};
use tokq_protocol::api::{Protocol, ProtocolFactory, ProtocolMessage};
use tokq_protocol::event::{Action, Input};
use tokq_protocol::types::NodeId;

use crate::fault::{is_token_kind, FaultBudget};
use crate::replay::{replay, Schedule, Step};
use crate::trace::TraceKind;

/// Exploration bounds and feature switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum scheduling decisions along one execution path.
    pub max_depth: usize,
    /// Maximum total states visited (safety net against explosion).
    pub max_states: u64,
    /// Prune states whose canonical fingerprint was already visited.
    pub dedup: bool,
    /// Sleep-set partial-order reduction (skip redundant orderings of
    /// commuting steps). Sound together with `dedup` via sleep-set
    /// subsumption; meaningful coverage gains require `dedup` too.
    pub sleep_sets: bool,
    /// Fault-branching budgets; [`FaultBudget::NONE`] disables injection.
    pub faults: FaultBudget,
    /// On fault-free paths, report a quiescent state that leaves an alive
    /// requester unserved as a [`ViolationKind::Deadlock`].
    pub check_deadlock: bool,
    /// Shrink counterexamples to a locally-minimal schedule before
    /// reporting (see [`shrink_schedule`]).
    pub shrink: bool,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 28,
            max_states: 2_000_000,
            dedup: true,
            sleep_sets: true,
            faults: FaultBudget::NONE,
            check_deadlock: true,
            shrink: true,
        }
    }
}

impl ExploreConfig {
    /// The naive enumerator: no deduplication, no partial-order reduction,
    /// no deadlock check — the pre-model-checker behaviour, kept as the
    /// baseline for the reduction benchmark and the differential test.
    pub fn naive() -> Self {
        ExploreConfig {
            dedup: false,
            sleep_sets: false,
            check_deadlock: false,
            ..Self::default()
        }
    }

    /// Sets the fault budgets, returning `self` for chaining.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultBudget) -> Self {
        self.faults = faults;
        self
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// States visited (including re-visits that were then deduplicated).
    pub states_explored: u64,
    /// Visits pruned because the state fingerprint was already covered.
    pub dedup_hits: u64,
    /// Transitions skipped by the sleep-set reduction.
    pub sleep_pruned: u64,
    /// Paths cut off by the depth bound.
    pub depth_bound_hits: u64,
    /// Executions that ran to quiescence (no in-flight messages, timers,
    /// or open critical sections).
    pub quiescent_paths: u64,
    /// Fault-injection branches taken.
    pub fault_branches: u64,
    /// Deepest path reached.
    pub max_depth_reached: usize,
    /// Maximum critical-section entries observed along any path.
    pub cs_entries: u64,
    /// True if the `max_states` budget stopped the search before it was
    /// exhaustive (within the depth bound).
    pub truncated: bool,
}

/// What the checker found wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Two nodes inside their critical sections simultaneously.
    MutualExclusion {
        /// The node that was already in its CS.
        first: NodeId,
        /// The node that entered on top of it.
        second: NodeId,
    },
    /// A quiescent state — nothing in flight, no timers pending, no CS
    /// open — on a fault-free path, with alive requesters never served.
    Deadlock {
        /// The requesters left waiting forever.
        starving: Vec<NodeId>,
    },
}

/// A violation found by the explorer, with its counterexample.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// A schedule exposing the violation — shrunk to a locally-minimal
    /// step sequence when [`ExploreConfig::shrink`] is on, and replayable
    /// with [`crate::replay::replay`].
    pub schedule: Schedule,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            ViolationKind::MutualExclusion { first, second } => write!(
                f,
                "mutual exclusion violated: {} and {} in CS simultaneously ({}-step schedule)",
                first,
                second,
                self.schedule.steps.len()
            ),
            ViolationKind::Deadlock { starving } => {
                let nodes: Vec<String> = starving.iter().map(ToString::to_string).collect();
                write!(
                    f,
                    "deadlock: requesters [{}] starve in a quiescent state ({}-step schedule)",
                    nodes.join(", "),
                    self.schedule.steps.len()
                )
            }
        }
    }
}

/// An in-flight message.
#[derive(Debug, Clone)]
pub(crate) struct Envelope<M> {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) msg: M,
}

/// A step could not be applied in the current state (only possible for
/// hand-edited or shrunk-candidate schedules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Inapplicable;

/// What one applied step produced: observable events and any violation.
pub(crate) type Applied = (Vec<(NodeId, TraceKind)>, Option<ViolationKind>);

/// The complete system state the checker and the replay driver evolve:
/// protocol nodes plus the network (in-flight messages), pending timers,
/// CS occupancy, liveness bookkeeping, and remaining fault budgets.
#[derive(Clone)]
pub(crate) struct World<P: Protocol + Clone> {
    nodes: Vec<P>,
    in_flight: VecDeque<Envelope<P::Msg>>,
    timers: Vec<(NodeId, P::Timer)>,
    in_cs: Vec<bool>,
    alive: Vec<bool>,
    requested: Vec<bool>,
    served: Vec<bool>,
    budget: FaultBudget,
    cs_entries: u64,
}

impl<P: Protocol + Clone> World<P> {
    /// Boots an `n`-node system: `Start` for every node, then one
    /// `RequestCs` per requester (in order). Returns the world, the boot
    /// events, and any violation already hit during boot.
    pub(crate) fn boot<F>(
        factory: &F,
        n: usize,
        requesters: &[usize],
        budget: FaultBudget,
    ) -> (Self, Vec<(NodeId, TraceKind)>, Option<ViolationKind>)
    where
        F: ProtocolFactory<Node = P>,
    {
        assert!(n > 0, "explored system must have at least one node");
        let mut world = World {
            nodes: factory.build_all(n),
            in_flight: VecDeque::new(),
            timers: Vec::new(),
            in_cs: vec![false; n],
            alive: vec![true; n],
            requested: vec![false; n],
            served: vec![false; n],
            budget,
            cs_entries: 0,
        };
        let mut events = Vec::new();
        let mut violation = None;
        for i in 0..n {
            if violation.is_some() {
                break;
            }
            let acts = world.nodes[i].step(Input::Start);
            violation = world.dispatch(NodeId::from_index(i), acts, &mut events);
        }
        for &r in requesters {
            if violation.is_some() {
                break;
            }
            assert!(r < n, "requester {r} out of range for n={n}");
            let node = NodeId::from_index(r);
            world.requested[r] = true;
            events.push((node, TraceKind::Arrival));
            let acts = world.nodes[r].step(Input::RequestCs);
            violation = world.dispatch(node, acts, &mut events);
        }
        (world, events, violation)
    }

    /// Executes one node's emitted actions against the world, recording
    /// the observable consequences. Returns a violation if an `EnterCs`
    /// overlaps an open critical section (and stops there).
    fn dispatch(
        &mut self,
        src: NodeId,
        actions: Vec<Action<P::Msg, P::Timer>>,
        events: &mut Vec<(NodeId, TraceKind)>,
    ) -> Option<ViolationKind> {
        let n = self.nodes.len();
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    events.push((
                        src,
                        TraceKind::Sent {
                            to,
                            kind: msg.kind().to_owned(),
                        },
                    ));
                    self.in_flight.push_back(Envelope { from: src, to, msg });
                }
                Action::Broadcast { msg, except } => {
                    for i in 0..n {
                        let to = NodeId::from_index(i);
                        if to != src && !except.contains(&to) {
                            events.push((
                                src,
                                TraceKind::Sent {
                                    to,
                                    kind: msg.kind().to_owned(),
                                },
                            ));
                            self.in_flight.push_back(Envelope {
                                from: src,
                                to,
                                msg: msg.clone(),
                            });
                        }
                    }
                }
                Action::SetTimer { timer, .. } => {
                    // Replace a pending instance of the same timer identity.
                    self.timers
                        .retain(|(node, t)| !(*node == src && *t == timer));
                    self.timers.push((src, timer));
                }
                Action::CancelTimer(timer) => {
                    self.timers
                        .retain(|(node, t)| !(*node == src && *t == timer));
                }
                Action::EnterCs => {
                    if let Some(other) = self.in_cs.iter().position(|&c| c) {
                        return Some(ViolationKind::MutualExclusion {
                            first: NodeId::from_index(other),
                            second: src,
                        });
                    }
                    self.in_cs[src.index()] = true;
                    self.served[src.index()] = true;
                    self.cs_entries += 1;
                    events.push((src, TraceKind::EnterCs));
                }
                Action::Note(note) => {
                    events.push((src, TraceKind::Note(note.label().to_owned())));
                }
            }
        }
        None
    }

    /// The scheduling decisions enabled in this state, in a deterministic
    /// order: deliveries, CS completions, timers, then fault injections
    /// (bounded by the remaining budgets).
    pub(crate) fn enabled(&self) -> Vec<Step> {
        let mut steps = Vec::new();
        for index in 0..self.in_flight.len() {
            steps.push(Step::Deliver { index });
        }
        for (i, &open) in self.in_cs.iter().enumerate() {
            if open {
                steps.push(Step::CsDone {
                    node: NodeId::from_index(i),
                });
            }
        }
        for index in 0..self.timers.len() {
            steps.push(Step::Timer { index });
        }
        if self.budget.crashes > 0 {
            for (i, &up) in self.alive.iter().enumerate() {
                if up {
                    steps.push(Step::Crash {
                        node: NodeId::from_index(i),
                    });
                }
            }
        }
        if self.budget.recoveries > 0 {
            for (i, &up) in self.alive.iter().enumerate() {
                if !up {
                    steps.push(Step::Recover {
                        node: NodeId::from_index(i),
                    });
                }
            }
        }
        if self.budget.drops > 0 {
            for (index, env) in self.in_flight.iter().enumerate() {
                if self.budget.drop_any || is_token_kind(env.msg.kind()) {
                    steps.push(Step::Drop { index });
                }
            }
        }
        if self.budget.duplicates > 0 {
            for (index, env) in self.in_flight.iter().enumerate() {
                if env.msg.duplication_tolerant() {
                    steps.push(Step::Duplicate { index });
                }
            }
        }
        steps
    }

    /// Applies one scheduling decision, returning the observable events
    /// and any violation it triggered.
    pub(crate) fn apply(&mut self, step: Step) -> Result<Applied, Inapplicable> {
        let mut events = Vec::new();
        let violation = match step {
            Step::Deliver { index } => {
                let env = self.in_flight.remove(index).ok_or(Inapplicable)?;
                if !self.alive[env.to.index()] {
                    // A message arriving at a crashed node is lost.
                    None
                } else {
                    events.push((
                        env.to,
                        TraceKind::Received {
                            from: env.from,
                            kind: env.msg.kind().to_owned(),
                        },
                    ));
                    let acts = self.nodes[env.to.index()].step(Input::Deliver {
                        from: env.from,
                        msg: env.msg,
                    });
                    self.dispatch(env.to, acts, &mut events)
                }
            }
            Step::CsDone { node } => {
                let i = node.index();
                if i >= self.in_cs.len() || !self.in_cs[i] {
                    return Err(Inapplicable);
                }
                self.in_cs[i] = false;
                events.push((node, TraceKind::ExitCs));
                let acts = self.nodes[i].step(Input::CsDone);
                self.dispatch(node, acts, &mut events)
            }
            Step::Timer { index } => {
                if index >= self.timers.len() {
                    return Err(Inapplicable);
                }
                let (node, timer) = self.timers.remove(index);
                let acts = self.nodes[node.index()].step(Input::Timer(timer));
                self.dispatch(node, acts, &mut events)
            }
            Step::Crash { node } => {
                let i = node.index();
                if i >= self.alive.len() || !self.alive[i] || self.budget.crashes == 0 {
                    return Err(Inapplicable);
                }
                self.budget.crashes -= 1;
                self.alive[i] = false;
                self.in_cs[i] = false;
                self.timers.retain(|(n, _)| *n != node);
                events.push((node, TraceKind::Crashed));
                // Fail-stop: the dying node's actions are discarded.
                let _ = self.nodes[i].step(Input::Crash);
                None
            }
            Step::Recover { node } => {
                let i = node.index();
                if i >= self.alive.len() || self.alive[i] || self.budget.recoveries == 0 {
                    return Err(Inapplicable);
                }
                self.budget.recoveries -= 1;
                self.alive[i] = true;
                events.push((node, TraceKind::Recovered));
                let acts = self.nodes[i].step(Input::Recover);
                self.dispatch(node, acts, &mut events)
            }
            Step::Drop { index } => {
                let eligible = self.budget.drops > 0
                    && self
                        .in_flight
                        .get(index)
                        .is_some_and(|e| self.budget.drop_any || is_token_kind(e.msg.kind()));
                if !eligible {
                    return Err(Inapplicable);
                }
                self.budget.drops -= 1;
                let env = self.in_flight.remove(index).expect("index checked");
                events.push((
                    env.to,
                    TraceKind::Note(format!("checker_dropped({})", env.msg.kind())),
                ));
                None
            }
            Step::Duplicate { index } => {
                let eligible = self.budget.duplicates > 0
                    && self
                        .in_flight
                        .get(index)
                        .is_some_and(|e| e.msg.duplication_tolerant());
                if !eligible {
                    return Err(Inapplicable);
                }
                self.budget.duplicates -= 1;
                let env = self.in_flight[index].clone();
                events.push((
                    env.to,
                    TraceKind::Note(format!("checker_duplicated({})", env.msg.kind())),
                ));
                self.in_flight.push_back(env);
                None
            }
        };
        Ok((events, violation))
    }

    /// Canonical fingerprint of the full checker state. In-flight messages
    /// and pending timers are hashed as *multisets*: their queue order is
    /// scheduling history, not future behaviour, because the checker
    /// branches over every delivery/firing order anyway.
    pub(crate) fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.protocol_fingerprint().hash(&mut h);
        self.alive.hash(&mut h);
        self.requested.hash(&mut h);
        self.served.hash(&mut h);
        let mut msgs: Vec<u64> = self.in_flight.iter().map(envelope_key).collect();
        msgs.sort_unstable();
        msgs.hash(&mut h);
        let mut timers: Vec<u64> = self
            .timers
            .iter()
            .map(|(node, timer)| {
                let mut th = DefaultHasher::new();
                node.hash(&mut th);
                timer.hash(&mut th);
                th.finish()
            })
            .collect();
        timers.sort_unstable();
        timers.hash(&mut h);
        self.budget.hash(&mut h);
        h.finish()
    }

    /// Fingerprint of the protocol-visible state only (node state machines
    /// plus CS occupancy) — what the reduction-soundness differential test
    /// compares across explorer configurations.
    pub(crate) fn protocol_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for node in &self.nodes {
            node.fingerprint(&mut h);
        }
        self.in_cs.hash(&mut h);
        h.finish()
    }

    /// True when no ordinary scheduling decision is enabled: nothing in
    /// flight, no timers pending, no critical section open.
    pub(crate) fn quiescent(&self) -> bool {
        self.in_flight.is_empty() && self.timers.is_empty() && !self.in_cs.iter().any(|&c| c)
    }

    /// Alive requesters that were never served.
    pub(crate) fn starving(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.requested[i] && !self.served[i] && self.alive[i])
            .map(NodeId::from_index)
            .collect()
    }

    /// Total critical-section entries along this path.
    pub(crate) fn cs_entries(&self) -> u64 {
        self.cs_entries
    }

    /// The algorithm label of the system under test.
    pub(crate) fn algorithm(&self) -> &'static str {
        self.nodes[0].algorithm()
    }
}

/// Content hash of an in-flight message (sender, receiver, payload) — the
/// canonical transition identity used by fingerprints and sleep sets. Two
/// byte-identical duplicates share a key, which is exactly right: they are
/// the same transition.
fn envelope_key<M: ProtocolMessage>(env: &Envelope<M>) -> u64 {
    let mut h = DefaultHasher::new();
    env.from.hash(&mut h);
    env.to.hash(&mut h);
    env.msg.hash(&mut h);
    h.finish()
}

/// Canonical identity and target node of a non-fault step; `None` for
/// fault injections (dependent on everything, never slept).
fn transition_id<P: Protocol + Clone>(world: &World<P>, step: Step) -> Option<(u64, NodeId)> {
    let mut h = DefaultHasher::new();
    match step {
        Step::Deliver { index } => {
            let env = &world.in_flight[index];
            0u8.hash(&mut h);
            envelope_key(env).hash(&mut h);
            Some((h.finish(), env.to))
        }
        Step::CsDone { node } => {
            1u8.hash(&mut h);
            node.hash(&mut h);
            Some((h.finish(), node))
        }
        Step::Timer { index } => {
            let (node, timer) = &world.timers[index];
            2u8.hash(&mut h);
            node.hash(&mut h);
            timer.hash(&mut h);
            Some((h.finish(), *node))
        }
        _ => None,
    }
}

/// A violation found mid-search, with the raw step path that reached it.
struct Found {
    kind: ViolationKind,
    steps: Vec<Step>,
}

/// What one visit to a fingerprint established: the depth budget that was
/// left when the state was explored and the sleep set it was explored
/// under. Both bound the stored coverage, so a revisit may only be pruned
/// if it asks for no more than this claim delivers.
struct VisitEntry {
    /// `max_depth − depth` at exploration time. A state first reached near
    /// the depth bound has a *truncated* subtree; recording the budget lets
    /// a shallower (larger-budget) revisit re-explore instead of being
    /// silently pruned against the truncated claim.
    remaining: usize,
    /// The sleep set the exploration ran under (its transitions were *not*
    /// explored from here).
    sleep: HashSet<u64>,
}

/// The recursive search state.
struct Search<'a> {
    cfg: ExploreConfig,
    stats: ExploreStats,
    /// State fingerprint → strongest coverage claim established for it. A
    /// revisit is pruned only if the stored claim subsumes it: at least as
    /// much remaining depth, and a stored sleep set the current one covers.
    visited: HashMap<u64, VisitEntry>,
    /// Optional sink collecting every visited protocol fingerprint (for
    /// the reduction-soundness differential test).
    fingerprints: Option<&'a mut BTreeSet<u64>>,
}

impl Search<'_> {
    fn dfs<P: Protocol + Clone>(
        &mut self,
        world: &World<P>,
        depth: usize,
        sleep: &HashMap<u64, NodeId>,
        path: &mut Vec<Step>,
        faulty: bool,
    ) -> Result<(), Found> {
        self.stats.states_explored += 1;
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(depth);
        self.stats.cs_entries = self.stats.cs_entries.max(world.cs_entries);
        if let Some(fps) = self.fingerprints.as_deref_mut() {
            fps.insert(world.protocol_fingerprint());
        }
        if self.stats.states_explored > self.cfg.max_states {
            self.stats.truncated = true;
            return Ok(());
        }

        if self.cfg.dedup {
            let remaining = self.cfg.max_depth.saturating_sub(depth);
            let key = world.fingerprint();
            match self.visited.get_mut(&key) {
                Some(entry)
                    if entry.remaining >= remaining
                        && entry.sleep.iter().all(|t| sleep.contains_key(t)) =>
                {
                    // Everything we would explore here — to our remaining
                    // depth, minus our sleepers — was already explored.
                    self.stats.dedup_hits += 1;
                    return Ok(());
                }
                Some(entry) => {
                    if remaining > entry.remaining {
                        // The earlier visit sat closer to the depth bound,
                        // so its subtree was truncated shallower than ours
                        // will be: this re-exploration supersedes the
                        // stored claim entirely.
                        entry.remaining = remaining;
                        entry.sleep = sleep.keys().copied().collect();
                    } else if remaining == entry.remaining {
                        // Equal budgets, incomparable sleep sets: the joint
                        // coverage at this depth is the intersection.
                        entry.sleep.retain(|t| sleep.contains_key(t));
                    }
                    // remaining < entry.remaining: keep the stronger stored
                    // claim; this shallower revisit re-explores without
                    // weakening it (lowering the depth or intersecting the
                    // sleep set here would discard coverage the deeper
                    // visit really achieved).
                }
                None => {
                    self.visited.insert(
                        key,
                        VisitEntry {
                            remaining,
                            sleep: sleep.keys().copied().collect(),
                        },
                    );
                }
            }
        }

        if depth >= self.cfg.max_depth {
            self.stats.depth_bound_hits += 1;
            return Ok(());
        }

        let steps = world.enabled();
        let quiescent = !steps.iter().any(|s| !s.is_fault());
        if quiescent {
            self.stats.quiescent_paths += 1;
            if self.cfg.check_deadlock && !faulty {
                let starving = world.starving();
                if !starving.is_empty() {
                    return Err(Found {
                        kind: ViolationKind::Deadlock { starving },
                        steps: path.clone(),
                    });
                }
            }
        }

        // Transitions explored from this state so far; later siblings may
        // sleep them if independent.
        let mut explored: Vec<(u64, NodeId)> = Vec::new();
        for &step in steps.iter().filter(|s| !s.is_fault()) {
            let (tid, target) = transition_id(world, step).expect("non-fault steps have ids");
            if self.cfg.sleep_sets && sleep.contains_key(&tid) {
                self.stats.sleep_pruned += 1;
                continue;
            }
            let mut next = world.clone();
            let (_events, violation) = next.apply(step).expect("enabled step applies");
            path.push(step);
            if let Some(kind) = violation {
                return Err(Found {
                    kind,
                    steps: path.clone(),
                });
            }
            let child_sleep: HashMap<u64, NodeId> = if self.cfg.sleep_sets {
                // Inherited sleepers plus already-explored siblings, minus
                // anything dependent on (same target as) the step taken.
                sleep
                    .iter()
                    .map(|(k, t)| (*k, *t))
                    .chain(explored.iter().copied())
                    .filter(|(_, t)| *t != target)
                    .collect()
            } else {
                HashMap::new()
            };
            self.dfs(&next, depth + 1, &child_sleep, path, faulty)?;
            path.pop();
            explored.push((tid, target));
        }

        for &step in steps.iter().filter(|s| s.is_fault()) {
            self.stats.fault_branches += 1;
            let mut next = world.clone();
            let (_events, violation) = next.apply(step).expect("enabled step applies");
            path.push(step);
            if let Some(kind) = violation {
                return Err(Found {
                    kind,
                    steps: path.clone(),
                });
            }
            self.dfs(&next, depth + 1, &HashMap::new(), path, true)?;
            path.pop();
        }
        Ok(())
    }
}

/// The stateful model checker: a depth-first search over scheduling
/// decisions with visited-state deduplication, sleep-set reduction, and
/// budgeted fault branching.
pub struct Explorer {
    cfg: ExploreConfig,
    obs: Option<Obs>,
}

impl std::fmt::Debug for Explorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Explorer")
            .field("cfg", &self.cfg)
            .field("obs", &self.obs.is_some())
            .finish()
    }
}

impl Explorer {
    /// Creates an explorer with the given configuration.
    pub fn new(cfg: ExploreConfig) -> Self {
        Explorer { cfg, obs: None }
    }

    /// Attaches an observability handle: a found violation emits its
    /// shrunk [`Schedule`] (and a `violation` summary event) through it,
    /// landing in any attached flight recorder for later
    /// [`Schedule::from_events`] reconstruction.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Explores an `n`-node system in which `requesters` issue one
    /// critical-section request each at time zero.
    ///
    /// Returns exploration statistics, or the first [`Violation`] found
    /// (with a shrunk, replayable counterexample schedule).
    ///
    /// # Errors
    ///
    /// Returns `Err(Violation)` when some schedule puts two nodes inside
    /// their critical sections simultaneously, or (with
    /// [`ExploreConfig::check_deadlock`]) starves a requester on a
    /// fault-free path.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or a requester index is out of range.
    // A `Violation` is a full counterexample schedule; it is large by
    // design and returned exactly once per search.
    #[allow(clippy::result_large_err)]
    pub fn check<F>(
        self,
        factory: F,
        n: usize,
        requesters: &[usize],
    ) -> Result<ExploreStats, Violation>
    where
        F: ProtocolFactory,
        F::Node: Protocol + Clone,
    {
        self.run(&factory, n, requesters, None)
    }

    /// Like [`Explorer::check`], but also returns the set of protocol
    /// fingerprints of every visited state — the reduction-soundness
    /// differential compares these sets across configurations.
    pub fn check_with_fingerprints<F>(
        self,
        factory: &F,
        n: usize,
        requesters: &[usize],
    ) -> (Result<ExploreStats, Violation>, BTreeSet<u64>)
    where
        F: ProtocolFactory,
        F::Node: Protocol + Clone,
    {
        let mut fps = BTreeSet::new();
        let result = self.run(factory, n, requesters, Some(&mut fps));
        (result, fps)
    }

    #[allow(clippy::result_large_err)]
    fn run<F>(
        self,
        factory: &F,
        n: usize,
        requesters: &[usize],
        fingerprints: Option<&mut BTreeSet<u64>>,
    ) -> Result<ExploreStats, Violation>
    where
        F: ProtocolFactory,
        F::Node: Protocol + Clone,
    {
        let (world, _boot_events, boot_violation) =
            World::boot(factory, n, requesters, self.cfg.faults);
        let algorithm = world.algorithm().to_owned();
        let mut stats = ExploreStats::default();
        let found = if let Some(kind) = boot_violation {
            Some(Found {
                kind,
                steps: Vec::new(),
            })
        } else {
            let mut search = Search {
                cfg: self.cfg,
                stats,
                visited: HashMap::new(),
                fingerprints,
            };
            let outcome = search.dfs(&world, 0, &HashMap::new(), &mut Vec::new(), false);
            stats = search.stats;
            outcome.err()
        };
        match found {
            None => Ok(stats),
            Some(found) => {
                let mut schedule = Schedule {
                    algorithm,
                    n,
                    requesters: requesters.to_vec(),
                    faults: self.cfg.faults,
                    steps: found.steps,
                };
                if self.cfg.shrink {
                    schedule = shrink_schedule(factory, &schedule, &found.kind);
                }
                let violation = Violation {
                    kind: found.kind,
                    schedule,
                };
                if let Some(obs) = &self.obs {
                    obs.emit(
                        Event::new("explore", Level::Info, "violation")
                            .field("detail", &violation.to_string()),
                    );
                    violation.schedule.emit(obs);
                }
                Err(violation)
            }
        }
    }
}

/// Shrinks `schedule` to a locally-minimal counterexample that still
/// exhibits a violation of the same class as `kind`, by greedy
/// delta-debugging: repeatedly delete step chunks (halving the chunk size
/// down to single steps) and keep any candidate whose replay still
/// reproduces. On return, deleting any single remaining step breaks the
/// reproduction.
pub fn shrink_schedule<F>(factory: &F, schedule: &Schedule, kind: &ViolationKind) -> Schedule
where
    F: ProtocolFactory,
    F::Node: Protocol + Clone,
{
    let reproduces = |s: &Schedule| replay(factory, s).reproduces(kind);
    let mut current = schedule.clone();
    if current.steps.is_empty() {
        return current;
    }
    debug_assert!(
        reproduces(&current),
        "shrink input must itself reproduce the violation"
    );
    let mut chunk = (current.steps.len() / 2).max(1);
    loop {
        let mut improved = false;
        let mut i = 0;
        while i < current.steps.len() {
            let mut candidate = current.clone();
            let end = (i + chunk).min(candidate.steps.len());
            candidate.steps.drain(i..end);
            if reproduces(&candidate) {
                current = candidate;
                improved = true;
                // The next chunk shifted into position `i`; retry there.
            } else {
                i += 1;
            }
        }
        if chunk == 1 && !improved {
            return current;
        }
        if !improved {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay;
    use tokq_protocol::centralized::CentralConfig;
    use tokq_protocol::ricart_agrawala::RaConfig;
    use tokq_protocol::suzuki_kasami::SkConfig;

    fn small() -> ExploreConfig {
        ExploreConfig {
            max_depth: 20,
            max_states: 400_000,
            ..ExploreConfig::default()
        }
    }

    #[test]
    fn ricart_agrawala_exhaustively_safe_2_requesters() {
        let stats = Explorer::new(small())
            .check(RaConfig, 3, &[0, 1])
            .expect("RA must be safe under all interleavings");
        assert!(stats.states_explored > 10);
        assert!(stats.quiescent_paths > 0);
        assert!(!stats.truncated);
    }

    #[test]
    fn suzuki_kasami_exhaustively_safe() {
        let stats = Explorer::new(small())
            .check(SkConfig::default(), 3, &[1, 2])
            .expect("SK must be safe under all interleavings");
        assert!(stats.states_explored > 10);
    }

    #[test]
    fn centralized_exhaustively_safe() {
        let stats = Explorer::new(small())
            .check(CentralConfig::default(), 3, &[0, 1, 2])
            .expect("centralized must be safe");
        assert!(stats.quiescent_paths > 0);
    }

    #[test]
    fn reduction_prunes_but_naive_agrees() {
        let naive = Explorer::new(ExploreConfig {
            max_depth: 12,
            ..ExploreConfig::naive()
        });
        let reduced = Explorer::new(ExploreConfig {
            max_depth: 12,
            check_deadlock: false,
            ..ExploreConfig::default()
        });
        let (r_naive, fp_naive) = naive.check_with_fingerprints(&RaConfig, 3, &[0, 1]);
        let (r_reduced, fp_reduced) = reduced.check_with_fingerprints(&RaConfig, 3, &[0, 1]);
        let s_naive = r_naive.expect("safe");
        let s_reduced = r_reduced.expect("safe");
        assert_eq!(fp_naive, fp_reduced, "reduction must preserve coverage");
        assert!(
            s_reduced.states_explored < s_naive.states_explored,
            "reduction must prune: naive {} vs reduced {}",
            s_naive.states_explored,
            s_reduced.states_explored
        );
        assert!(s_reduced.dedup_hits > 0);
        assert!(s_reduced.sleep_pruned > 0);
    }

    /// A deliberately broken protocol: grants itself the CS on request and
    /// also grants anyone who asks, with no coordination.
    #[derive(Clone, Hash)]
    struct Broken {
        id: NodeId,
        n: usize,
    }
    #[derive(Clone, Debug, PartialEq, Hash)]
    struct Nothing;
    impl tokq_protocol::api::ProtocolMessage for Nothing {
        fn kind(&self) -> &'static str {
            "NOTHING"
        }
    }
    impl Protocol for Broken {
        type Msg = Nothing;
        type Timer = u8;
        fn id(&self) -> NodeId {
            self.id
        }
        fn num_nodes(&self) -> usize {
            self.n
        }
        fn step(&mut self, input: Input<Nothing, u8>) -> Vec<Action<Nothing, u8>> {
            match input {
                Input::RequestCs => vec![Action::EnterCs],
                _ => vec![],
            }
        }
        fn holds_token(&self) -> bool {
            true
        }
        fn algorithm(&self) -> &'static str {
            "broken"
        }
        fn fingerprint(&self, mut h: &mut dyn std::hash::Hasher) {
            Hash::hash(self, &mut h);
        }
    }
    struct BrokenFactory;
    impl ProtocolFactory for BrokenFactory {
        type Node = Broken;
        fn build(&self, id: NodeId, n: usize) -> Broken {
            Broken { id, n }
        }
    }

    #[test]
    fn explorer_catches_broken_protocol() {
        let err = Explorer::new(small())
            .check(BrokenFactory, 2, &[0, 1])
            .expect_err("two unconditional grants must collide");
        let ViolationKind::MutualExclusion { first, second } = &err.kind else {
            panic!("expected mutual-exclusion violation, got {err}");
        };
        assert_ne!(first, second);
        let msg = err.to_string();
        assert!(msg.contains("mutual exclusion violated"), "{msg}");
        // The violation happens during boot: minimal schedule is empty,
        // and replay reproduces it.
        assert!(err.schedule.steps.is_empty());
        assert!(replay(&BrokenFactory, &err.schedule).reproduces(&err.kind));
    }

    #[test]
    fn fault_branching_respects_budgets() {
        let cfg = ExploreConfig {
            max_depth: 10,
            check_deadlock: false,
            ..ExploreConfig::default()
        }
        .with_faults(FaultBudget {
            crashes: 1,
            recoveries: 1,
            drops: 1,
            duplicates: 1,
            drop_any: true,
        });
        let stats = Explorer::new(cfg)
            .check(SkConfig::default(), 2, &[1])
            .expect("SK is safe under single crash/drop/duplicate");
        assert!(stats.fault_branches > 0, "fault branches must be explored");
    }
}
