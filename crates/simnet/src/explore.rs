//! Bounded exhaustive exploration of message interleavings.
//!
//! The Monte-Carlo simulator samples one schedule per seed; this module
//! instead *enumerates* every possible delivery order of in-flight
//! messages (up to a depth bound) for a small system, checking the
//! mutual-exclusion invariant in every reachable state. It is a
//! lightweight model checker for the protocol state machines — the tool
//! that catches reordering bugs no fixed delay distribution would sample.
//!
//! Timers are delivered *after* messages at each decision level (two
//! phases per state), which covers the interesting races: a timer firing
//! before vs. after each pending message is explored via the depth-first
//! branching on message order.
//!
//! # Example
//!
//! ```
//! use tokq_protocol::arbiter::ArbiterConfig;
//! use tokq_simnet::explore::{Explorer, ExploreConfig};
//!
//! // Three nodes, two of which request: every delivery order is safe.
//! let stats = Explorer::new(ExploreConfig::default())
//!     .check(ArbiterConfig::basic(), 3, &[0, 1])
//!     .expect("mutual exclusion holds in every interleaving");
//! assert!(stats.states_explored > 0);
//! ```

use std::collections::VecDeque;

use tokq_protocol::api::{Protocol, ProtocolFactory};
use tokq_protocol::event::{Action, Input};
use tokq_protocol::types::NodeId;

/// Exploration bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreConfig {
    /// Maximum scheduling decisions along one execution path.
    pub max_depth: usize,
    /// Maximum total states explored (safety net against explosion).
    pub max_states: u64,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            max_depth: 28,
            max_states: 2_000_000,
        }
    }
}

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExploreStats {
    /// Distinct scheduling states visited.
    pub states_explored: u64,
    /// Paths cut off by the depth bound.
    pub depth_bound_hits: u64,
    /// Executions that ran to quiescence (no in-flight messages).
    pub quiescent_paths: u64,
    /// Total critical-section entries observed across all paths.
    pub cs_entries: u64,
}

/// A mutual-exclusion violation found by the explorer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The two nodes simultaneously inside their critical sections.
    pub nodes: (NodeId, NodeId),
    /// The delivery schedule (flattened message indices) that exposes the
    /// violation — a counterexample to replay.
    pub schedule: Vec<usize>,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mutual exclusion violated: {} and {} in CS simultaneously (schedule {:?})",
            self.nodes.0, self.nodes.1, self.schedule
        )
    }
}

#[derive(Clone)]
struct World<P: Protocol + Clone>
where
    P::Msg: Clone,
{
    nodes: Vec<P>,
    /// In-flight messages: (from, to, msg).
    in_flight: VecDeque<(NodeId, NodeId, P::Msg)>,
    /// Pending (node, timer) pairs, newest timer per identity.
    timers: Vec<(NodeId, P::Timer)>,
    in_cs: Vec<bool>,
    cs_entries: u64,
}

/// Depth-first exhaustive scheduler.
#[derive(Debug)]
pub struct Explorer {
    cfg: ExploreConfig,
    stats: ExploreStats,
}

impl Explorer {
    /// Creates an explorer with the given bounds.
    pub fn new(cfg: ExploreConfig) -> Self {
        Explorer {
            cfg,
            stats: ExploreStats::default(),
        }
    }

    /// Explores all interleavings of an `n`-node system in which
    /// `requesters` issue one critical-section request each at time zero.
    ///
    /// Returns exploration statistics, or the first [`Violation`] found.
    ///
    /// # Errors
    ///
    /// Returns `Err(Violation)` when two nodes can be inside their
    /// critical sections simultaneously under some delivery order.
    pub fn check<F>(
        mut self,
        factory: F,
        n: usize,
        requesters: &[usize],
    ) -> Result<ExploreStats, Violation>
    where
        F: ProtocolFactory,
        F::Node: Protocol + Clone,
        <F::Node as Protocol>::Msg: Clone + PartialEq,
        <F::Node as Protocol>::Timer: PartialEq,
    {
        let mut world = World {
            nodes: factory.build_all(n),
            in_flight: VecDeque::new(),
            timers: Vec::new(),
            in_cs: vec![false; n],
            cs_entries: 0,
        };
        for i in 0..n {
            let acts = world.nodes[i].step(Input::Start);
            apply(&mut world, NodeId::from_index(i), acts)?;
        }
        for &r in requesters {
            let acts = world.nodes[r].step(Input::RequestCs);
            apply(&mut world, NodeId::from_index(r), acts)?;
        }
        let mut schedule = Vec::new();
        self.dfs(&world, 0, &mut schedule)?;
        Ok(self.stats)
    }

    fn dfs<P>(
        &mut self,
        world: &World<P>,
        depth: usize,
        schedule: &mut Vec<usize>,
    ) -> Result<(), Violation>
    where
        P: Protocol + Clone,
        P::Msg: Clone + PartialEq,
        P::Timer: PartialEq,
    {
        self.stats.states_explored += 1;
        if self.stats.states_explored > self.cfg.max_states {
            return Ok(()); // exploration budget exhausted
        }
        if depth >= self.cfg.max_depth {
            self.stats.depth_bound_hits += 1;
            return Ok(());
        }

        let mut progressed = false;

        // Branch over every in-flight message as "delivered next".
        for idx in 0..world.in_flight.len() {
            progressed = true;
            let mut next = world.clone();
            let (from, to, msg) = next.in_flight.remove(idx).expect("index valid");
            schedule.push(idx);
            let acts = next.nodes[to.index()].step(Input::Deliver { from, msg });
            apply(&mut next, to, acts).map_err(|mut v| {
                v.schedule = schedule.clone();
                v
            })?;
            // Nodes that entered their CS complete it immediately in a
            // separate branch point: deliver CsDone now (modelling a fast
            // CS) — slow CSes are modelled by the interleavings where
            // other messages are delivered first (handled by recursion
            // order, since CsDone is only fed when we choose to).
            self.dfs(&next, depth + 1, schedule)?;
            schedule.pop();
        }

        // Branch over finishing any critical section currently open.
        for i in 0..world.in_cs.len() {
            if world.in_cs[i] {
                progressed = true;
                let mut next = world.clone();
                next.in_cs[i] = false;
                schedule.push(usize::MAX - i);
                let acts = next.nodes[i].step(Input::CsDone);
                apply(&mut next, NodeId::from_index(i), acts).map_err(|mut v| {
                    v.schedule = schedule.clone();
                    v
                })?;
                self.dfs(&next, depth + 1, schedule)?;
                schedule.pop();
            }
        }

        // Branch over every pending timer as "fires next".
        for idx in 0..world.timers.len() {
            progressed = true;
            let mut next = world.clone();
            let (node, timer) = next.timers.remove(idx);
            schedule.push(1_000_000 + idx);
            let acts = next.nodes[node.index()].step(Input::Timer(timer));
            apply(&mut next, node, acts).map_err(|mut v| {
                v.schedule = schedule.clone();
                v
            })?;
            self.dfs(&next, depth + 1, schedule)?;
            schedule.pop();
        }

        if !progressed {
            self.stats.quiescent_paths += 1;
        }
        // Count CS entries once per state for coarse coverage feedback.
        self.stats.cs_entries = self.stats.cs_entries.max(world.cs_entries);
        Ok(())
    }
}

fn apply<P>(
    world: &mut World<P>,
    src: NodeId,
    actions: Vec<Action<P::Msg, P::Timer>>,
) -> Result<(), Violation>
where
    P: Protocol + Clone,
    P::Msg: Clone + PartialEq,
    P::Timer: PartialEq,
{
    let n = world.nodes.len();
    for action in actions {
        match action {
            Action::Send { to, msg } => world.in_flight.push_back((src, to, msg)),
            Action::Broadcast { msg, except } => {
                for i in 0..n {
                    let to = NodeId::from_index(i);
                    if to != src && !except.contains(&to) {
                        world.in_flight.push_back((src, to, msg.clone()));
                    }
                }
            }
            Action::SetTimer { timer, .. } => {
                // Replace a pending instance of the same timer identity.
                world
                    .timers
                    .retain(|(node, t)| !(*node == src && *t == timer));
                world.timers.push((src, timer));
            }
            Action::CancelTimer(timer) => {
                world
                    .timers
                    .retain(|(node, t)| !(*node == src && *t == timer));
            }
            Action::EnterCs => {
                if let Some(other) = world.in_cs.iter().position(|&c| c) {
                    return Err(Violation {
                        nodes: (NodeId::from_index(other), src),
                        schedule: Vec::new(),
                    });
                }
                world.in_cs[src.index()] = true;
                world.cs_entries += 1;
            }
            Action::Note(_) => {}
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tokq_protocol::centralized::CentralConfig;
    use tokq_protocol::ricart_agrawala::RaConfig;
    use tokq_protocol::suzuki_kasami::SkConfig;

    fn small() -> ExploreConfig {
        ExploreConfig {
            max_depth: 20,
            max_states: 400_000,
        }
    }

    #[test]
    fn ricart_agrawala_exhaustively_safe_2_requesters() {
        let stats = Explorer::new(small())
            .check(RaConfig, 3, &[0, 1])
            .expect("RA must be safe under all interleavings");
        assert!(stats.states_explored > 100);
        assert!(stats.quiescent_paths > 0);
    }

    #[test]
    fn suzuki_kasami_exhaustively_safe() {
        let stats = Explorer::new(small())
            .check(SkConfig::default(), 3, &[1, 2])
            .expect("SK must be safe under all interleavings");
        assert!(stats.states_explored > 100);
    }

    #[test]
    fn centralized_exhaustively_safe() {
        let stats = Explorer::new(small())
            .check(CentralConfig::default(), 3, &[0, 1, 2])
            .expect("centralized must be safe");
        assert!(stats.quiescent_paths > 0);
    }

    /// A deliberately broken protocol: grants itself the CS on request and
    /// also grants anyone who asks, with no coordination.
    #[derive(Clone)]
    struct Broken {
        id: NodeId,
        n: usize,
    }
    #[derive(Clone, Debug, PartialEq)]
    struct Nothing;
    impl tokq_protocol::api::ProtocolMessage for Nothing {
        fn kind(&self) -> &'static str {
            "NOTHING"
        }
    }
    impl Protocol for Broken {
        type Msg = Nothing;
        type Timer = u8;
        fn id(&self) -> NodeId {
            self.id
        }
        fn num_nodes(&self) -> usize {
            self.n
        }
        fn step(&mut self, input: Input<Nothing, u8>) -> Vec<Action<Nothing, u8>> {
            match input {
                Input::RequestCs => vec![Action::EnterCs],
                _ => vec![],
            }
        }
        fn holds_token(&self) -> bool {
            true
        }
        fn algorithm(&self) -> &'static str {
            "broken"
        }
    }
    struct BrokenFactory;
    impl ProtocolFactory for BrokenFactory {
        type Node = Broken;
        fn build(&self, id: NodeId, n: usize) -> Broken {
            Broken { id, n }
        }
    }

    #[test]
    fn explorer_catches_broken_protocol() {
        let err = Explorer::new(small())
            .check(BrokenFactory, 2, &[0, 1])
            .expect_err("two unconditional grants must collide");
        assert_ne!(err.nodes.0, err.nodes.1);
        let msg = err.to_string();
        assert!(msg.contains("mutual exclusion violated"), "{msg}");
    }
}
