//! Serializable schedules and deterministic replay.
//!
//! The model checker in [`crate::explore`] reports counterexamples as a
//! [`Schedule`]: the algorithm label, the boot configuration (node count,
//! requesters, fault budgets), and the exact sequence of scheduling
//! decisions ([`Step`]s) that exposes the bug. A schedule is plain data —
//! serde-serializable, renderable as JSONL, and emittable through the
//! `tokq-obs` flight recorder — and [`replay`] re-executes one
//! step-for-step against a freshly booted system. The world evolves
//! deterministically from a schedule, so a replay always reproduces the
//! identical event sequence (pinned by `tests/model_checker.rs`).
//!
//! The record/replay workflow:
//!
//! 1. run the explorer (or any producer) with an [`tokq_obs::Obs`] handle
//!    that has a flight recorder attached; a violation emits its shrunk
//!    schedule as `schedule` / `schedule_step` events;
//! 2. dump the recorder ([`tokq_obs::FlightRecorder::dump_jsonl`]) or grab
//!    its snapshot;
//! 3. rebuild the schedule with [`Schedule::from_events`] (or
//!    [`Schedule::from_jsonl`]) and hand it to [`replay`] for step-level
//!    forensics.

use serde::{Deserialize, Serialize};
use tokq_obs::{Event, Level, Obs};
use tokq_protocol::api::{Protocol, ProtocolFactory};
use tokq_protocol::types::NodeId;

use crate::explore::{ViolationKind, World};
use crate::fault::FaultBudget;
use crate::trace::TraceKind;

/// One scheduling decision of the model checker.
///
/// Indices are positions into the respective queue (in-flight messages in
/// arrival order, pending timers in arming order) *at the moment the step
/// executes* — the same state the explorer saw, because replay evolves the
/// world identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Step {
    /// Deliver the in-flight message at `index`.
    Deliver {
        /// Position in the in-flight queue.
        index: usize,
    },
    /// Node `node` completes its critical section.
    CsDone {
        /// The node inside its CS.
        node: NodeId,
    },
    /// The pending timer at `index` fires.
    Timer {
        /// Position in the pending-timer list.
        index: usize,
    },
    /// Fault injection: node `node` fail-stops.
    Crash {
        /// The crashing node.
        node: NodeId,
    },
    /// Fault injection: crashed node `node` restarts.
    Recover {
        /// The recovering node.
        node: NodeId,
    },
    /// Fault injection: the in-flight message at `index` is lost.
    Drop {
        /// Position in the in-flight queue.
        index: usize,
    },
    /// Fault injection: the in-flight message at `index` is duplicated.
    Duplicate {
        /// Position in the in-flight queue.
        index: usize,
    },
}

impl Step {
    /// True for the fault-injection steps (crash, recover, drop,
    /// duplicate); false for ordinary scheduling decisions.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            Step::Crash { .. } | Step::Recover { .. } | Step::Drop { .. } | Step::Duplicate { .. }
        )
    }
}

/// A complete, self-describing scheduling decision sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Algorithm label (diagnostic only; [`replay`] runs whatever factory
    /// you pass it).
    pub algorithm: String,
    /// Number of nodes in the system.
    pub n: usize,
    /// Nodes that issue one CS request each at boot, in issue order.
    pub requesters: Vec<usize>,
    /// The fault budgets the schedule was explored under; replay enforces
    /// the same limits, so a schedule cannot smuggle in extra faults.
    pub faults: FaultBudget,
    /// The scheduling decisions, in order.
    pub steps: Vec<Step>,
}

impl Schedule {
    /// Renders the schedule as `tokq-obs` events: one `schedule` header
    /// carrying the boot configuration, then one `schedule_step` event per
    /// step (target `explore`).
    pub fn to_events(&self) -> Vec<Event> {
        let mut events = Vec::with_capacity(self.steps.len() + 1);
        events.push(
            Event::new("explore", Level::Info, "schedule")
                .field("algorithm", &self.algorithm)
                .field("n", &self.n)
                .field("requesters", &self.requesters)
                .field("faults", &self.faults)
                .field("len", &self.steps.len()),
        );
        for (idx, step) in self.steps.iter().enumerate() {
            events.push(
                Event::new("explore", Level::Debug, "schedule_step")
                    .field("idx", &idx)
                    .field("step", step),
            );
        }
        events
    }

    /// Reconstructs a schedule from an event stream (e.g. a flight-recorder
    /// snapshot). Unrelated events are ignored; `schedule_step` events may
    /// arrive out of order (they carry their index) but must be gap-free
    /// and match the header's step count.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem: no header,
    /// a missing/mistyped field, duplicate or missing step indices.
    pub fn from_events(events: &[Event]) -> Result<Schedule, String> {
        let header = events
            .iter()
            .find(|e| e.name == "schedule")
            .ok_or("missing `schedule` header event")?;
        let field = |name: &str| {
            header
                .field_value(name)
                .ok_or_else(|| format!("schedule header missing `{name}`"))
        };
        let algorithm = String::deserialize(field("algorithm")?).map_err(|e| e.to_string())?;
        let n = usize::deserialize(field("n")?).map_err(|e| e.to_string())?;
        let requesters =
            Vec::<usize>::deserialize(field("requesters")?).map_err(|e| e.to_string())?;
        let faults = FaultBudget::deserialize(field("faults")?).map_err(|e| e.to_string())?;
        let len = usize::deserialize(field("len")?).map_err(|e| e.to_string())?;

        let mut steps: Vec<Option<Step>> = vec![None; len];
        for ev in events.iter().filter(|e| e.name == "schedule_step") {
            let idx =
                usize::deserialize(ev.field_value("idx").ok_or("schedule_step missing `idx`")?)
                    .map_err(|e| e.to_string())?;
            let step = Step::deserialize(
                ev.field_value("step")
                    .ok_or("schedule_step missing `step`")?,
            )
            .map_err(|e| e.to_string())?;
            let slot = steps
                .get_mut(idx)
                .ok_or_else(|| format!("schedule_step index {idx} out of range (len {len})"))?;
            if slot.replace(step).is_some() {
                return Err(format!("duplicate schedule_step index {idx}"));
            }
        }
        let steps = steps
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.ok_or_else(|| format!("missing schedule_step index {i}")))
            .collect::<Result<Vec<Step>, String>>()?;
        Ok(Schedule {
            algorithm,
            n,
            requesters,
            faults,
            steps,
        })
    }

    /// The schedule as JSONL, one event per line (the flight-recorder
    /// schema).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.to_events() {
            out.push_str(&ev.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Parses a schedule back from JSONL. Lines that are not
    /// schedule-related events are ignored, so a raw flight-recorder dump
    /// containing one schedule can be fed in unfiltered.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line or structural
    /// problem (see [`Schedule::from_events`]).
    pub fn from_jsonl(text: &str) -> Result<Schedule, String> {
        let events = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(Event::from_jsonl)
            .collect::<Result<Vec<Event>, String>>()?;
        Schedule::from_events(&events)
    }

    /// Emits the schedule through an [`Obs`] handle (and thus into any
    /// attached flight recorder).
    pub fn emit(&self, obs: &Obs) {
        for ev in self.to_events() {
            obs.emit(ev);
        }
    }
}

/// One replayed scheduling decision together with everything it caused,
/// in execution order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayStep {
    /// Position in the schedule.
    pub idx: usize,
    /// The decision.
    pub step: Step,
    /// The observable consequences: receptions, sends, CS transitions,
    /// protocol notes, crashes/recoveries.
    pub events: Vec<(NodeId, TraceKind)>,
}

/// The outcome of replaying a [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// Events produced while booting (Start inputs, then one RequestCs per
    /// requester).
    pub boot: Vec<(NodeId, TraceKind)>,
    /// The replayed steps with their consequences. Stops early at a
    /// violation.
    pub steps: Vec<ReplayStep>,
    /// Indices of schedule steps that were not applicable in the state
    /// reached (always empty for schedules the explorer produced; shrink
    /// candidates use the tolerance).
    pub skipped: Vec<usize>,
    /// A mutual-exclusion violation hit during replay, if any.
    pub violation: Option<ViolationKind>,
    /// Requesters left unserved in a quiescent final state, when the
    /// schedule is fault-free — the deadlock signature. Empty otherwise.
    pub starved: Vec<NodeId>,
    /// Total critical-section entries observed.
    pub cs_entries: u64,
}

impl Replay {
    /// True if this replay exhibits a violation of the same class as
    /// `kind` (the shrinker's acceptance test).
    pub fn reproduces(&self, kind: &ViolationKind) -> bool {
        match kind {
            ViolationKind::MutualExclusion { .. } => {
                matches!(self.violation, Some(ViolationKind::MutualExclusion { .. }))
            }
            ViolationKind::Deadlock { .. } => !self.starved.is_empty(),
        }
    }
}

/// Re-executes `schedule` step-for-step against a freshly booted system.
///
/// The world evolves deterministically, so two replays of the same
/// schedule produce identical [`Replay`] values bit for bit. Steps that
/// are not applicable in the reached state (possible only for hand-edited
/// or shrunk-candidate schedules) are skipped and recorded in
/// [`Replay::skipped`].
pub fn replay<F>(factory: &F, schedule: &Schedule) -> Replay
where
    F: ProtocolFactory,
    F::Node: Protocol + Clone,
{
    let (mut world, boot, boot_violation) =
        World::boot(factory, schedule.n, &schedule.requesters, schedule.faults);
    let mut rep = Replay {
        boot,
        steps: Vec::new(),
        skipped: Vec::new(),
        violation: boot_violation,
        starved: Vec::new(),
        cs_entries: 0,
    };
    if rep.violation.is_none() {
        for (idx, &step) in schedule.steps.iter().enumerate() {
            match world.apply(step) {
                Ok((events, violation)) => {
                    rep.steps.push(ReplayStep { idx, step, events });
                    if violation.is_some() {
                        rep.violation = violation;
                        break;
                    }
                }
                Err(_) => rep.skipped.push(idx),
            }
        }
    }
    rep.cs_entries = world.cs_entries();
    if rep.violation.is_none() && !schedule.steps.iter().any(|s| s.is_fault()) && world.quiescent()
    {
        rep.starved = world.starving();
    }
    rep
}

/// Drives a random but *valid* walk of the scheduling state space: each
/// choice selects among the currently enabled steps, so the resulting
/// schedule replays without skips. The walk stops at quiescence, at a
/// violation, or when `choices` runs out. Used by the schedule round-trip
/// proptest and handy for smoke-testing.
pub fn random_schedule<F>(
    factory: &F,
    n: usize,
    requesters: &[usize],
    faults: FaultBudget,
    choices: &[u16],
) -> Schedule
where
    F: ProtocolFactory,
    F::Node: Protocol + Clone,
{
    let (mut world, _, boot_violation) = World::boot(factory, n, requesters, faults);
    let algorithm = world.algorithm().to_owned();
    let mut steps = Vec::new();
    if boot_violation.is_none() {
        for &choice in choices {
            let enabled = world.enabled();
            if enabled.is_empty() {
                break;
            }
            let step = enabled[choice as usize % enabled.len()];
            let (_, violation) = world.apply(step).expect("enabled steps apply");
            steps.push(step);
            if violation.is_some() {
                break;
            }
        }
    }
    Schedule {
        algorithm,
        n,
        requesters: requesters.to_vec(),
        faults,
        steps,
    }
}
