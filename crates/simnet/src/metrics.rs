//! Metrics collection: the three quantities the paper plots (messages per
//! CS, delay per CS, forwarded fraction) plus supporting detail.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use tokq_analysis::stats::OnlineStats;
use tokq_protocol::event::Note;
use tokq_protocol::types::NodeId;

use crate::time::SimTime;

/// Live accumulator owned by the simulation.
#[derive(Debug, Clone)]
pub struct Collector {
    warmup_cs: u64,
    n: usize,

    cs_total: u64,
    arrivals: u64,
    msgs_total: u64,
    msgs_by_kind: BTreeMap<&'static str, u64>,
    notes: BTreeMap<&'static str, u64>,
    per_node_cs: Vec<u64>,

    warmed_up: bool,
    msgs_at_warmup: u64,
    msgs_at_last_cs: u64,

    per_cs_messages: OnlineStats,
    delay: OnlineStats,
    grant_latency: OnlineStats,
    sojourn: OnlineStats,
}

impl Collector {
    /// A collector discarding the first `warmup_cs` completions.
    pub fn new(n: usize, warmup_cs: u64) -> Self {
        Collector {
            warmup_cs,
            n,
            cs_total: 0,
            arrivals: 0,
            msgs_total: 0,
            msgs_by_kind: BTreeMap::new(),
            notes: BTreeMap::new(),
            per_node_cs: vec![0; n],
            warmed_up: warmup_cs == 0,
            msgs_at_warmup: 0,
            msgs_at_last_cs: 0,
            per_cs_messages: OnlineStats::new(),
            delay: OnlineStats::new(),
            grant_latency: OnlineStats::new(),
            sojourn: OnlineStats::new(),
        }
    }

    /// Records one transmitted message of the given kind.
    pub fn message(&mut self, kind: &'static str) {
        self.msgs_total += 1;
        *self.msgs_by_kind.entry(kind).or_insert(0) += 1;
    }

    /// Records a protocol note.
    pub fn note(&mut self, note: Note) {
        *self.notes.entry(note.label()).or_insert(0) += 1;
    }

    /// Records an application request arrival.
    pub fn arrival(&mut self) {
        self.arrivals += 1;
    }

    /// Records a critical-section grant (entry).
    pub fn cs_entered(&mut self, requested_at: SimTime, now: SimTime) {
        if self.warmed_up {
            self.grant_latency
                .push(now.since(requested_at).as_secs_f64());
        }
    }

    /// Records a critical-section completion.
    pub fn cs_completed(
        &mut self,
        node: NodeId,
        arrived_at: SimTime,
        requested_at: SimTime,
        now: SimTime,
    ) {
        self.cs_total += 1;
        self.per_node_cs[node.index()] += 1;
        if !self.warmed_up {
            if self.cs_total >= self.warmup_cs {
                self.warmed_up = true;
                self.msgs_at_warmup = self.msgs_total;
                self.msgs_at_last_cs = self.msgs_total;
            }
            return;
        }
        self.delay.push(now.since(requested_at).as_secs_f64());
        self.sojourn.push(now.since(arrived_at).as_secs_f64());
        let delta = self.msgs_total - self.msgs_at_last_cs;
        self.per_cs_messages.push(delta as f64);
        self.msgs_at_last_cs = self.msgs_total;
    }

    /// Completions counted after warmup.
    pub fn completed_after_warmup(&self) -> u64 {
        if self.warmed_up {
            self.cs_total.saturating_sub(self.warmup_cs)
        } else {
            0
        }
    }

    /// Total completions including warmup.
    pub fn cs_total(&self) -> u64 {
        self.cs_total
    }

    /// Freezes the collector into a [`Report`].
    pub fn finish(self, sim_end: SimTime, seed: u64) -> Report {
        let measured = self.completed_after_warmup();
        Report {
            n: self.n,
            seed,
            sim_end_secs: sim_end.as_secs_f64(),
            cs_total: self.cs_total,
            cs_measured: measured,
            arrivals: self.arrivals,
            messages_total: self.msgs_total,
            messages_measured: self.msgs_total - self.msgs_at_warmup,
            messages_by_kind: self
                .msgs_by_kind
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            notes: self
                .notes
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
            per_node_cs: self.per_node_cs,
            per_cs_messages: self.per_cs_messages,
            delay: self.delay,
            grant_latency: self.grant_latency,
            sojourn: self.sojourn,
        }
    }
}

/// Final results of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Number of nodes simulated.
    pub n: usize,
    /// RNG seed of the run.
    pub seed: u64,
    /// Virtual time at which the run ended, in seconds.
    pub sim_end_secs: f64,
    /// All critical sections completed, including warmup.
    pub cs_total: u64,
    /// Critical sections measured (after warmup).
    pub cs_measured: u64,
    /// Application request arrivals.
    pub arrivals: u64,
    /// All messages transmitted, including warmup.
    pub messages_total: u64,
    /// Messages transmitted after warmup.
    pub messages_measured: u64,
    /// Message counts per kind (whole run).
    pub messages_by_kind: BTreeMap<String, u64>,
    /// Protocol note counts (whole run).
    pub notes: BTreeMap<String, u64>,
    /// Critical sections completed per node (fairness evidence).
    pub per_node_cs: Vec<u64>,
    /// Per-completion message increments (mean = messages per CS; the
    /// paper's Figure 3 metric) with CI support.
    pub per_cs_messages: OnlineStats,
    /// Request-to-completion delay in seconds (the paper's Figure 4
    /// metric, matching X̄ which includes execution time).
    pub delay: OnlineStats,
    /// Request-to-grant latency in seconds.
    pub grant_latency: OnlineStats,
    /// Arrival-to-completion sojourn (includes local queueing).
    pub sojourn: OnlineStats,
}

impl Report {
    /// Average messages per measured critical section (Figure 3 metric).
    pub fn messages_per_cs(&self) -> f64 {
        if self.cs_measured == 0 {
            return f64::NAN;
        }
        self.messages_measured as f64 / self.cs_measured as f64
    }

    /// Average request-to-completion delay in seconds (Figure 4 metric).
    pub fn mean_delay(&self) -> f64 {
        self.delay.mean()
    }

    /// Fraction of REQUEST transmissions that were forwards (Figure 5
    /// metric): forwarded hops divided by all REQUEST-kind messages.
    pub fn forwarded_fraction(&self) -> f64 {
        let requests = self.messages_by_kind.get("REQUEST").copied().unwrap_or(0);
        if requests == 0 {
            return 0.0;
        }
        let forwarded = self.notes.get("request_forwarded").copied().unwrap_or(0);
        forwarded as f64 / requests as f64
    }

    /// Count of a protocol note by label (0 when absent).
    pub fn note_count(&self, label: &str) -> u64 {
        self.notes.get(label).copied().unwrap_or(0)
    }

    /// Count of messages of `kind` over the whole run (0 when absent).
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.messages_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Jain's fairness index over per-node completion counts
    /// (1.0 = perfectly even).
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self.per_node_cs.iter().map(|&c| c as f64).collect();
        let sum: f64 = xs.iter().sum();
        let sumsq: f64 = xs.iter().map(|x| x * x).sum();
        if sumsq == 0.0 {
            return 1.0;
        }
        sum * sum / (xs.len() as f64 * sumsq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_discarded() {
        let mut c = Collector::new(2, 2);
        let t = SimTime::from_secs_f64;
        c.message("REQUEST");
        c.cs_completed(NodeId(0), t(0.0), t(0.0), t(1.0));
        c.message("REQUEST");
        c.cs_completed(NodeId(0), t(0.0), t(0.0), t(2.0)); // warmup boundary
        c.message("REQUEST");
        c.message("PRIVILEGE");
        c.cs_completed(NodeId(1), t(2.0), t(2.5), t(3.0)); // measured
        let r = c.finish(t(3.0), 1);
        assert_eq!(r.cs_total, 3);
        assert_eq!(r.cs_measured, 1);
        assert_eq!(r.messages_measured, 2);
        assert!((r.messages_per_cs() - 2.0).abs() < 1e-12);
        assert!((r.mean_delay() - 0.5).abs() < 1e-12);
        assert!((r.sojourn.mean() - 1.0).abs() < 1e-12);
        assert_eq!(r.per_node_cs, vec![2, 1]);
    }

    #[test]
    fn forwarded_fraction_reads_notes() {
        let mut c = Collector::new(1, 0);
        c.message("REQUEST");
        c.message("REQUEST");
        c.note(Note::RequestForwarded {
            requester: NodeId(0),
            hops: 1,
        });
        let r = c.finish(SimTime::ZERO, 0);
        assert!((r.forwarded_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.note_count("request_forwarded"), 1);
        assert_eq!(r.kind_count("REQUEST"), 2);
        assert_eq!(r.kind_count("NOPE"), 0);
    }

    #[test]
    fn empty_report_is_nan_safe() {
        let c = Collector::new(3, 5);
        let r = c.finish(SimTime::ZERO, 9);
        assert!(r.messages_per_cs().is_nan());
        assert_eq!(r.forwarded_fraction(), 0.0);
        assert_eq!(r.jain_fairness(), 1.0);
    }

    #[test]
    fn jain_fairness_detects_skew() {
        let mut c = Collector::new(2, 0);
        let t = SimTime::from_secs_f64;
        for _ in 0..10 {
            c.cs_completed(NodeId(0), t(0.0), t(0.0), t(1.0));
        }
        let r = c.finish(t(1.0), 0);
        assert!((r.jain_fairness() - 0.5).abs() < 1e-12);
    }
}
