//! Event sinks: where structured events go once the filter passes them.
//!
//! [`Sink`] is the pluggable output trait; the crate ships three
//! implementations and [`crate::Obs`] fans out to any number of them:
//!
//! * [`FlightRecorder`] — bounded ring keeping the last N events for
//!   post-mortem JSONL dumps (always cheap, meant to stay on).
//! * [`JsonlWriter`] — streams each event as one JSONL line to any
//!   `Write` (stderr, a file, a test buffer).
//! * [`CollectSink`] — appends to an in-memory `Vec` for tests.

use std::io::Write;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::Event;

/// A destination for structured events.
///
/// Implementations must be cheap and non-blocking where possible: `emit`
/// is called on protocol threads after filtering, with the event already
/// materialized.
pub trait Sink: Send + Sync {
    /// Consumes one event.
    fn emit(&self, event: &Event);
}

/// A bounded ring buffer keeping the last N events (the flight recorder).
///
/// Intended to run unconditionally: recording is one short mutex-guarded
/// slot write, and the buffer never grows past its capacity. After an
/// incident (token loss, arbiter crash), [`FlightRecorder::dump_jsonl`]
/// returns the tail of protocol history as JSONL, oldest first.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    slots: Vec<Option<Event>>,
    /// Total events ever recorded; `head % capacity` is the next slot.
    head: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (min 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(FlightRecorder {
            ring: Mutex::new(Ring {
                slots: vec![None; capacity.max(1)],
                head: 0,
            }),
        })
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        let ring = self.ring.lock();
        ring.head.min(ring.slots.len() as u64) as usize
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.lock().head == 0
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded_total(&self) -> u64 {
        self.ring.lock().head
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let ring = self.ring.lock();
        let cap = ring.slots.len() as u64;
        let start = ring.head.saturating_sub(cap);
        (start..ring.head)
            .filter_map(|i| ring.slots[(i % cap) as usize].clone())
            .collect()
    }

    /// The retained events as JSONL, oldest first, one event per line.
    pub fn dump_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            out.push_str(&event.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Discards all retained events.
    pub fn clear(&self) {
        let mut ring = self.ring.lock();
        ring.slots.iter_mut().for_each(|s| *s = None);
        ring.head = 0;
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, event: &Event) {
        let mut ring = self.ring.lock();
        let idx = (ring.head % ring.slots.len() as u64) as usize;
        ring.slots[idx] = Some(event.clone());
        ring.head += 1;
    }
}

/// Streams each event as one JSONL line to a writer.
pub struct JsonlWriter<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonlWriter<W> {
    /// Wraps a writer; each emitted event becomes one line.
    pub fn new(writer: W) -> Arc<Self> {
        Arc::new(JsonlWriter {
            writer: Mutex::new(writer),
        })
    }
}

impl JsonlWriter<std::io::Stderr> {
    /// A JSONL stream to stderr.
    pub fn stderr() -> Arc<Self> {
        JsonlWriter::new(std::io::stderr())
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JsonlWriter")
    }
}

impl<W: Write + Send> Sink for JsonlWriter<W> {
    fn emit(&self, event: &Event) {
        let line = event.to_jsonl();
        let mut w = self.writer.lock();
        // Observability must never take down the observed system; drop
        // the line on I/O failure.
        let _ = writeln!(w, "{line}");
    }
}

/// Collects events into memory; for tests and short runs.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Mutex<Vec<Event>>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(CollectSink::default())
    }

    /// All events emitted so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Number of events collected.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events were collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl Sink for CollectSink {
    fn emit(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::Level;

    fn ev(name: &str) -> Event {
        Event::new("t", Level::Info, name)
    }

    #[test]
    fn recorder_keeps_last_n() {
        let rec = FlightRecorder::new(3);
        for i in 0..5 {
            rec.emit(&ev(&format!("e{i}")));
        }
        let names: Vec<String> = rec.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["e2", "e3", "e4"]);
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded_total(), 5);
    }

    #[test]
    fn recorder_partial_fill_and_clear() {
        let rec = FlightRecorder::new(8);
        assert!(rec.is_empty());
        rec.emit(&ev("only"));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.dump_jsonl().lines().count(), 1);
        rec.clear();
        assert!(rec.is_empty());
        assert_eq!(rec.dump_jsonl(), "");
    }

    #[test]
    fn dump_is_parseable_jsonl() {
        let rec = FlightRecorder::new(4);
        rec.emit(&ev("a"));
        rec.emit(&ev("b"));
        let dump = rec.dump_jsonl();
        let parsed: Vec<Event> = dump
            .lines()
            .map(|l| Event::from_jsonl(l).unwrap())
            .collect();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "a");
        assert_eq!(parsed[1].name, "b");
    }

    #[test]
    fn jsonl_writer_streams_lines() {
        let sink = JsonlWriter::new(Vec::<u8>::new());
        sink.emit(&ev("x"));
        sink.emit(&ev("y"));
        let bytes = sink.writer.lock().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with('{'));
    }

    #[test]
    fn collect_sink_orders_events() {
        let sink = CollectSink::new();
        sink.emit(&ev("first"));
        sink.emit(&ev("second"));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.events()[0].name, "first");
    }
}
