//! Lock-free-on-the-hot-path metrics: counters, gauges, and log-bucketed
//! latency histograms.
//!
//! A [`Registry`] hands out cheap cloneable handles ([`Counter`],
//! [`Gauge`], [`Histogram`]). Registration takes a short write lock once;
//! after that every update is a relaxed atomic op on the handle — no map
//! lookup, no lock, no allocation. Metrics are keyed by a static name
//! plus an optional static label (e.g. `msg_sent` / `request`), matching
//! how the protocol's message kinds and note labels are already
//! `&'static str`.
//!
//! Histograms bucket by power of two, so they are fixed-size (65 slots),
//! mergeable, and give order-of-magnitude-accurate p50/p90/p99 without
//! storing samples. Durations are recorded in nanoseconds.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;
use serde::value::Value;
use tokq_analysis::report::Table;

/// A metric's identity: static name plus optional static label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    name: &'static str,
    label: &'static str,
}

impl Key {
    fn render(&self) -> String {
        if self.label.is_empty() {
            self.name.to_owned()
        } else {
            format!("{}/{}", self.name, self.label)
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// An unregistered counter (for tests or local tallies).
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous-value gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// An unregistered gauge.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket 0 holds value 0, bucket i holds
/// values in `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log-bucketed histogram handle (typically latency in nanoseconds).
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore::new()))
    }
}

fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its reported quantile value).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An unregistered histogram.
    pub fn detached() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
        core.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// A point-in-time summary of the recorded distribution.
    pub fn summary(&self) -> HistogramSummary {
        let core = &self.0;
        let counts: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = counts.iter().sum();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(BUCKETS - 1)
        };
        HistogramSummary {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            max: core.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Snapshot statistics for one histogram. Quantiles are upper bounds of
/// the containing power-of-two bucket (≤ 2x overestimate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (exact, not bucketed).
    pub sum: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Median, bucket-resolved.
    pub p50: u64,
    /// 90th percentile, bucket-resolved.
    pub p90: u64,
    /// 99th percentile, bucket-resolved.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value (exact), or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Default)]
struct Metrics {
    counters: HashMap<Key, Counter>,
    gauges: HashMap<Key, Gauge>,
    histograms: HashMap<Key, Histogram>,
}

/// Owns every registered metric; cheap to share via `Arc`.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<Metrics>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter `name`, registering it on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.counter_with(name, "")
    }

    /// The counter `name/label`, registering it on first use.
    pub fn counter_with(&self, name: &'static str, label: &'static str) -> Counter {
        let key = Key { name, label };
        if let Some(c) = self.metrics.read().counters.get(&key) {
            return c.clone();
        }
        self.metrics
            .write()
            .counters
            .entry(key)
            .or_default()
            .clone()
    }

    /// The gauge `name`, registering it on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let key = Key { name, label: "" };
        if let Some(g) = self.metrics.read().gauges.get(&key) {
            return g.clone();
        }
        self.metrics.write().gauges.entry(key).or_default().clone()
    }

    /// The histogram `name`, registering it on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        self.histogram_with(name, "")
    }

    /// The histogram `name/label`, registering it on first use.
    pub fn histogram_with(&self, name: &'static str, label: &'static str) -> Histogram {
        let key = Key { name, label };
        if let Some(h) = self.metrics.read().histograms.get(&key) {
            return h.clone();
        }
        self.metrics
            .write()
            .histograms
            .entry(key)
            .or_default()
            .clone()
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.read();
        Snapshot {
            counters: metrics
                .counters
                .iter()
                .map(|(k, c)| (k.render(), c.get()))
                .collect(),
            gauges: metrics
                .gauges
                .iter()
                .map(|(k, g)| (k.render(), g.get()))
                .collect(),
            histograms: metrics
                .histograms
                .iter()
                .map(|(k, h)| (k.render(), h.summary()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Registry`]'s contents, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by rendered name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by rendered name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by rendered name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// Counters and gauges as a two-column report table.
    pub fn counters_table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["metric", "value"]);
        for (name, v) in &self.counters {
            t.row(vec![name.clone().into(), (*v).into()]);
        }
        for (name, v) in &self.gauges {
            t.row(vec![name.clone().into(), (*v as f64).into()]);
        }
        t
    }

    /// Histogram summaries as a report table (nanosecond units).
    pub fn latency_table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "histogram",
                "count",
                "mean_ns",
                "p50_ns",
                "p90_ns",
                "p99_ns",
                "max_ns",
            ],
        );
        for (name, h) in &self.histograms {
            t.row(vec![
                name.clone().into(),
                h.count.into(),
                h.mean().into(),
                h.p50.into(),
                h.p90.into(),
                h.p99.into(),
                h.max.into(),
            ]);
        }
        t
    }

    /// The snapshot as a JSON value (for JSONL metric dumps).
    pub fn to_value(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), Value::U64(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| (k.clone(), Value::I64(*v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Value::Map(vec![
                        ("count".to_owned(), Value::U64(h.count)),
                        ("mean_ns".to_owned(), Value::F64(h.mean())),
                        ("p50_ns".to_owned(), Value::U64(h.p50)),
                        ("p90_ns".to_owned(), Value::U64(h.p90)),
                        ("p99_ns".to_owned(), Value::U64(h.p99)),
                        ("max_ns".to_owned(), Value::U64(h.max)),
                    ]),
                )
            })
            .collect();
        Value::Map(vec![
            ("counters".to_owned(), Value::Map(counters)),
            ("gauges".to_owned(), Value::Map(gauges)),
            ("histograms".to_owned(), Value::Map(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("hits").get(), 3);
        assert_eq!(r.snapshot().counters["hits"], 3);
    }

    #[test]
    fn labelled_counters_are_distinct() {
        let r = Registry::new();
        r.counter_with("msg_sent", "request").add(5);
        r.counter_with("msg_sent", "privilege").add(2);
        let s = r.snapshot();
        assert_eq!(s.counters["msg_sent/request"], 5);
        assert_eq!(s.counters["msg_sent/privilege"], 2);
    }

    #[test]
    fn gauge_set_add_sub() {
        let r = Registry::new();
        let g = r.gauge("inflight");
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        assert_eq!(r.snapshot().gauges["inflight"], 12);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::detached();
        // 90 fast samples, 10 slow ones.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        // p50/p90 land in the bucket containing 100 => upper bound 127.
        assert_eq!(s.p50, 127);
        assert_eq!(s.p90, 127);
        // p99 lands in the bucket containing 1e6 => within [2^19, 2^20).
        assert!(s.p99 >= 1_000_000 && s.p99 < 2_097_152, "p99 = {}", s.p99);
        assert!((s.mean() - (90.0 * 100.0 + 10.0 * 1e6) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_edge_values() {
        let h = Histogram::detached();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.p50, 1);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn empty_histogram_summary_is_zeroed() {
        let s = Histogram::detached().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn snapshot_tables_render() {
        let r = Registry::new();
        r.counter("msgs").add(7);
        r.gauge("depth").set(-2);
        r.histogram("lat").record(1000);
        let s = r.snapshot();
        let counters = s.counters_table("counters").to_ascii();
        assert!(counters.contains("msgs") && counters.contains('7'));
        let lat = s.latency_table("latency").to_csv();
        assert!(lat.starts_with("histogram,count"));
        assert!(lat.contains("lat,1"));
    }

    #[test]
    fn snapshot_to_value_shape() {
        let r = Registry::new();
        r.counter("c").inc();
        let v = r.snapshot().to_value();
        let counters = v.get("counters").and_then(Value::as_map).unwrap();
        assert_eq!(counters[0].0, "c");
    }

    #[test]
    fn bucket_mapping_is_monotone() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 127, 128, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev, "bucket({v}) = {b} < {prev}");
            assert!(v <= bucket_upper(b));
            prev = b;
        }
    }
}
