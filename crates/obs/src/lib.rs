//! Unified observability for the tokq workspace: structured events,
//! latency metrics, and a post-mortem flight recorder, shared by the
//! threaded runtime and the discrete-event simulator.
//!
//! # Architecture
//!
//! * [`metrics::Registry`] — counters, gauges, and log-bucketed latency
//!   histograms with lock-free atomic hot paths.
//! * [`Event`] — one structured record; serialized as one JSONL line in
//!   a schema shared by simulator and runtime (see [`event`]).
//! * [`Sink`] — pluggable event destinations: the bounded
//!   [`FlightRecorder`], streaming [`sink::JsonlWriter`], in-memory
//!   [`sink::CollectSink`].
//! * [`TraceFilter`] — `TOKQ_TRACE=arbiter=debug,net=trace` style
//!   verbosity gating with a one-atomic-load fast reject.
//! * [`Obs`] — the handle tying the above together; cheap to clone and
//!   share across threads.
//!
//! # Example
//!
//! ```
//! use tokq_obs::{Level, Obs, Source, TraceFilter};
//!
//! let obs = Obs::with_filter(Source::Runtime, TraceFilter::with_default(Level::Debug));
//! let recorder = obs.attach_flight_recorder(64, Level::Debug);
//!
//! // Metrics: atomic hot path via cheap handles.
//! let sent = obs.registry().counter_with("msg_sent", "request");
//! sent.inc();
//!
//! // Structured events: one JSONL line per event.
//! obs.emit(tokq_obs::Event::new("arbiter", Level::Debug, "qlist_sealed")
//!     .node(3)
//!     .field("len", &4u64));
//!
//! // Spans: wall-clock latency into a histogram plus open/close events.
//! {
//!     let _span = obs.span("arbiter", "request_collection");
//! }
//!
//! assert_eq!(recorder.snapshot().len(), 3); // event + span open/close
//! let jsonl = recorder.dump_jsonl();
//! assert!(jsonl.lines().count() >= 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod level;
pub mod metrics;
pub mod sink;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::RwLock;

pub use event::{Event, Source};
pub use level::{Level, TraceFilter};
pub use metrics::{Counter, Gauge, Histogram, HistogramSummary, Registry, Snapshot};
pub use sink::{CollectSink, FlightRecorder, Sink};

struct ObsInner {
    source: Source,
    filter: TraceFilter,
    registry: Registry,
    sinks: RwLock<Vec<Arc<dyn Sink>>>,
    recorder: RwLock<Option<Arc<FlightRecorder>>>,
    /// Max level the flight recorder captures, independent of the filter.
    record_level: AtomicU8,
    start: Instant,
}

/// The observability handle: filter, registry, and sinks behind an `Arc`.
///
/// Cloning is cheap; all clones share state. Events pass the
/// [`TraceFilter`] to reach attached sinks; the [`FlightRecorder`], when
/// attached, captures independently of the filter so post-mortem history
/// is available even with streaming output off.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("source", &self.inner.source)
            .field("filter", &self.inner.filter)
            .field("sinks", &self.inner.sinks.read().len())
            .finish()
    }
}

impl Obs {
    /// An observability handle filtered by the `TOKQ_TRACE` environment
    /// variable (unset means everything off).
    pub fn from_env(source: Source) -> Self {
        Obs::with_filter(source, TraceFilter::from_env())
    }

    /// An observability handle with an explicit filter.
    pub fn with_filter(source: Source, filter: TraceFilter) -> Self {
        Obs {
            inner: Arc::new(ObsInner {
                source,
                filter,
                registry: Registry::new(),
                sinks: RwLock::new(Vec::new()),
                recorder: RwLock::new(None),
                record_level: AtomicU8::new(Level::Off as u8),
                start: Instant::now(),
            }),
        }
    }

    /// A handle that drops everything (no filter matches, no sinks); the
    /// zero-overhead default for production paths.
    pub fn disabled(source: Source) -> Self {
        Obs::with_filter(source, TraceFilter::off())
    }

    /// The clock domain of this handle.
    pub fn source(&self) -> Source {
        self.inner.source
    }

    /// The metrics registry (always live, independent of trace filtering).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The active trace filter.
    pub fn filter(&self) -> &TraceFilter {
        &self.inner.filter
    }

    /// Adds an event sink receiving filter-passed events.
    pub fn add_sink(&self, sink: Arc<dyn Sink>) {
        self.inner.sinks.write().push(sink);
    }

    /// Attaches a flight recorder capturing the last `capacity` events at
    /// or below `level`, regardless of the trace filter. Returns the
    /// recorder for later [`FlightRecorder::dump_jsonl`]. Replaces any
    /// previously attached recorder.
    pub fn attach_flight_recorder(&self, capacity: usize, level: Level) -> Arc<FlightRecorder> {
        let recorder = FlightRecorder::new(capacity);
        *self.inner.recorder.write() = Some(recorder.clone());
        self.inner
            .record_level
            .store(level as u8, Ordering::Relaxed);
        recorder
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<Arc<FlightRecorder>> {
        self.inner.recorder.read().clone()
    }

    /// Whether an event at `level` for `target` would go anywhere.
    ///
    /// This is the hot-path pre-check: when it returns `false` the caller
    /// can skip building the [`Event`] entirely. The common disabled case
    /// costs two relaxed atomic loads.
    #[inline]
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        level as u8 <= self.inner.record_level.load(Ordering::Relaxed)
            || self.inner.filter.enabled(target, level)
    }

    /// Seconds since this handle was created (the runtime `ts` domain).
    pub fn now(&self) -> f64 {
        self.inner.start.elapsed().as_secs_f64()
    }

    /// Stamps `event` with the current wall-clock offset and routes it.
    pub fn emit(&self, event: Event) {
        let ts = self.now();
        self.emit_at(ts, event);
    }

    /// Routes `event` with an explicit timestamp (simulated seconds in
    /// the [`Source::Sim`] domain).
    pub fn emit_at(&self, ts: f64, mut event: Event) {
        event.ts = ts;
        event.src = self.inner.source;
        if event.level as u8 <= self.inner.record_level.load(Ordering::Relaxed) {
            if let Some(recorder) = self.inner.recorder.read().as_ref() {
                recorder.emit(&event);
            }
        }
        if self.inner.filter.enabled(&event.target, event.level) {
            for sink in self.inner.sinks.read().iter() {
                sink.emit(&event);
            }
        }
    }

    /// Opens a wall-clock span: emits `span_open` now and, when the
    /// guard drops, `span_close` plus a sample in the `span_ns/<name>`
    /// histogram. Runtime clock domain only — simulator code should
    /// instead call [`Obs::record_latency`] with virtual durations.
    pub fn span(&self, target: &'static str, name: &'static str) -> SpanGuard {
        let emit = self.enabled(target, Level::Debug);
        if emit {
            self.emit(Event::new(target, Level::Debug, "span_open").field("span", &name));
        }
        SpanGuard {
            obs: self.clone(),
            target,
            name,
            node: None,
            start: Instant::now(),
            emit,
        }
    }

    /// Records a latency sample (nanoseconds) into `span_ns/<name>`.
    /// The simulator's entry point for virtual-time latencies.
    pub fn record_latency(&self, name: &'static str, nanos: u64) {
        self.inner
            .registry
            .histogram_with("span_ns", name)
            .record(nanos);
    }
}

/// RAII guard returned by [`Obs::span`]; closing happens on drop.
#[derive(Debug)]
pub struct SpanGuard {
    obs: Obs,
    target: &'static str,
    name: &'static str,
    node: Option<u64>,
    start: Instant,
    emit: bool,
}

impl SpanGuard {
    /// Tags the span (and its close event) with a node id.
    pub fn on_node(mut self, node: u64) -> Self {
        self.node = Some(node);
        self
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.obs
            .inner
            .registry
            .histogram_with("span_ns", self.name)
            .record_duration(elapsed);
        if self.emit {
            let mut event = Event::new(self.target, Level::Debug, "span_close")
                .field("span", &self.name)
                .field(
                    "dur_ns",
                    &(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64),
                );
            event.node = self.node;
            self.obs.emit(event);
        }
    }
}

/// Opens a span on an [`Obs`] handle: `span!(obs, "request_collection")`
/// uses the current module path as the target; the three-argument form
/// names the target explicitly.
#[macro_export]
macro_rules! span {
    ($obs:expr, $target:expr, $name:expr) => {
        $obs.span($target, $name)
    };
    ($obs:expr, $name:expr) => {
        $obs.span(module_path!(), $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_emits_nothing() {
        let obs = Obs::disabled(Source::Runtime);
        let collect = CollectSink::new();
        obs.add_sink(collect.clone());
        assert!(!obs.enabled("arbiter", Level::Info));
        obs.emit(Event::new("arbiter", Level::Info, "ignored"));
        assert!(collect.is_empty());
    }

    #[test]
    fn filter_routes_to_sinks() {
        let obs = Obs::with_filter(Source::Runtime, TraceFilter::parse("arbiter=debug"));
        let collect = CollectSink::new();
        obs.add_sink(collect.clone());
        obs.emit(Event::new("arbiter", Level::Debug, "yes"));
        obs.emit(Event::new("arbiter", Level::Trace, "too_chatty"));
        obs.emit(Event::new("net", Level::Info, "wrong_target"));
        let names: Vec<String> = collect.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["yes"]);
    }

    #[test]
    fn recorder_captures_despite_off_filter() {
        let obs = Obs::disabled(Source::Runtime);
        let recorder = obs.attach_flight_recorder(8, Level::Debug);
        assert!(obs.enabled("arbiter", Level::Debug));
        obs.emit(Event::new("arbiter", Level::Debug, "captured"));
        obs.emit(Event::new("arbiter", Level::Trace, "too_fine"));
        let names: Vec<String> = recorder.snapshot().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["captured"]);
    }

    #[test]
    fn span_records_histogram_and_events() {
        let obs = Obs::with_filter(Source::Runtime, TraceFilter::with_default(Level::Debug));
        let collect = CollectSink::new();
        obs.add_sink(collect.clone());
        {
            let _g = span!(obs, "arbiter", "request_collection").on_node(2);
        }
        let events = collect.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "span_open");
        assert_eq!(events[1].name, "span_close");
        assert_eq!(events[1].node, Some(2));
        let snap = obs.registry().snapshot();
        assert_eq!(snap.histograms["span_ns/request_collection"].count, 1);
    }

    #[test]
    fn span_histogram_recorded_even_when_disabled() {
        let obs = Obs::disabled(Source::Runtime);
        drop(obs.span("arbiter", "cs_grant"));
        let snap = obs.registry().snapshot();
        assert_eq!(snap.histograms["span_ns/cs_grant"].count, 1);
    }

    #[test]
    fn sim_timestamps_pass_through() {
        let obs = Obs::with_filter(Source::Sim, TraceFilter::with_default(Level::Trace));
        let collect = CollectSink::new();
        obs.add_sink(collect.clone());
        obs.emit_at(12.5, Event::new("sim", Level::Info, "tick"));
        let e = &collect.events()[0];
        assert_eq!(e.ts, 12.5);
        assert_eq!(e.src, Source::Sim);
    }

    #[test]
    fn record_latency_lands_in_span_histogram() {
        let obs = Obs::disabled(Source::Sim);
        obs.record_latency("cs_grant", 5_000);
        let snap = obs.registry().snapshot();
        assert_eq!(snap.histograms["span_ns/cs_grant"].count, 1);
    }
}
