//! Verbosity levels and the `TOKQ_TRACE` environment filter.
//!
//! Filter syntax mirrors `env_logger`/`tracing`'s `EnvFilter` subset:
//! a comma-separated list of clauses, each either a bare level (sets the
//! default) or `target=level`. Later clauses win on ties. Examples:
//!
//! ```text
//! TOKQ_TRACE=info                     # everything at info
//! TOKQ_TRACE=arbiter=debug            # arbiter target at debug, rest off
//! TOKQ_TRACE=info,net=trace,tcp=off   # info default, net chatty, tcp mute
//! ```
//!
//! Unknown level names clamp to `trace` (fail loud, not silent); unknown
//! targets are fine — matching is by exact target string.

use std::sync::atomic::{AtomicU8, Ordering};

/// Event verbosity, ordered from mute to chatty.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Protocol-visible milestones: grants, elections, recoveries.
    Info = 1,
    /// Per-message and per-phase detail.
    Debug = 2,
    /// Everything, including per-byte wire accounting.
    Trace = 3,
}

impl Level {
    /// The stable lowercase name used in JSONL output and `TOKQ_TRACE`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a level name (case-insensitive). Unknown names clamp to
    /// `Trace` so a typo surfaces as extra output rather than silence.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "info" | "1" => Level::Info,
            "debug" | "2" => Level::Debug,
            _ => Level::Trace,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Info,
            2 => Level::Debug,
            _ => Level::Trace,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A compiled `TOKQ_TRACE` filter.
///
/// `enabled` is the hot-path check: a single relaxed atomic load rejects
/// events above the filter's maximum level before any string comparison.
#[derive(Debug)]
pub struct TraceFilter {
    default: Level,
    per_target: Vec<(String, Level)>,
    /// Highest level enabled for any target — the fast reject gate.
    max: AtomicU8,
}

impl TraceFilter {
    /// A filter that rejects everything.
    pub fn off() -> Self {
        TraceFilter::with_default(Level::Off)
    }

    /// A filter enabling every target at `level`.
    pub fn with_default(level: Level) -> Self {
        TraceFilter {
            default: level,
            per_target: Vec::new(),
            max: AtomicU8::new(level as u8),
        }
    }

    /// Compiles a `TOKQ_TRACE`-syntax spec (see module docs).
    pub fn parse(spec: &str) -> Self {
        let mut default = Level::Off;
        let mut per_target = Vec::new();
        for clause in spec.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            match clause.split_once('=') {
                Some((target, level)) => {
                    per_target.push((target.trim().to_owned(), Level::parse(level)));
                }
                None => default = Level::parse(clause),
            }
        }
        let max = per_target
            .iter()
            .map(|(_, l)| *l)
            .chain([default])
            .max()
            .unwrap_or(Level::Off);
        TraceFilter {
            default,
            per_target,
            max: AtomicU8::new(max as u8),
        }
    }

    /// Compiles the `TOKQ_TRACE` environment variable; unset means off.
    pub fn from_env() -> Self {
        match std::env::var("TOKQ_TRACE") {
            Ok(spec) => TraceFilter::parse(&spec),
            Err(_) => TraceFilter::off(),
        }
    }

    /// Whether an event at `level` for `target` should be emitted.
    #[inline]
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        if level as u8 > self.max.load(Ordering::Relaxed) {
            return false;
        }
        level <= self.level_for(target)
    }

    /// The effective level for a target: the last matching clause, or the
    /// default when no clause names it.
    pub fn level_for(&self, target: &str) -> Level {
        self.per_target
            .iter()
            .rev()
            .find(|(t, _)| t == target)
            .map(|(_, l)| *l)
            .unwrap_or(self.default)
    }

    /// The highest level any target can emit at.
    pub fn max_level(&self) -> Level {
        Level::from_u8(self.max.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_ordering_and_names() {
        assert!(Level::Off < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert!(Level::Debug < Level::Trace);
        assert_eq!(Level::parse("DEBUG"), Level::Debug);
        assert_eq!(Level::parse("bogus"), Level::Trace);
        assert_eq!(Level::Debug.as_str(), "debug");
    }

    #[test]
    fn filter_default_only() {
        let f = TraceFilter::parse("info");
        assert!(f.enabled("arbiter", Level::Info));
        assert!(!f.enabled("arbiter", Level::Debug));
    }

    #[test]
    fn filter_per_target_overrides_default() {
        let f = TraceFilter::parse("info,arbiter=trace,tcp=off");
        assert!(f.enabled("arbiter", Level::Trace));
        assert!(f.enabled("node", Level::Info));
        assert!(!f.enabled("node", Level::Debug));
        assert!(!f.enabled("tcp", Level::Info));
        assert_eq!(f.max_level(), Level::Trace);
    }

    #[test]
    fn later_clause_wins() {
        let f = TraceFilter::parse("arbiter=debug,arbiter=off");
        assert!(!f.enabled("arbiter", Level::Info));
    }

    #[test]
    fn off_filter_rejects_everything() {
        let f = TraceFilter::off();
        assert!(!f.enabled("anything", Level::Info));
        assert_eq!(f.max_level(), Level::Off);
    }

    #[test]
    fn whitespace_and_empty_clauses_tolerated() {
        let f = TraceFilter::parse(" info , arbiter = debug ,, ");
        assert!(f.enabled("arbiter", Level::Debug));
        assert!(f.enabled("x", Level::Info));
    }
}
