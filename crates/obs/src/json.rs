//! Compact JSON text rendering and parsing for [`serde::value::Value`].
//!
//! The serde stand-in models data as a `Value` tree; this module is the
//! text layer: [`render`] produces one compact JSON document (the unit of
//! a JSONL line) and [`parse`] reads one back. Map key order is
//! preserved, so `parse(render(v)) == v` for any tree whose floats are
//! finite (non-finite floats render as `null`, as serde_json does).

use std::fmt::Write as _;

use serde::value::Value;

/// Renders a value as compact JSON (no whitespace).
pub fn render(value: &Value) -> String {
    let mut out = String::new();
    render_into(value, &mut out);
    out
}

fn render_into(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if v.is_finite() {
                // `{v:?}` keeps a trailing `.0` on integral floats so the
                // value re-parses as F64, not U64.
                let _ = write!(out, "{v:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_into(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(k, out);
                out.push(':');
                render_into(v, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what was expected and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// non-whitespace input is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn seq(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn map(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The unescaped run is valid UTF-8 because the input is &str
            // and we only stopped on ASCII boundaries.
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8"));
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: JSONL from this crate never
                            // emits them (we escape only control chars),
                            // but accept them for external input.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_keyword("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("bad surrogate"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("utf8");
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let text = render(v);
        let back = parse(&text).expect("parse");
        assert_eq!(&back, v, "through {text}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::U64(u64::MAX));
        roundtrip(&Value::I64(-42));
        roundtrip(&Value::F64(1.5));
        roundtrip(&Value::F64(2.0)); // integral float must stay F64
        roundtrip(&Value::Str("hé\"llo\n\tworld\\".into()));
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&Value::Seq(vec![
            Value::U64(1),
            Value::Str("x".into()),
            Value::Seq(vec![]),
        ]));
        roundtrip(&Value::Map(vec![
            ("b".into(), Value::U64(2)),
            ("a".into(), Value::Null),
            (
                "nested".into(),
                Value::Map(vec![("k".into(), Value::Bool(false))]),
            ),
        ]));
    }

    #[test]
    fn nonfinite_floats_render_null() {
        assert_eq!(render(&Value::F64(f64::NAN)), "null");
        assert_eq!(render(&Value::F64(f64::INFINITY)), "null");
    }

    #[test]
    fn control_chars_escaped() {
        let s = render(&Value::Str("\u{1}".into()));
        assert_eq!(s, "\"\\u0001\"");
        assert_eq!(parse(&s).unwrap(), Value::Str("\u{1}".into()));
    }

    #[test]
    fn parse_rejects_trailing_garbage() {
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v,
            Value::Map(vec![(
                "a".into(),
                Value::Seq(vec![Value::U64(1), Value::U64(2)])
            )])
        );
    }

    #[test]
    fn negative_and_exponent_numbers() {
        assert_eq!(parse("-7").unwrap(), Value::I64(-7));
        assert_eq!(parse("1e3").unwrap(), Value::F64(1000.0));
        assert_eq!(parse("-2.5").unwrap(), Value::F64(-2.5));
    }
}
