//! The structured event record and its JSONL schema.
//!
//! One [`Event`] is one line of JSONL. The schema is identical for the
//! threaded runtime and the discrete-event simulator so the two can be
//! diffed directly (`src` tells them apart, `ts` is seconds in either
//! clock domain):
//!
//! ```json
//! {"ts":0.0123,"src":"sim","node":3,"target":"arbiter","level":"debug",
//!  "event":"qlist_sealed","fields":{"len":4}}
//! ```

use serde::ser::Serialize;
use serde::value::Value;

use crate::json;
use crate::level::Level;

/// Which clock domain an event was recorded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Discrete-event simulator (`ts` is simulated seconds).
    Sim,
    /// Threaded runtime (`ts` is seconds since observability start).
    Runtime,
}

impl Source {
    /// The stable short name used in the JSONL `src` field.
    pub fn as_str(self) -> &'static str {
        match self {
            Source::Sim => "sim",
            Source::Runtime => "rt",
        }
    }

    /// Parses a JSONL `src` field.
    pub fn parse(s: &str) -> Option<Source> {
        match s {
            "sim" => Some(Source::Sim),
            "rt" => Some(Source::Runtime),
            _ => None,
        }
    }
}

/// One structured observability event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Seconds in the source's clock domain.
    pub ts: f64,
    /// Clock domain.
    pub src: Source,
    /// Node the event concerns, when there is one.
    pub node: Option<u64>,
    /// Shard (independent protocol instance) the event concerns, when the
    /// emitter runs a sharded lock service.
    pub shard: Option<u64>,
    /// Subsystem target used for `TOKQ_TRACE` filtering.
    pub target: String,
    /// Verbosity level the event was emitted at.
    pub level: Level,
    /// Stable event name (e.g. `qlist_sealed`, `span_close`).
    pub name: String,
    /// Free-form key/value payload.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event with no fields; timestamps and routing metadata are
    /// normally filled in by [`crate::Obs`].
    pub fn new(target: &str, level: Level, name: &str) -> Self {
        Event {
            ts: 0.0,
            src: Source::Runtime,
            node: None,
            shard: None,
            target: target.to_owned(),
            level,
            name: name.to_owned(),
            fields: Vec::new(),
        }
    }

    /// Attaches one key/value field (builder-style).
    pub fn field(mut self, key: &str, value: &dyn Serialize) -> Self {
        self.fields.push((key.to_owned(), value.serialize()));
        self
    }

    /// Attaches the node id (builder-style).
    pub fn node(mut self, node: u64) -> Self {
        self.node = Some(node);
        self
    }

    /// Attaches the shard id (builder-style).
    pub fn shard(mut self, shard: u64) -> Self {
        self.shard = Some(shard);
        self
    }

    /// The value of the named payload field, if present.
    ///
    /// Consumers reconstructing structured records from an event stream
    /// (e.g. a model-checker [`Schedule`] out of a flight-recorder dump)
    /// use this to pull typed fields back out with `Deserialize`.
    ///
    /// [`Schedule`]: https://docs.rs/tokq-simnet
    pub fn field_value(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The event as a JSON value in the JSONL schema.
    pub fn to_value(&self) -> Value {
        let mut entries = vec![
            ("ts".to_owned(), Value::F64(self.ts)),
            ("src".to_owned(), Value::Str(self.src.as_str().to_owned())),
        ];
        if let Some(node) = self.node {
            entries.push(("node".to_owned(), Value::U64(node)));
        }
        if let Some(shard) = self.shard {
            entries.push(("shard".to_owned(), Value::U64(shard)));
        }
        entries.push(("target".to_owned(), Value::Str(self.target.clone())));
        entries.push((
            "level".to_owned(),
            Value::Str(self.level.as_str().to_owned()),
        ));
        entries.push(("event".to_owned(), Value::Str(self.name.clone())));
        if !self.fields.is_empty() {
            entries.push(("fields".to_owned(), Value::Map(self.fields.clone())));
        }
        Value::Map(entries)
    }

    /// One compact JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        json::render(&self.to_value())
    }

    /// Parses an event back from its JSONL schema value.
    ///
    /// Inverse of [`Event::to_value`] for all events this crate produces
    /// (a non-finite `ts` does not survive, as JSON has no encoding for
    /// it).
    pub fn from_value(v: &Value) -> Result<Event, String> {
        let map = v.as_map().ok_or("event must be a JSON object")?;
        let get = |key: &str| map.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let ts = match get("ts") {
            Some(Value::F64(v)) => *v,
            Some(Value::U64(v)) => *v as f64,
            _ => return Err("missing numeric ts".into()),
        };
        let src = get("src")
            .and_then(Value::as_str)
            .and_then(Source::parse)
            .ok_or("missing or unknown src")?;
        let node = match get("node") {
            None | Some(Value::Null) => None,
            Some(Value::U64(v)) => Some(*v),
            Some(_) => return Err("node must be an unsigned integer".into()),
        };
        let shard = match get("shard") {
            None | Some(Value::Null) => None,
            Some(Value::U64(v)) => Some(*v),
            Some(_) => return Err("shard must be an unsigned integer".into()),
        };
        let target = get("target")
            .and_then(Value::as_str)
            .ok_or("missing target")?
            .to_owned();
        let level = get("level")
            .and_then(Value::as_str)
            .map(Level::parse)
            .ok_or("missing level")?;
        let name = get("event")
            .and_then(Value::as_str)
            .ok_or("missing event name")?
            .to_owned();
        let fields = match get("fields") {
            None => Vec::new(),
            Some(Value::Map(entries)) => entries.clone(),
            Some(_) => return Err("fields must be an object".into()),
        };
        Ok(Event {
            ts,
            src,
            node,
            shard,
            target,
            level,
            name,
            fields,
        })
    }

    /// Parses one JSONL line.
    pub fn from_jsonl(line: &str) -> Result<Event, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        Event::from_value(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip_full() {
        let e = Event::new("arbiter", Level::Debug, "qlist_sealed")
            .node(3)
            .shard(1)
            .field("len", &4u64)
            .field("note", &"hello");
        let line = e.to_jsonl();
        let back = Event::from_jsonl(&line).unwrap();
        assert_eq!(back, e);
        assert!(line.contains("\"event\":\"qlist_sealed\""));
        assert!(line.contains("\"src\":\"rt\""));
        assert!(line.contains("\"shard\":1"));
    }

    #[test]
    fn jsonl_roundtrip_minimal() {
        let mut e = Event::new("net", Level::Trace, "bytes_out");
        e.src = Source::Sim;
        e.ts = 1.25;
        let back = Event::from_jsonl(&e.to_jsonl()).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.node, None);
        assert_eq!(back.shard, None);
        assert!(back.fields.is_empty());
    }

    #[test]
    fn from_value_rejects_malformed() {
        assert!(Event::from_jsonl("[]").is_err());
        assert!(Event::from_jsonl("{\"ts\":0.0}").is_err());
        assert!(Event::from_jsonl("{\"ts\":0.0,\"src\":\"martian\"}").is_err());
    }

    #[test]
    fn source_names_roundtrip() {
        for src in [Source::Sim, Source::Runtime] {
            assert_eq!(Source::parse(src.as_str()), Some(src));
        }
        assert_eq!(Source::parse("other"), None);
    }
}
