//! Macrobenchmark: discrete-event simulator throughput (critical sections
//! simulated per wall-clock second) across algorithms and loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokq_bench::{Algo, RunSettings};
use tokq_protocol::arbiter::ArbiterConfig;
use tokq_workload::Workload;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let s = RunSettings {
        cs_per_point: 2_000,
        seed: 1,
        n: 10,
    };
    for (name, algo) in [
        ("arbiter", Algo::Arbiter(ArbiterConfig::basic())),
        ("ricart_agrawala", Algo::RicartAgrawala),
        ("suzuki_kasami", Algo::SuzukiKasami),
        ("raymond", Algo::Raymond),
    ] {
        g.bench_with_input(
            BenchmarkId::new("saturated_2k_cs", name),
            &algo,
            |b, algo| {
                b.iter(|| {
                    let mut sim = s.sim(0);
                    sim.warmup_cs = 100;
                    std::hint::black_box(algo.run(sim, Workload::saturating(), s.cs_per_point))
                });
            },
        );
    }
    g.bench_function("arbiter_poisson_2k_cs", |b| {
        b.iter(|| {
            let mut sim = s.sim(1);
            sim.warmup_cs = 100;
            std::hint::black_box(Algo::Arbiter(ArbiterConfig::basic()).run(
                sim,
                Workload::poisson(1.0),
                s.cs_per_point,
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
