//! Macrobenchmark: end-to-end lock/unlock latency on the threaded runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokq_core::Cluster;
use tokq_protocol::arbiter::ArbiterConfig;
use tokq_protocol::types::TimeDelta;

fn quick_config() -> ArbiterConfig {
    // Short phases so benchmark iterations are not dominated by the
    // default 100 ms collection window.
    ArbiterConfig::basic()
        .with_t_collect(TimeDelta::from_micros(200))
        .with_t_forward(TimeDelta::from_micros(200))
}

fn bench_lock(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_lock");
    g.sample_size(20);
    for n in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("uncontended_lock_unlock", n),
            &n,
            |b, &n| {
                let cluster = Cluster::builder(n).config(quick_config()).build();
                let handle = cluster.handle(0).expect("in range");
                b.iter(|| {
                    let g = handle.lock().expect("granted");
                    std::hint::black_box(&g);
                });
                cluster.shutdown();
            },
        );
    }
    g.bench_function("contended_pair", |b| {
        let cluster = Cluster::builder(2).config(quick_config()).build();
        let a = cluster.handle(0).expect("in range");
        let bh = cluster.handle(1).expect("in range");
        b.iter(|| {
            let g1 = a.lock().expect("granted");
            drop(g1);
            let g2 = bh.lock().expect("granted");
            drop(g2);
        });
        cluster.shutdown();
    });
    g.finish();
}

criterion_group!(benches, bench_lock);
criterion_main!(benches);
