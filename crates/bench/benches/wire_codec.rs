//! Microbenchmark: wire codec encode/decode throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokq_core::service::ShardId;
use tokq_core::wire::{decode, encode};
use tokq_protocol::arbiter::{ArbiterMsg, Token};
use tokq_protocol::qlist::Entry;
use tokq_protocol::types::{NodeId, Priority, SeqNum};

fn token_with_queue(len: u32) -> Token {
    let mut t = Token::initial(len as usize + 1);
    for i in 0..len {
        t.q.push_back(Entry::with_priority(NodeId(i), SeqNum(3), Priority(1)));
    }
    t.round = 77;
    t
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    let small = ArbiterMsg::Request {
        requester: NodeId(3),
        seq: SeqNum(9),
        priority: Priority(0),
        hops: 1,
    };
    g.bench_function("encode_request", |b| {
        b.iter(|| std::hint::black_box(encode(ShardId(0), &small)))
    });
    let frame = encode(ShardId(0), &small);
    g.bench_function("decode_request", |b| {
        b.iter(|| std::hint::black_box(decode(&frame).unwrap()))
    });
    for len in [10u32, 100] {
        let msg = ArbiterMsg::Privilege(token_with_queue(len));
        g.bench_with_input(BenchmarkId::new("encode_privilege", len), &msg, |b, msg| {
            b.iter(|| std::hint::black_box(encode(ShardId(0), msg)))
        });
        let frame = encode(ShardId(0), &msg);
        g.bench_with_input(
            BenchmarkId::new("decode_privilege", len),
            &frame,
            |b, frame| b.iter(|| std::hint::black_box(decode(frame).unwrap())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
