//! Macrobenchmark: model-checker exploration throughput and the
//! state-reduction ratio.
//!
//! Times the naive enumerator against the stateful search (visited-state
//! dedup + sleep sets) on the 3-node arbiter at a fixed depth bound, and
//! asserts the reduction claim after the timed groups: the naive tree has
//! at least 10× the nodes the reduced search visits for the same coverage.

use criterion::{criterion_group, BenchmarkId, Criterion};
use tokq_protocol::arbiter::ArbiterConfig;
use tokq_simnet::{ExploreConfig, Explorer};

/// Both configurations explore the arbiter at this depth; large enough to
/// make reduction matter, small enough that the naive run stays timeable.
const DEPTH: usize = 10;

fn naive_cfg() -> ExploreConfig {
    // The naive tree at this depth is far beyond the state budget; the cap
    // truncates it, which only *understates* the measured reduction ratio.
    ExploreConfig {
        max_depth: DEPTH,
        max_states: 1_000_000,
        ..ExploreConfig::naive()
    }
}

fn reduced_cfg() -> ExploreConfig {
    ExploreConfig {
        max_depth: DEPTH,
        max_states: 1_000_000,
        check_deadlock: false,
        shrink: false,
        ..ExploreConfig::default()
    }
}

fn bench_explorer(c: &mut Criterion) {
    let mut g = c.benchmark_group("explorer");
    g.sample_size(10);
    for (name, cfg) in [("naive", naive_cfg()), ("reduced", reduced_cfg())] {
        g.bench_with_input(BenchmarkId::new("arbiter_3n_2req", name), &cfg, |b, cfg| {
            b.iter(|| {
                std::hint::black_box(
                    Explorer::new(*cfg)
                        .check(ArbiterConfig::basic(), 3, &[1, 2])
                        .expect("arbiter is safe"),
                )
            })
        });
    }
    g.finish();
}

fn assert_reduction_ratio() {
    let naive = Explorer::new(naive_cfg())
        .check(ArbiterConfig::basic(), 3, &[1, 2])
        .expect("arbiter is safe");
    let reduced = Explorer::new(reduced_cfg())
        .check(ArbiterConfig::basic(), 3, &[1, 2])
        .expect("arbiter is safe");
    let ratio = naive.states_explored as f64 / reduced.states_explored as f64;
    println!(
        "reduction at depth {DEPTH}: naive {} states vs reduced {} states = {ratio:.1}x",
        naive.states_explored, reduced.states_explored
    );
    assert!(
        ratio >= 10.0,
        "state reduction regressed below 10x: naive={} reduced={}",
        naive.states_explored,
        reduced.states_explored
    );
}

criterion_group!(benches, bench_explorer);

// Hand-rolled `criterion_main!` so the ratio assertion runs after the
// timed groups in both bench and `--test` smoke modes.
fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    assert_reduction_ratio();
    c.final_summary();
}
