//! Microbenchmark: Q-list operations (the token's hot data structure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokq_protocol::qlist::{Entry, QList};
use tokq_protocol::types::{NodeId, Priority, SeqNum};

fn filled(n: u32) -> QList {
    (0..n)
        .map(|i| Entry::with_priority(NodeId(i), SeqNum(1), Priority(i % 7)))
        .collect()
}

fn bench_qlist(c: &mut Criterion) {
    let mut g = c.benchmark_group("qlist");
    for n in [10u32, 100, 1000] {
        g.bench_with_input(BenchmarkId::new("push_back_dedup", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = QList::new();
                for i in 0..n {
                    q.push_back(Entry::new(NodeId(i), SeqNum(1)));
                }
                std::hint::black_box(q)
            });
        });
        g.bench_with_input(BenchmarkId::new("pop_all", n), &n, |b, &n| {
            b.iter_batched(
                || filled(n),
                |mut q| {
                    while q.pop_head().is_some() {}
                    std::hint::black_box(q)
                },
                criterion::BatchSize::SmallInput,
            );
        });
        g.bench_with_input(BenchmarkId::new("contains_miss", n), &n, |b, &n| {
            let q = filled(n);
            b.iter(|| std::hint::black_box(q.contains(NodeId(n + 1))));
        });
        g.bench_with_input(BenchmarkId::new("sort_by_priority", n), &n, |b, &n| {
            b.iter_batched(
                || filled(n),
                |mut q| {
                    q.sort_by_priority();
                    std::hint::black_box(q)
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(benches, bench_qlist);
criterion_main!(benches);
