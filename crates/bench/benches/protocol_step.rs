//! Microbenchmark: protocol state-machine step throughput per algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tokq_protocol::api::{Protocol, ProtocolFactory};
use tokq_protocol::arbiter::{ArbiterConfig, ArbiterMsg};
use tokq_protocol::event::Input;
use tokq_protocol::ricart_agrawala::{RaConfig, RaMsg};
use tokq_protocol::suzuki_kasami::{SkConfig, SkMsg};
use tokq_protocol::types::{NodeId, Priority, SeqNum};

fn bench_arbiter_request(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_step");
    for n in [10usize, 100] {
        g.bench_with_input(BenchmarkId::new("arbiter_on_request", n), &n, |b, &n| {
            let mut node = ArbiterConfig::basic().build(NodeId(0), n);
            node.step(Input::Start);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                let msg = ArbiterMsg::Request {
                    requester: NodeId(1),
                    seq: SeqNum(seq),
                    priority: Priority(0),
                    hops: 0,
                };
                std::hint::black_box(node.step(Input::Deliver {
                    from: NodeId(1),
                    msg,
                }))
            });
        });
    }
    g.bench_function("ricart_agrawala_on_request", |b| {
        let mut node = RaConfig.build(NodeId(0), 10);
        node.step(Input::Start);
        let mut ts = 0u64;
        b.iter(|| {
            ts += 1;
            std::hint::black_box(node.step(Input::Deliver {
                from: NodeId(1),
                msg: RaMsg::Request { ts },
            }))
        });
    });
    g.bench_function("suzuki_kasami_on_request", |b| {
        let mut node = SkConfig::default().build(NodeId(1), 10);
        node.step(Input::Start);
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            std::hint::black_box(node.step(Input::Deliver {
                from: NodeId(2),
                msg: SkMsg::Request { seq },
            }))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_arbiter_request);
criterion_main!(benches);
