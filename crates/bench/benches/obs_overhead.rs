//! Microbenchmark: tokq-obs instrumentation overhead.
//!
//! The observability layer promises that a *disabled* trace path costs
//! nothing measurable on the protocol hot path: `Obs::enabled` is two
//! relaxed atomic loads, and every emission site is guarded by it. This
//! bench times the guarded-but-disabled pattern next to the enabled path
//! and asserts the disabled check stays within noise (a few nanoseconds,
//! orders of magnitude below a single protocol `step`).

use std::time::Instant;

use criterion::{black_box, criterion_group, Criterion};
use tokq_obs::{Event, Level, Obs, Source};

const T: &str = "arbiter";

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");

    let off = Obs::disabled(Source::Runtime);
    g.bench_function("enabled_check_disabled", |b| {
        b.iter(|| black_box(off.enabled(black_box(T), Level::Debug)))
    });
    g.bench_function("guarded_emit_disabled", |b| {
        b.iter(|| {
            if off.enabled(black_box(T), Level::Debug) {
                off.emit(Event::new(T, Level::Debug, "qlist_sealed").field("len", &3u32));
            }
        })
    });
    g.bench_function("counter_add", |b| {
        let ctr = off.registry().counter("bench_bytes");
        b.iter(|| ctr.add(black_box(64)))
    });
    g.bench_function("histogram_record", |b| {
        let h = off.registry().histogram_with("span_ns", "bench");
        b.iter(|| h.record(black_box(12_345)))
    });

    let on = Obs::disabled(Source::Runtime);
    on.attach_flight_recorder(4096, Level::Debug);
    g.bench_function("emit_to_flight_recorder", |b| {
        b.iter(|| {
            if on.enabled(black_box(T), Level::Debug) {
                on.emit(Event::new(T, Level::Debug, "qlist_sealed").field("len", &3u32));
            }
        })
    });
    g.finish();
}

/// Nanoseconds per iteration of `f`, minimum over `samples` runs.
fn ns_per_iter(iters: u32, samples: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() * 1e9 / f64::from(iters));
    }
    best
}

/// Hard check behind the "zero-cost when off" claim: the guarded emission
/// pattern against a disabled `Obs` must cost only nanoseconds. The bound
/// is deliberately loose (50 ns ≈ a cache miss) so it never flakes, while
/// still catching a regression that put an allocation, a lock, or event
/// construction on the disabled path.
fn assert_disabled_path_within_noise() {
    let off = Obs::disabled(Source::Runtime);
    let guarded = ns_per_iter(1_000_000, 10, || {
        if off.enabled(black_box(T), Level::Debug) {
            off.emit(Event::new(T, Level::Debug, "qlist_sealed").field("len", &3u32));
        }
    });
    println!("disabled guarded-emit path: {guarded:.2} ns/iter (bound 50 ns)");
    assert!(
        guarded < 50.0,
        "disabled tracing path costs {guarded:.1} ns/iter — no longer within noise"
    );
}

criterion_group!(benches, bench_obs);

// Hand-rolled `criterion_main!` so the noise assertion runs after the
// timed groups in both bench and `--test` smoke modes.
fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    assert_disabled_path_within_noise();
    c.final_summary();
}
