//! One function per paper artifact (Figures 2–6, the analytic table, and
//! the extension experiments).

use tokq_analysis::formulas::{self, ModelParams};
use tokq_analysis::queueing;
use tokq_analysis::report::Table;
use tokq_protocol::arbiter::{ArbiterConfig, MonitorConfig, MonitorPeriod, RecoveryConfig};
use tokq_protocol::types::{NodeId, TimeDelta};
use tokq_simnet::fault::FaultPlan;
use tokq_simnet::sim::Simulation;
use tokq_simnet::time::SimTime;
use tokq_workload::{fig2_script, LoadSweep, Workload};

use crate::runner::{Algo, RunSettings};

/// Figure 2: the §2.2 illustrative example, rendered as an event timeline.
///
/// Five nodes; node 1 (paper numbering) starts as arbiter; nodes 2, 5
/// request during the collection phase, node 4 during forwarding, node 3
/// at the next arbiter — reproducing the narrative of the example.
pub fn fig2() -> String {
    let mut cfg = tokq_simnet::sim::SimConfig::paper_defaults(5);
    cfg.warmup_cs = 0;
    cfg.trace = true;
    cfg.max_sim_time = Some(SimTime::from_secs_f64(5.0));
    let sim = Simulation::build(cfg, ArbiterConfig::basic(), fig2_script());
    let (report, trace) = sim.run_to_quiescence_with_trace();
    let mut out = String::new();
    out.push_str("## fig2-example — paper §2.2 walkthrough (5 nodes, unit phases)\n");
    out.push_str(&trace.render());
    out.push_str(&format!(
        "\ncompleted critical sections: {} (expected 4: nodes 2, 5, 4, 3)\n",
        report.cs_total
    ));
    out
}

/// Shared sweep for Figures 3, 4 and 5: average messages per CS, average
/// delay per CS, and forwarded fraction versus arrival rate, for
/// `T_req ∈ {0.1, 0.2}` (the paper's continuous and dotted curves).
pub fn fig345(s: RunSettings) -> (Table, Table, Table) {
    let sweep = LoadSweep::paper();
    let mut fig3 = Table::new(
        "fig3-messages — avg messages per CS vs arrival rate (N=10)",
        &[
            "lambda",
            "msgs_treq0.1",
            "ci95_0.1",
            "msgs_treq0.2",
            "ci95_0.2",
        ],
    );
    let mut fig4 = Table::new(
        "fig4-delay — avg delay per CS vs arrival rate (N=10)",
        &[
            "lambda",
            "delay_treq0.1",
            "ci95_0.1",
            "delay_treq0.2",
            "ci95_0.2",
        ],
    );
    let mut fig5 = Table::new(
        "fig5-forwarded — fraction of forwarded requests vs arrival rate (N=10)",
        &["lambda", "frac_treq0.1", "frac_treq0.2"],
    );
    for (idx, point) in sweep.points().iter().enumerate() {
        let mut row3 = vec![point.lambda.into()];
        let mut row4 = vec![point.lambda.into()];
        let mut row5 = vec![point.lambda.into()];
        for (tc_idx, t_collect) in [0.1f64, 0.2f64].iter().enumerate() {
            let cfg = ArbiterConfig::basic().with_t_collect(TimeDelta::from_secs_f64(*t_collect));
            let sim = s.sim((idx * 2 + tc_idx) as u64);
            let r = Algo::Arbiter(cfg).run(sim, Workload::poisson(point.lambda), s.cs_per_point);
            row3.push(r.messages_per_cs().into());
            row3.push(r.per_cs_messages.ci95_half_width().into());
            row4.push(r.mean_delay().into());
            row4.push(r.delay.ci95_half_width().into());
            row5.push(r.forwarded_fraction().into());
        }
        fig3.row(row3);
        fig4.row(row4);
        fig5.row(row5);
    }
    (fig3, fig4, fig5)
}

/// Figure 6: messages per CS vs arrival rate for the arbiter algorithm,
/// Ricart–Agrawala, and Singhal's dynamic algorithm (N=10).
pub fn fig6(s: RunSettings) -> Table {
    let sweep = LoadSweep::paper();
    let mut t = Table::new(
        "fig6-comparison — avg messages per CS vs arrival rate (N=10)",
        &["lambda", "arbiter", "ricart_agrawala", "singhal_dynamic"],
    );
    for (idx, point) in sweep.points().iter().enumerate() {
        let mut row = vec![point.lambda.into()];
        for (a_idx, algo) in [
            Algo::Arbiter(ArbiterConfig::basic()),
            Algo::RicartAgrawala,
            Algo::Singhal,
        ]
        .iter()
        .enumerate()
        {
            let sim = s.sim((idx * 3 + a_idx) as u64 ^ 0x600);
            let r = algo.run(sim, Workload::poisson(point.lambda), s.cs_per_point);
            row.push(r.messages_per_cs().into());
        }
        t.row(row);
    }
    t
}

/// The analytic validation table: Eqs. 1, 3, 4, 6 versus simulation at the
/// load extremes, across system sizes.
pub fn table_analytic(s: RunSettings) -> Table {
    let p = ModelParams::paper();
    let mut t = Table::new(
        "table-analytic — paper Eqs. 1/3/4/6 vs simulation",
        &[
            "N",
            "light_msgs_eq1",
            "light_msgs_sim",
            "light_delay_eq3",
            "light_delay_sim",
            "heavy_msgs_eq4",
            "heavy_msgs_sim",
            "heavy_delay_eq6",
            "heavy_delay_sim",
        ],
    );
    for (idx, n) in [5usize, 10, 20, 50].iter().enumerate() {
        let mut st = s;
        st.n = *n;
        // Scale the point budget down for the big, slow configurations.
        let cs = (s.cs_per_point / (*n as u64 / 5).max(1)).max(2_000);
        // Light load: keep the whole system's utilization tiny.
        let light_rate = 0.02 / *n as f64 * 10.0;
        let light = Algo::Arbiter(ArbiterConfig::basic()).run(
            st.sim(idx as u64 ^ 0xA11),
            Workload::poisson(light_rate),
            cs.min(10_000),
        );
        let heavy = Algo::Arbiter(ArbiterConfig::basic()).run(
            st.sim(idx as u64 ^ 0xA22),
            Workload::saturating(),
            cs,
        );
        t.row(vec![
            (*n).into(),
            formulas::arbiter_messages_light(*n).into(),
            light.messages_per_cs().into(),
            formulas::arbiter_delay_light(*n, p).into(),
            light.mean_delay().into(),
            formulas::arbiter_messages_heavy(*n).into(),
            heavy.messages_per_cs().into(),
            formulas::arbiter_delay_heavy(*n, p).into(),
            heavy.mean_delay().into(),
        ]);
    }
    t
}

/// §7 tuning study: the paper's two tunables (`T_req`, `T_fwd`) swept as a
/// grid at moderate load — the messages-vs-delay trade-off surface.
pub fn tuning(s: RunSettings) -> Table {
    let mut t = Table::new(
        "ext-tuning — T_req × T_fwd grid at λ=0.3 (N=10): msgs/CS, delay, drops",
        &[
            "t_req",
            "t_fwd",
            "msgs_per_cs",
            "mean_delay",
            "dropped",
            "forwarded",
        ],
    );
    let mut idx = 0u64;
    for t_req_ms in [50u64, 100, 200, 400] {
        for t_fwd_ms in [10u64, 100, 250] {
            let cfg = ArbiterConfig::basic()
                .with_t_collect(TimeDelta::from_millis(t_req_ms))
                .with_t_forward(TimeDelta::from_millis(t_fwd_ms));
            let r = Algo::Arbiter(cfg).run(
                s.sim(idx ^ 0x7u64),
                Workload::poisson(0.3),
                (s.cs_per_point / 4).max(2_000),
            );
            idx += 1;
            t.row(vec![
                (t_req_ms as f64 / 1000.0).into(),
                (t_fwd_ms as f64 / 1000.0).into(),
                r.messages_per_cs().into(),
                r.mean_delay().into(),
                r.note_count("request_dropped").into(),
                r.note_count("request_forwarded").into(),
            ]);
        }
    }
    t
}

/// System-size scaling at saturation: messages per CS versus N for every
/// implemented algorithm (the paper's §7 future work asks for broader
/// comparisons; the arbiter's O(1) heavy-load cost is its selling point).
pub fn scaling(s: RunSettings) -> Table {
    let mut t = Table::new(
        "ext-scaling — messages per CS at saturation vs N",
        &[
            "N",
            "arbiter",
            "raymond",
            "suzuki_kasami",
            "singhal",
            "ricart_agrawala",
            "maekawa",
        ],
    );
    for (i, n) in [4usize, 8, 16, 32].iter().enumerate() {
        let mut st = s;
        st.n = *n;
        let cs = (s.cs_per_point / (*n as u64 / 4).max(1)).max(2_000);
        let mut row = vec![(*n).into()];
        for (j, algo) in [
            Algo::Arbiter(ArbiterConfig::basic()),
            Algo::Raymond,
            Algo::SuzukiKasami,
            Algo::Singhal,
            Algo::RicartAgrawala,
            Algo::Maekawa,
        ]
        .iter()
        .enumerate()
        {
            let r = algo.run(
                st.sim((i * 8 + j) as u64 ^ 0x5CA1E),
                Workload::saturating(),
                cs,
            );
            row.push(r.messages_per_cs().into());
        }
        t.row(row);
    }
    t
}

/// Queueing-model validation: the batch-service model of
/// `tokq_analysis::queueing` against simulation across the whole Figure 3/4
/// load range (the paper's analysis covers only the extremes).
pub fn model_vs_sim(s: RunSettings) -> Table {
    let p = ModelParams::paper();
    let sweep = LoadSweep::paper();
    let mut t = Table::new(
        "ext-model — batch-service queueing model vs simulation (N=10)",
        &[
            "lambda",
            "batch_B",
            "msgs_model",
            "msgs_sim",
            "delay_model",
            "delay_sim",
        ],
    );
    for (idx, point) in sweep.points().iter().enumerate() {
        let r = Algo::Arbiter(ArbiterConfig::basic()).run(
            s.sim(idx as u64 ^ 0x40DE1),
            Workload::poisson(point.lambda),
            (s.cs_per_point / 2).max(2_000),
        );
        t.row(vec![
            point.lambda.into(),
            queueing::batch_size(point.lambda, s.n, p).into(),
            queueing::predicted_messages(point.lambda, s.n, p).into(),
            r.messages_per_cs().into(),
            queueing::predicted_delay(point.lambda, s.n, p).into(),
            r.mean_delay().into(),
        ]);
    }
    t
}

/// Baseline positioning (§2.4/§3 claims): messages per CS at saturation
/// and at light load for every implemented algorithm, N = 10.
pub fn baselines(s: RunSettings) -> Table {
    let mut t = Table::new(
        "ext-baselines — messages per CS, all algorithms (N=10)",
        &["algorithm", "light_load", "heavy_load", "model_heavy"],
    );
    let algos: Vec<(Algo, f64)> = vec![
        (
            Algo::Arbiter(ArbiterConfig::basic()),
            formulas::arbiter_messages_heavy(s.n),
        ),
        (
            Algo::RicartAgrawala,
            formulas::ricart_agrawala_messages(s.n),
        ),
        (Algo::Singhal, f64::NAN),
        (Algo::SuzukiKasami, formulas::suzuki_kasami_messages(s.n)),
        (Algo::Raymond, formulas::raymond_messages_heavy()),
        (Algo::Maekawa, f64::NAN),
        (Algo::Centralized, formulas::centralized_messages(s.n)),
    ];
    for (idx, (algo, model)) in algos.iter().enumerate() {
        let light = algo.run(
            s.sim(idx as u64 ^ 0xBA5E),
            Workload::poisson(0.02),
            (s.cs_per_point / 3).max(2_000),
        );
        let heavy = algo.run(
            s.sim(idx as u64 ^ 0xBEEF),
            Workload::saturating(),
            s.cs_per_point,
        );
        t.row(vec![
            algo.name().into(),
            light.messages_per_cs().into(),
            heavy.messages_per_cs().into(),
            (*model).into(),
        ]);
    }
    t
}

/// §4 starvation experiment: the basic algorithm versus the
/// starvation-free monitor variant under forwarding-hostile settings
/// (short forwarding phase, light load), plus a monitor-period ablation.
pub fn starvation(s: RunSettings) -> Vec<Table> {
    // Forwarding-hostile: tiny forwarding window makes drops common.
    let hostile_collect = TimeDelta::from_millis(100);
    let hostile_forward = TimeDelta::from_millis(10);
    let lambda = 0.15;

    let mut head = Table::new(
        "ext-starvation — basic vs starvation-free under forwarding-hostile settings (N=10, T_fwd=0.01)",
        &[
            "variant",
            "msgs_per_cs",
            "mean_delay",
            "max_delay",
            "dropped",
            "escalated",
            "monitor_visits",
        ],
    );
    let variants: Vec<(&str, ArbiterConfig)> = vec![
        (
            "basic",
            ArbiterConfig::basic()
                .with_t_collect(hostile_collect)
                .with_t_forward(hostile_forward),
        ),
        (
            "starvation-free",
            ArbiterConfig {
                monitor: Some(MonitorConfig::default()),
                ..ArbiterConfig::basic()
                    .with_t_collect(hostile_collect)
                    .with_t_forward(hostile_forward)
            },
        ),
    ];
    for (idx, (name, cfg)) in variants.into_iter().enumerate() {
        let r = Algo::Arbiter(cfg).run(
            s.sim(idx as u64 ^ 0x57A),
            Workload::poisson(lambda),
            (s.cs_per_point / 2).max(2_000),
        );
        head.row(vec![
            name.into(),
            r.messages_per_cs().into(),
            r.mean_delay().into(),
            r.delay.max().into(),
            r.note_count("request_dropped").into(),
            r.note_count("request_escalated").into(),
            r.note_count("monitor_visit").into(),
        ]);
    }

    let mut ablation = Table::new(
        "ext-starvation-ablation — monitor period policy (N=10, λ=0.3)",
        &[
            "policy",
            "msgs_per_cs",
            "mean_delay",
            "max_delay",
            "monitor_visits",
        ],
    );
    let policies: Vec<(&str, MonitorPeriod)> = vec![
        ("adaptive(w=16)", MonitorPeriod::Adaptive { window: 16 }),
        ("fixed(1)", MonitorPeriod::Fixed { every: 1 }),
        ("fixed(4)", MonitorPeriod::Fixed { every: 4 }),
        ("fixed(16)", MonitorPeriod::Fixed { every: 16 }),
    ];
    for (idx, (name, period)) in policies.into_iter().enumerate() {
        let cfg = ArbiterConfig {
            monitor: Some(MonitorConfig {
                period,
                ..MonitorConfig::default()
            }),
            ..ArbiterConfig::basic()
        };
        let r = Algo::Arbiter(cfg).run(
            s.sim(idx as u64 ^ 0x57B),
            Workload::poisson(0.3),
            (s.cs_per_point / 2).max(2_000),
        );
        ablation.row(vec![
            name.into(),
            r.messages_per_cs().into(),
            r.mean_delay().into(),
            r.delay.max().into(),
            r.note_count("monitor_visit").into(),
        ]);
    }
    vec![head, ablation]
}

/// §6 recovery experiment: deterministic token drops and arbiter crashes
/// under the fault-tolerant configuration; the run must stay safe and
/// complete its target.
pub fn recovery(s: RunSettings) -> Table {
    let mut t = Table::new(
        "ext-recovery — fault injection under the fault-tolerant config (N=10, λ=0.5)",
        &[
            "scenario",
            "cs_done",
            "msgs_per_cs",
            "max_delay",
            "warnings",
            "invalidations",
            "regenerated",
            "takeovers",
        ],
    );
    let cfg = ArbiterConfig {
        recovery: Some(RecoveryConfig::default()),
        ..ArbiterConfig::basic()
    };
    let target = (s.cs_per_point / 10).max(1_000);
    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("fault-free", FaultPlan::none()),
        (
            "token-drop@30s",
            FaultPlan::none().drop_token(SimTime::from_secs_f64(30.0), 1),
        ),
        (
            "token-drop-x3",
            FaultPlan::none()
                .drop_token(SimTime::from_secs_f64(30.0), 1)
                .drop_token(SimTime::from_secs_f64(90.0), 1)
                .drop_token(SimTime::from_secs_f64(150.0), 1),
        ),
        (
            "crash-node3@40s",
            FaultPlan::none()
                .crash(NodeId(3), SimTime::from_secs_f64(40.0))
                .recover(NodeId(3), SimTime::from_secs_f64(80.0)),
        ),
        (
            "crash-initial-arbiter@20s",
            FaultPlan::none()
                .crash(NodeId(0), SimTime::from_secs_f64(20.0))
                .recover(NodeId(0), SimTime::from_secs_f64(60.0)),
        ),
    ];
    for (idx, (name, plan)) in scenarios.into_iter().enumerate() {
        let mut sim = s.sim(idx as u64 ^ 0x6EC);
        sim.max_sim_time = Some(SimTime::from_secs_f64(100_000.0));
        let r = Simulation::build(sim, cfg.clone(), Workload::poisson(0.5))
            .with_faults(plan)
            .run_until_cs(target);
        t.row(vec![
            name.into(),
            r.cs_measured.into(),
            r.messages_per_cs().into(),
            r.delay.max().into(),
            r.note_count("token_warning").into(),
            r.note_count("invalidation_started").into(),
            r.note_count("token_regenerated").into(),
            r.note_count("arbiter_takeover").into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunSettings {
        RunSettings {
            cs_per_point: 300,
            seed: 11,
            n: 10,
        }
    }

    #[test]
    fn fig2_produces_four_critical_sections() {
        let out = fig2();
        assert!(out.contains("completed critical sections: 4"), "{out}");
        assert!(out.contains("NEW-ARBITER"), "{out}");
    }

    #[test]
    fn fig6_arbiter_beats_ricart_agrawala() {
        let mut s = tiny();
        s.cs_per_point = 500;
        let t = fig6(s);
        // At the heaviest load the arbiter column must be far below RA's
        // 2(N-1)=18.
        let last = t.rows.last().expect("has rows");
        let arb = match last[1] {
            tokq_analysis::report::Cell::Num(v) => v,
            _ => panic!("expected number"),
        };
        let ra = match last[2] {
            tokq_analysis::report::Cell::Num(v) => v,
            _ => panic!("expected number"),
        };
        assert!(arb < 4.0, "arbiter got {arb}");
        assert!(ra > 15.0, "RA got {ra}");
    }

    #[test]
    fn recovery_scenarios_all_complete() {
        let s = RunSettings {
            cs_per_point: 3_000,
            seed: 5,
            n: 10,
        };
        let t = recovery(s);
        for row in &t.rows {
            let done = match row[1] {
                tokq_analysis::report::Cell::Int(v) => v,
                _ => panic!("expected int"),
            };
            assert!(done >= 300, "scenario {:?} completed only {done}", row[0]);
        }
    }
}
