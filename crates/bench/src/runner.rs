//! Shared experiment plumbing: algorithm selection and point runners.

use tokq_protocol::arbiter::ArbiterConfig;
use tokq_protocol::centralized::CentralConfig;
use tokq_protocol::maekawa::MaekawaConfig;
use tokq_protocol::raymond::RaymondConfig;
use tokq_protocol::ricart_agrawala::RaConfig;
use tokq_protocol::singhal::SinghalConfig;
use tokq_protocol::suzuki_kasami::SkConfig;
use tokq_simnet::metrics::Report;
use tokq_simnet::sim::{SimConfig, Simulation};
use tokq_workload::Workload;

/// The algorithms the harness can simulate.
#[derive(Debug, Clone)]
pub enum Algo {
    /// The paper's rotating-arbiter algorithm under the given config.
    Arbiter(ArbiterConfig),
    /// Ricart–Agrawala (Figure 6's static comparator).
    RicartAgrawala,
    /// Singhal's dynamic algorithm (Figure 6's dynamic comparator).
    Singhal,
    /// Suzuki–Kasami broadcast token algorithm.
    SuzukiKasami,
    /// Raymond's tree token algorithm.
    Raymond,
    /// Maekawa's √N quorum algorithm.
    Maekawa,
    /// Central coordinator baseline.
    Centralized,
}

impl Algo {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Arbiter(_) => "arbiter",
            Algo::RicartAgrawala => "ricart-agrawala",
            Algo::Singhal => "singhal",
            Algo::SuzukiKasami => "suzuki-kasami",
            Algo::Raymond => "raymond",
            Algo::Maekawa => "maekawa",
            Algo::Centralized => "centralized",
        }
    }

    /// Runs this algorithm under `sim`/`workload` until `target_cs`
    /// measured completions.
    pub fn run(&self, sim: SimConfig, workload: Workload, target_cs: u64) -> Report {
        match self {
            Algo::Arbiter(cfg) => {
                Simulation::build(sim, cfg.clone(), workload).run_until_cs(target_cs)
            }
            Algo::RicartAgrawala => {
                Simulation::build(sim, RaConfig, workload).run_until_cs(target_cs)
            }
            Algo::Singhal => {
                Simulation::build(sim, SinghalConfig, workload).run_until_cs(target_cs)
            }
            Algo::SuzukiKasami => {
                Simulation::build(sim, SkConfig::default(), workload).run_until_cs(target_cs)
            }
            Algo::Raymond => {
                Simulation::build(sim, RaymondConfig::default(), workload).run_until_cs(target_cs)
            }
            Algo::Maekawa => {
                Simulation::build(sim, MaekawaConfig, workload).run_until_cs(target_cs)
            }
            Algo::Centralized => {
                Simulation::build(sim, CentralConfig::default(), workload).run_until_cs(target_cs)
            }
        }
    }
}

/// Knobs common to all experiments (overridable from the CLI).
#[derive(Debug, Clone, Copy)]
pub struct RunSettings {
    /// Measured critical sections per sweep point.
    pub cs_per_point: u64,
    /// Base RNG seed; each point perturbs it deterministically.
    pub seed: u64,
    /// Number of nodes (the paper uses 10).
    pub n: usize,
}

impl Default for RunSettings {
    fn default() -> Self {
        RunSettings {
            cs_per_point: 30_000,
            seed: 0xB1EF_CAFE,
            n: 10,
        }
    }
}

impl RunSettings {
    /// The simulator configuration for sweep point `idx`.
    pub fn sim(&self, idx: u64) -> SimConfig {
        SimConfig::paper_defaults(self.n).with_seed(self.seed ^ (idx.wrapping_mul(0x9e37)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_completes_a_small_run() {
        let s = RunSettings {
            cs_per_point: 50,
            seed: 7,
            n: 5,
        };
        for algo in [
            Algo::Arbiter(ArbiterConfig::basic()),
            Algo::RicartAgrawala,
            Algo::Singhal,
            Algo::SuzukiKasami,
            Algo::Raymond,
            Algo::Maekawa,
            Algo::Centralized,
        ] {
            let mut sim = s.sim(0);
            sim.warmup_cs = 10;
            let r = algo.run(sim, Workload::poisson(2.0), s.cs_per_point);
            assert!(
                r.cs_measured >= s.cs_per_point,
                "{} finished only {} CS",
                algo.name(),
                r.cs_measured
            );
        }
    }

    #[test]
    fn seeds_differ_across_points() {
        let s = RunSettings::default();
        assert_ne!(s.sim(0).seed, s.sim(1).seed);
    }
}
