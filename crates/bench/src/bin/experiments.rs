//! Experiment harness CLI: regenerates every figure of the paper and the
//! extension experiments.
//!
//! ```text
//! cargo run --release -p tokq-bench --bin experiments -- <command> [options]
//!
//! Commands:
//!   fig2            §2.2 illustrative example timeline (Figure 2)
//!   fig3            avg messages per CS vs arrival rate (Figure 3)
//!   fig4            avg delay per CS vs arrival rate (Figure 4)
//!   fig5            forwarded-request fraction vs arrival rate (Figure 5)
//!   fig6            comparison vs Ricart–Agrawala / Singhal (Figure 6)
//!   table-analytic  Eqs. 1/3/4/6 vs simulation across N
//!   model           batch-service queueing model vs simulation
//!   tuning          §7 T_req × T_fwd trade-off grid
//!   scaling         messages/CS at saturation vs N, all algorithms
//!   baselines       all six algorithms at light/heavy load
//!   starvation      §4 starvation-free variant + period ablation
//!   recovery        §6 fault-injection scenarios
//!   all             everything above, in order
//!
//! Options:
//!   --cs <num>      measured critical sections per point (default 30000)
//!   --seed <num>    base RNG seed (default 0xB1EFCAFE)
//!   --n <num>       node count where applicable (default 10)
//!   --out <dir>     also write each table as CSV into <dir>
//!   --quick         shorthand for --cs 2000
//! ```

use std::path::PathBuf;

use tokq_analysis::report::Table;
use tokq_bench::figures;
use tokq_bench::RunSettings;

struct Args {
    command: String,
    settings: RunSettings,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut settings = RunSettings::default();
    let mut out = None;
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--cs" => {
                settings.cs_per_point = argv
                    .next()
                    .ok_or("--cs needs a value")?
                    .parse()
                    .map_err(|e| format!("--cs: {e}"))?;
            }
            "--seed" => {
                settings.seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--n" => {
                settings.n = argv
                    .next()
                    .ok_or("--n needs a value")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a value")?));
            }
            "--quick" => settings.cs_per_point = 2_000,
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(Args {
        command,
        settings,
        out,
    })
}

fn usage() -> String {
    "usage: experiments <fig2|fig3|fig4|fig5|fig6|table-analytic|baselines|starvation|recovery|all> \
     [--cs N] [--seed S] [--n NODES] [--out DIR] [--quick]"
        .to_owned()
}

fn emit(table: &Table, out: &Option<PathBuf>) {
    println!("{}", table.to_ascii());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output dir");
        let slug: String = table
            .title
            .chars()
            .take_while(|c| !c.is_whitespace())
            .collect();
        let path = dir.join(format!("{slug}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        eprintln!("wrote {}", path.display());
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let s = args.settings;
    match args.command.as_str() {
        "fig2" => print!("{}", figures::fig2()),
        "fig3" | "fig4" | "fig5" => {
            let (f3, f4, f5) = figures::fig345(s);
            match args.command.as_str() {
                "fig3" => emit(&f3, &args.out),
                "fig4" => emit(&f4, &args.out),
                _ => emit(&f5, &args.out),
            }
        }
        "fig345" => {
            let (f3, f4, f5) = figures::fig345(s);
            emit(&f3, &args.out);
            emit(&f4, &args.out);
            emit(&f5, &args.out);
        }
        "fig6" => emit(&figures::fig6(s), &args.out),
        "table-analytic" => emit(&figures::table_analytic(s), &args.out),
        "model" => emit(&figures::model_vs_sim(s), &args.out),
        "tuning" => emit(&figures::tuning(s), &args.out),
        "scaling" => emit(&figures::scaling(s), &args.out),
        "baselines" => emit(&figures::baselines(s), &args.out),
        "starvation" => {
            for t in figures::starvation(s) {
                emit(&t, &args.out);
            }
        }
        "recovery" => emit(&figures::recovery(s), &args.out),
        "all" => {
            print!("{}", figures::fig2());
            println!();
            let (f3, f4, f5) = figures::fig345(s);
            emit(&f3, &args.out);
            emit(&f4, &args.out);
            emit(&f5, &args.out);
            emit(&figures::fig6(s), &args.out);
            emit(&figures::table_analytic(s), &args.out);
            emit(&figures::model_vs_sim(s), &args.out);
            emit(&figures::tuning(s), &args.out);
            emit(&figures::scaling(s), &args.out);
            emit(&figures::baselines(s), &args.out);
            for t in figures::starvation(s) {
                emit(&t, &args.out);
            }
            emit(&figures::recovery(s), &args.out);
        }
        other => {
            eprintln!("unknown command {other}\n{}", usage());
            std::process::exit(2);
        }
    }
}
