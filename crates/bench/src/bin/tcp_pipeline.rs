//! TCP send-pipeline benchmark: grant latency over the real socket
//! transport, healthy cluster vs. one peer dead.
//!
//! Each scenario spins up a threaded cluster on loopback TCP, optionally
//! crashes the last node, then measures wall-clock `lock()` latency from
//! every surviving node in round-robin. The one-peer-dead row is the
//! regression this benchmark exists to watch: with the off-thread writer
//! pipeline, an unreachable peer costs only the protocol's own recovery
//! timeouts — never a transport connect/write stall compounding on the
//! protocol threads, which is what the old inline send path did.
//!
//! ```text
//! cargo run --release -p tokq-bench --bin tcp_pipeline -- [--nodes N]
//!     [--rounds R] [--out PATH]
//! ```
//!
//! Writes a JSON summary (default `results/BENCH_tcp.json`).

use std::time::{Duration, Instant};

use serde::value::Value;
use tokq_core::Cluster;
use tokq_protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq_protocol::types::TimeDelta;

struct Args {
    nodes: usize,
    rounds: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 5,
        rounds: 30,
        out: std::path::PathBuf::from("results/BENCH_tcp.json"),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--nodes" => {
                args.nodes = argv
                    .next()
                    .ok_or("--nodes needs a value")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--rounds" => {
                args.rounds = argv
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?;
            }
            "--out" => {
                args.out = argv.next().ok_or("--out needs a value")?.into();
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    Ok(args)
}

/// Fast-recovery arbiter config so the one-peer-dead scenario settles in
/// hundreds of milliseconds instead of the conservative defaults.
fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        request_retry: Some(TimeDelta::from_millis(250)),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(1))
            .with_t_forward(TimeDelta::from_millis(1))
    }
}

/// Exact percentile of a sorted sample set (nearest-rank).
fn percentile(sorted: &[Duration], p: usize) -> Duration {
    let idx = (sorted.len() * p / 100).min(sorted.len() - 1);
    sorted[idx]
}

struct ScenarioResult {
    locks: u64,
    p50: Duration,
    p99: Duration,
    max: Duration,
    reconnects: u64,
    frames_requeued: u64,
    frames_abandoned: u64,
}

/// One scenario: a `nodes`-node TCP cluster, optionally with the last
/// node crashed, acquiring the lock `rounds` times from every live node.
fn run_scenario(nodes: usize, rounds: usize, crash_last: bool) -> ScenarioResult {
    let cluster = Cluster::builder(nodes).config(quick_ft()).tcp().build();
    let live = if crash_last {
        cluster.crash(nodes - 1).expect("crash last node");
        // Let token recovery route around the dead member before timing.
        std::thread::sleep(Duration::from_millis(300));
        nodes - 1
    } else {
        nodes
    };

    let mut latencies = Vec::with_capacity(rounds * live);
    for _round in 0..rounds {
        for node in 0..live {
            let handle = cluster.handle(node).expect("node in range");
            let t0 = Instant::now();
            let guard = handle
                .try_lock_for(Duration::from_secs(30))
                .expect("live nodes must keep acquiring");
            latencies.push(t0.elapsed());
            drop(guard);
        }
    }

    latencies.sort();
    let metrics = cluster.metrics_handle();
    let result = ScenarioResult {
        locks: latencies.len() as u64,
        p50: percentile(&latencies, 50),
        p99: percentile(&latencies, 99),
        max: *latencies.last().expect("at least one lock"),
        reconnects: metrics.reconnects(),
        frames_requeued: metrics.frames_requeued(),
        frames_abandoned: metrics.frames_abandoned(),
    };
    cluster.shutdown();
    result
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tcp_pipeline: {e}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    for (scenario, crash_last) in [("healthy", false), ("one_peer_dead", true)] {
        let r = run_scenario(args.nodes, args.rounds, crash_last);
        println!(
            "{scenario:>14}: {locks:>5} locks  p50 {p50:?}  p99 {p99:?}  max {max:?}  \
             (reconnects {rc}, requeued {rq}, abandoned {ab})",
            locks = r.locks,
            p50 = r.p50,
            p99 = r.p99,
            max = r.max,
            rc = r.reconnects,
            rq = r.frames_requeued,
            ab = r.frames_abandoned,
        );
        rows.push(Value::Map(vec![
            ("scenario".into(), Value::Str(scenario.into())),
            ("locks".into(), Value::U64(r.locks)),
            ("p50_ns".into(), Value::U64(r.p50.as_nanos() as u64)),
            ("p99_ns".into(), Value::U64(r.p99.as_nanos() as u64)),
            ("max_ns".into(), Value::U64(r.max.as_nanos() as u64)),
            (
                "counters".into(),
                Value::Map(vec![
                    ("reconnects".into(), Value::U64(r.reconnects)),
                    ("frames_requeued".into(), Value::U64(r.frames_requeued)),
                    ("frames_abandoned".into(), Value::U64(r.frames_abandoned)),
                ]),
            ),
        ]));
    }

    let doc = Value::Map(vec![
        ("bench".into(), Value::Str("tcp_pipeline".into())),
        ("nodes".into(), Value::U64(args.nodes as u64)),
        ("rounds".into(), Value::U64(args.rounds as u64)),
        ("rows".into(), Value::Seq(rows)),
    ]);
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, tokq_obs::json::render(&doc) + "\n").expect("write output");
    println!("wrote {}", args.out.display());
}
