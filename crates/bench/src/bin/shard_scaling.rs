//! Shard-scaling benchmark: aggregate critical-section throughput of the
//! sharded lock service at 1, 2, 4 and 8 shards under uniform multi-resource
//! contention.
//!
//! Each run spins up a real threaded cluster, spreads one worker per
//! (node, resource) pair over resources chosen to land on distinct shards,
//! and measures completed critical sections over a fixed wall-clock window.
//! Because shards are independent protocol instances, aggregate throughput
//! should scale with the shard count until workers (not the token rotation)
//! become the bottleneck.
//!
//! ```text
//! cargo run --release -p tokq-bench --bin shard_scaling -- [--nodes N]
//!     [--window-ms MS] [--out PATH]
//! ```
//!
//! Writes a JSON summary (default `results/BENCH_shards.json`).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::value::Value;
use tokq_core::{Cluster, ResourceId, ShardId};
use tokq_protocol::arbiter::ArbiterConfig;
use tokq_protocol::types::TimeDelta;

const SHARD_COUNTS: [u16; 4] = [1, 2, 4, 8];

struct Args {
    nodes: usize,
    window: Duration,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        nodes: 4,
        window: Duration::from_millis(2_000),
        out: std::path::PathBuf::from("results/BENCH_shards.json"),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--nodes" => {
                args.nodes = argv
                    .next()
                    .ok_or("--nodes needs a value")?
                    .parse()
                    .map_err(|e| format!("--nodes: {e}"))?;
            }
            "--window-ms" => {
                let ms: u64 = argv
                    .next()
                    .ok_or("--window-ms needs a value")?
                    .parse()
                    .map_err(|e| format!("--window-ms: {e}"))?;
                args.window = Duration::from_millis(ms);
            }
            "--out" => {
                args.out = argv.next().ok_or("--out needs a value")?.into();
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Resource names landing on `count` distinct shards of a `shards`-shard
/// cluster, so the offered load is spread uniformly over every protocol
/// instance.
fn resources_on_distinct_shards(shards: u16, count: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut seen = BTreeSet::new();
    for i in 0u64.. {
        let name = format!("res/{i}");
        if seen.insert(ResourceId::new(name.as_str()).shard(shards)) {
            names.push(name);
            if names.len() == count {
                break;
            }
        }
    }
    names
}

/// One measurement: `nodes` nodes, `shards` shards, one worker per
/// (node, resource) pair hammering the lock for `window`. Returns
/// (total CS completed, per-shard CS counts).
fn run_once(nodes: usize, shards: u16, window: Duration) -> (u64, Vec<u64>) {
    // Short phases so the rotation, not the collection window, dominates.
    let config = ArbiterConfig::basic()
        .with_t_collect(TimeDelta::from_micros(200))
        .with_t_forward(TimeDelta::from_micros(200));
    let cluster = Arc::new(
        Cluster::builder(nodes)
            .shards(shards)
            .config(config)
            .build(),
    );
    let resources = resources_on_distinct_shards(shards, shards as usize);

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for node in 0..nodes {
        for name in &resources {
            let handle = cluster
                .resource_on(node, name.as_str())
                .expect("node in range");
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match handle.try_lock_for(Duration::from_secs(5)) {
                        Ok(guard) => drop(guard),
                        Err(_) => break,
                    }
                }
            }));
        }
    }

    // Warm up, then count completions over the measurement window only.
    std::thread::sleep(window / 4);
    let metrics = cluster.metrics_handle();
    let before_total = metrics.cs_completed_total();
    let before_shards: Vec<u64> = (0..shards)
        .map(|s| metrics.cs_completed_on(ShardId(s)))
        .collect();
    let start = Instant::now();
    std::thread::sleep(window);
    let elapsed = start.elapsed();
    let after_total = metrics.cs_completed_total();
    let after_shards: Vec<u64> = (0..shards)
        .map(|s| metrics.cs_completed_on(ShardId(s)))
        .collect();

    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().expect("worker panicked");
    }
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => unreachable!("workers joined"),
    }

    let per_shard: Vec<u64> = after_shards
        .iter()
        .zip(&before_shards)
        .map(|(a, b)| a.saturating_sub(*b))
        .collect();
    // Normalize to the nominal window so rows are comparable even if the
    // sleep overshot.
    let total = after_total - before_total;
    let scaled = (total as f64 * window.as_secs_f64() / elapsed.as_secs_f64()) as u64;
    (scaled, per_shard)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("shard_scaling: {e}");
            std::process::exit(2);
        }
    };

    let mut rows = Vec::new();
    let mut baseline = 0u64;
    for &shards in &SHARD_COUNTS {
        let (total, per_shard) = run_once(args.nodes, shards, args.window);
        let throughput = total as f64 / args.window.as_secs_f64();
        if shards == 1 {
            baseline = total.max(1);
        }
        let speedup = total as f64 / baseline.max(1) as f64;
        println!(
            "shards {shards:>2}: {total:>7} CS in {:?}  ({throughput:>9.1} CS/s, {speedup:>4.2}x vs 1 shard)  per-shard {per_shard:?}",
            args.window
        );
        rows.push(Value::Map(vec![
            ("shards".into(), Value::U64(u64::from(shards))),
            ("cs_completed".into(), Value::U64(total)),
            ("cs_per_sec".into(), Value::F64(throughput)),
            ("speedup_vs_1_shard".into(), Value::F64(speedup)),
            (
                "per_shard".into(),
                Value::Seq(per_shard.into_iter().map(Value::U64).collect()),
            ),
        ]));
    }

    let doc = Value::Map(vec![
        ("bench".into(), Value::Str("shard_scaling".into())),
        ("nodes".into(), Value::U64(args.nodes as u64)),
        (
            "window_ms".into(),
            Value::U64(args.window.as_millis() as u64),
        ),
        ("rows".into(), Value::Seq(rows)),
    ]);
    if let Some(dir) = args.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(&args.out, tokq_obs::json::render(&doc) + "\n").expect("write output");
    println!("wrote {}", args.out.display());
}
