//! Experiment harness for the Banerjee–Chrysanthis reproduction.
//!
//! One module per paper artifact; the `experiments` binary exposes them as
//! subcommands. Every experiment returns [`tokq_analysis::Table`]s that are
//! printed as ASCII and optionally written as CSV.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod runner;

pub use runner::{Algo, RunSettings};
