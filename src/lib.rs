//! # tokq — rotating-arbiter token-passing distributed mutual exclusion
//!
//! A full reproduction of *"A New Token Passing Distributed Mutual
//! Exclusion Algorithm"* (Banerjee & Chrysanthis, ICDCS 1996), packaged as
//! a facade over the workspace crates:
//!
//! * [`protocol`] — sans-io state machines: the arbiter algorithm (basic,
//!   starvation-free, fault-tolerant) and the baselines it is evaluated
//!   against (Ricart–Agrawala, Suzuki–Kasami, Raymond, Singhal,
//!   centralized).
//! * [`simnet`] — deterministic discrete-event network simulator used to
//!   regenerate the paper's figures.
//! * [`core`] — threaded runtime: a real distributed lock with RAII guards
//!   over an in-process transport.
//! * [`workload`] — Poisson/bursty/closed-loop workload generators.
//! * [`analysis`] — the paper's analytic formulas (Eqs. 1–7), statistics,
//!   and report formatting.
//! * [`obs`] — unified observability: structured JSONL event tracing,
//!   latency histograms, and a post-mortem flight recorder shared by the
//!   simulator and the runtime (filtered by `TOKQ_TRACE`).
//!
//! # Quickstart
//!
//! Simulate 10 nodes under Poisson load and read off the paper's headline
//! metric (≈ 3 messages per critical section at heavy load):
//!
//! ```
//! use tokq::protocol::arbiter::ArbiterConfig;
//! use tokq::simnet::{SimConfig, Simulation};
//! use tokq::workload::Workload;
//!
//! let report = Simulation::build(
//!     SimConfig::paper_defaults(10),
//!     ArbiterConfig::basic(),
//!     Workload::poisson(5.0),
//! )
//! .run_until_cs(2_000);
//! assert!(report.messages_per_cs() < 3.5);
//! ```

pub use tokq_analysis as analysis;
pub use tokq_core as core;
pub use tokq_obs as obs;
pub use tokq_protocol as protocol;
pub use tokq_simnet as simnet;
pub use tokq_workload as workload;
