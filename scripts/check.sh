#!/bin/sh
# Repository quality gate: formatting, lints, and the tier-1 build+test.
# Run from anywhere; everything is relative to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> rustdoc gate: cargo doc --no-deps -D warnings"
# Explicit -p list: the vendored stand-ins are workspace members and are
# not held to the documentation bar.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet \
    -p tokq -p tokq-core -p tokq-protocol -p tokq-obs \
    -p tokq-simnet -p tokq-workload -p tokq-analysis -p tokq-bench

echo "==> sharded smoke: 4 resources on 4 shards over one live cluster"
cargo run --release --quiet --example sharded_locks >/dev/null

echo "==> model-checker smoke: bounded exploration of arbiter + baselines"
cargo run --release --quiet --example explore_smoke

echo "==> chaos smoke: seeded fault schedule against a live 5-node cluster"
cargo run --release --quiet --example chaos_smoke

echo "==> tcp pipeline: head-of-line regression + wire-codec fuzz"
cargo test -q --test tcp_pipeline

echo "==> tcp bench smoke: grant latency, healthy vs one peer dead"
cargo run --release --quiet -p tokq-bench --bin tcp_pipeline -- --rounds 3

echo "==> all checks passed"
