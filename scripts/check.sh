#!/bin/sh
# Repository quality gate: formatting, lints, and the tier-1 build+test.
# Run from anywhere; everything is relative to the repo root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -D warnings"
cargo clippy --workspace --all-targets --quiet -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> model-checker smoke: bounded exploration of arbiter + baselines"
cargo run --release --quiet --example explore_smoke

echo "==> chaos smoke: seeded fault schedule against a live 5-node cluster"
cargo run --release --quiet --example chaos_smoke

echo "==> all checks passed"
