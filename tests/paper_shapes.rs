//! Quantitative shape checks against the paper's analysis (§3).
//!
//! These are the quality gates from DESIGN.md §7: the simulation must land
//! on the closed-form predictions at the load extremes and preserve every
//! qualitative comparison the paper makes.

use tokq::analysis::formulas;
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::types::TimeDelta;
use tokq::simnet::SimConfig;
use tokq::workload::Workload;
use tokq_bench::Algo;

fn sim(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n).with_seed(seed);
    c.warmup_cs = 300;
    c
}

#[test]
fn heavy_load_messages_match_eq4() {
    // Eq. 4: M̄ = 3 − 2/N at saturation.
    for n in [5usize, 10, 20] {
        let r =
            Algo::Arbiter(ArbiterConfig::basic()).run(sim(n, 21), Workload::saturating(), 8_000);
        let predicted = formulas::arbiter_messages_heavy(n);
        let measured = r.messages_per_cs();
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.05,
            "N={n}: heavy-load messages {measured:.3} vs Eq.4 {predicted:.3} (err {err:.3})"
        );
    }
}

#[test]
fn light_load_messages_match_eq1() {
    // Eq. 1: M̄ = (N² − 1)/N ≈ N at very light load. Allow 10% — the
    // broadcast-counting optimization differs by ±1 message (DESIGN.md).
    for n in [5usize, 10] {
        let r =
            Algo::Arbiter(ArbiterConfig::basic()).run(sim(n, 22), Workload::poisson(0.01), 3_000);
        let predicted = formulas::arbiter_messages_light(n);
        let measured = r.messages_per_cs();
        let err = (measured - predicted).abs() / predicted;
        assert!(
            err < 0.10,
            "N={n}: light-load messages {measured:.3} vs Eq.1 {predicted:.3} (err {err:.3})"
        );
    }
}

#[test]
fn heavy_load_delay_tracks_eq6_scaling() {
    // Eq. 6 predicts delay growing linearly with N at saturation.
    let d10 = Algo::Arbiter(ArbiterConfig::basic())
        .run(sim(10, 23), Workload::saturating(), 5_000)
        .mean_delay();
    let d20 = Algo::Arbiter(ArbiterConfig::basic())
        .run(sim(20, 24), Workload::saturating(), 5_000)
        .mean_delay();
    let ratio = d20 / d10;
    assert!(
        (1.6..=2.4).contains(&ratio),
        "saturated delay should roughly double from N=10 to N=20, got ratio {ratio:.2}"
    );
}

#[test]
fn arbiter_beats_ricart_agrawala_at_every_load() {
    // The paper: "the scheme proposed here performs better than the
    // Ricart-Agrawala algorithm at all loads".
    for (i, lambda) in [0.05, 0.3, 1.0, 5.0].iter().enumerate() {
        let arb = Algo::Arbiter(ArbiterConfig::basic()).run(
            sim(10, 30 + i as u64),
            Workload::poisson(*lambda),
            4_000,
        );
        let ra =
            Algo::RicartAgrawala.run(sim(10, 40 + i as u64), Workload::poisson(*lambda), 4_000);
        assert!(
            arb.messages_per_cs() < ra.messages_per_cs(),
            "λ={lambda}: arbiter {:.2} ≥ RA {:.2}",
            arb.messages_per_cs(),
            ra.messages_per_cs()
        );
    }
}

#[test]
fn ricart_agrawala_costs_exactly_2n_minus_2() {
    let r = Algo::RicartAgrawala.run(sim(10, 50), Workload::poisson(0.5), 4_000);
    let m = r.messages_per_cs();
    // Warmup-boundary accounting leaves a handful of in-flight messages on
    // either side of the measurement window, so allow a whisker.
    assert!(
        (m - 18.0).abs() < 0.05,
        "RA must cost 2(N−1) = 18 messages, got {m:.3}"
    );
}

#[test]
fn arbiter_beats_raymond_at_heavy_load() {
    // The paper's headline: better than Raymond's ≈4 at high loads.
    let arb = Algo::Arbiter(ArbiterConfig::basic()).run(sim(10, 51), Workload::saturating(), 6_000);
    let ray = Algo::Raymond.run(sim(10, 52), Workload::saturating(), 6_000);
    assert!(
        arb.messages_per_cs() < ray.messages_per_cs(),
        "arbiter {:.2} ≥ raymond {:.2}",
        arb.messages_per_cs(),
        ray.messages_per_cs()
    );
    assert!(
        arb.messages_per_cs() < 3.0,
        "arbiter must be below 3 messages at saturation (got {:.2})",
        arb.messages_per_cs()
    );
}

#[test]
fn suzuki_kasami_costs_about_n_at_heavy_load() {
    let sk = Algo::SuzukiKasami.run(sim(10, 53), Workload::saturating(), 6_000);
    let m = sk.messages_per_cs();
    assert!(
        (8.0..=10.5).contains(&m),
        "SK should cost ≈ N−1..N messages at saturation, got {m:.2}"
    );
}

#[test]
fn longer_collection_phase_trades_messages_for_delay() {
    // Paper §3.3: "with a longer request collection phase, the average
    // number of messages incurred is lower, but the average delay per
    // critical section is higher" — most visible at moderate load.
    let short = Algo::Arbiter(ArbiterConfig::basic().with_t_collect(TimeDelta::from_millis(100)))
        .run(sim(10, 54), Workload::poisson(0.3), 6_000);
    let long = Algo::Arbiter(ArbiterConfig::basic().with_t_collect(TimeDelta::from_millis(400)))
        .run(sim(10, 54), Workload::poisson(0.3), 6_000);
    assert!(
        long.messages_per_cs() < short.messages_per_cs(),
        "longer T_req must batch more: {:.3} vs {:.3}",
        long.messages_per_cs(),
        short.messages_per_cs()
    );
    assert!(
        long.mean_delay() > short.mean_delay(),
        "longer T_req must add delay: {:.3} vs {:.3}",
        long.mean_delay(),
        short.mean_delay()
    );
}

#[test]
fn forwarded_fraction_vanishes_at_heavy_load() {
    // Paper Figure 5: "At very high loads, the fraction of forwarded
    // messages becomes negligible."
    let light =
        Algo::Arbiter(ArbiterConfig::basic()).run(sim(10, 55), Workload::poisson(0.05), 3_000);
    let heavy =
        Algo::Arbiter(ArbiterConfig::basic()).run(sim(10, 56), Workload::saturating(), 6_000);
    assert!(
        light.forwarded_fraction() > heavy.forwarded_fraction(),
        "forwarding must shrink with load: light {:.4} vs heavy {:.4}",
        light.forwarded_fraction(),
        heavy.forwarded_fraction()
    );
    assert!(
        heavy.forwarded_fraction() < 0.005,
        "heavy-load forwarding must be negligible, got {:.4}",
        heavy.forwarded_fraction()
    );
    // Paper §4: "only a maximum of 4% of messages were forwarded".
    assert!(
        light.forwarded_fraction() < 0.06,
        "light-load forwarding should stay in the paper's few-percent range, got {:.4}",
        light.forwarded_fraction()
    );
}

#[test]
fn fairness_is_fcfs_uniform() {
    let r = Algo::Arbiter(ArbiterConfig::basic()).run(sim(10, 57), Workload::poisson(1.0), 10_000);
    assert!(
        r.jain_fairness() > 0.98,
        "uniform load must be served evenly, Jain index {:.4}",
        r.jain_fairness()
    );
}

#[test]
fn light_load_delay_matches_eq3_floor() {
    // Eq. 3 with paper parameters and N=10: 0.38 s. Forward-phase drops
    // add a small tail, so check the floor and a generous ceiling.
    let r = Algo::Arbiter(ArbiterConfig::basic()).run(sim(10, 58), Workload::poisson(0.01), 3_000);
    let predicted = formulas::arbiter_delay_light(10, formulas::ModelParams::paper());
    let measured = r.mean_delay();
    assert!(
        measured >= predicted * 0.95,
        "measured delay {measured:.3} below the analytic floor {predicted:.3}?"
    );
    assert!(
        measured <= predicted * 2.5,
        "light-load delay {measured:.3} far above Eq.3 {predicted:.3}"
    );
}
