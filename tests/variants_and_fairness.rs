//! The paper's variants and fairness claims: the §4.1 starvation-free
//! monitor, §5.1 load-balancing, §5.2 priorities, and the §2.4
//! sequence-number refinement.

use tokq::protocol::arbiter::{ArbiterConfig, Fairness, MonitorConfig, MonitorPeriod};
use tokq::protocol::types::{Priority, TimeDelta};
use tokq::simnet::{ExploreConfig, Explorer, SimConfig};
use tokq::workload::Workload;
use tokq_bench::Algo;

fn sim(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n).with_seed(seed);
    c.warmup_cs = 100;
    c
}

#[test]
fn monitor_visits_track_load_adaptively() {
    // Paper §4.1: "at high loads, the queue size will be high, causing the
    // period to be long, and vice versa" — so monitor visits *per CS* must
    // drop sharply from light to heavy load.
    let cfg = ArbiterConfig::starvation_free();
    let light = Algo::Arbiter(cfg.clone()).run(sim(10, 70), Workload::poisson(0.1), 4_000);
    let heavy = Algo::Arbiter(cfg).run(sim(10, 71), Workload::saturating(), 4_000);
    let light_rate = light.note_count("monitor_visit") as f64 / light.cs_total as f64;
    let heavy_rate = heavy.note_count("monitor_visit") as f64 / heavy.cs_total as f64;
    assert!(
        light_rate > 4.0 * heavy_rate,
        "adaptive period must shorten at light load: light {light_rate:.3}/CS vs heavy {heavy_rate:.3}/CS"
    );
}

#[test]
fn fixed_period_controls_monitor_frequency() {
    let run = |every: u32, seed: u64| {
        let cfg = ArbiterConfig {
            monitor: Some(MonitorConfig {
                period: MonitorPeriod::Fixed { every },
                ..MonitorConfig::default()
            }),
            ..ArbiterConfig::basic()
        };
        Algo::Arbiter(cfg).run(sim(10, seed), Workload::poisson(0.3), 4_000)
    };
    let frequent = run(1, 72);
    let rare = run(16, 73);
    assert!(
        frequent.note_count("monitor_visit") > 5 * rare.note_count("monitor_visit"),
        "every=1 gives {} visits, every=16 gives {}",
        frequent.note_count("monitor_visit"),
        rare.note_count("monitor_visit")
    );
}

#[test]
fn monitor_rotation_spreads_the_monitor_role() {
    // §5.1: "the role of the monitor node can also be shared by all the
    // nodes by rotating". With rotation on, monitor visits land on many
    // different nodes — observable through continued liveness plus visits
    // far exceeding what a single sticky monitor path would deadlock on.
    let cfg = ArbiterConfig {
        monitor: Some(MonitorConfig {
            period: MonitorPeriod::Fixed { every: 2 },
            rotate: true,
            ..MonitorConfig::default()
        }),
        ..ArbiterConfig::basic()
    };
    let r = Algo::Arbiter(cfg).run(sim(10, 74), Workload::poisson(0.5), 5_000);
    assert!(r.cs_measured >= 5_000, "rotation broke liveness");
    assert!(r.note_count("monitor_visit") > 100);
    assert!(r.jain_fairness() > 0.95);
}

#[test]
fn static_priorities_bias_service_order_without_starvation() {
    // §5.2: priorities order each sealed batch, yet low-priority nodes
    // keep being served because they drift to the tail (arbitership).
    let n = 6;
    let cfg = ArbiterConfig {
        fairness: Fairness::Priority,
        priorities: (0..n as u32).map(Priority).collect(),
        ..ArbiterConfig::basic()
    };
    let r = Algo::Arbiter(cfg).run(sim(n, 75), Workload::saturating(), 12_000);
    assert!(
        r.per_node_cs.iter().all(|&c| c > 0),
        "a node starved: {:?}",
        r.per_node_cs
    );
    // Under saturation with per-batch priority ordering, throughput stays
    // near-even (every batch contains everyone) — the *order inside each
    // batch* is what priority changes. Check via grant latency: higher
    // priority nodes wait less on average is not directly observable per
    // node here, so assert the structural fact instead: the system stays
    // fair overall.
    assert!(r.jain_fairness() > 0.9, "fairness {:?}", r.per_node_cs);
}

#[test]
fn seqnum_fairness_keeps_low_seq_nodes_first() {
    // §2.4: SeqNumFair orders each batch by how many critical sections a
    // node has completed, Suzuki–Kasami style.
    let cfg = ArbiterConfig {
        fairness: Fairness::SeqNumFair,
        ..ArbiterConfig::basic()
    };
    let r = Algo::Arbiter(cfg).run(sim(8, 76), Workload::saturating(), 10_000);
    assert!(r.cs_measured >= 10_000);
    assert!(
        r.jain_fairness() > 0.99,
        "seqnum fairness should equalize: {:?}",
        r.per_node_cs
    );
}

#[test]
fn hotspot_load_balances_arbiter_duty_onto_requesters() {
    // §5.1: "only the nodes that request for the critical section are
    // likely to be assigned the responsibility of being an arbiter".
    // With only nodes 0-2 requesting, nodes 3-9 never become arbiter —
    // observable as their completion counts staying zero while the
    // requesters' split evenly.
    let r = Algo::Arbiter(ArbiterConfig::basic()).run(
        sim(10, 77),
        Workload::only_nodes(vec![0, 1, 2], 1.0),
        6_000,
    );
    assert_eq!(r.per_node_cs[3..].iter().sum::<u64>(), 0);
    let min = r.per_node_cs[..3].iter().min().unwrap();
    let max = r.per_node_cs[..3].iter().max().unwrap();
    assert!(
        min * 2 >= *max,
        "requesters served unevenly: {:?}",
        r.per_node_cs
    );
}

#[test]
fn arbiter_algorithm_survives_exhaustive_interleaving_check() {
    // Bounded model checking of the actual paper algorithm: every delivery
    // order of every in-flight message and timer for 3 nodes, 2 requests.
    // With dedup + sleep sets, 150k unique states cover far more
    // interleavings than the old naive enumerator's 1.5M tree nodes.
    let stats = Explorer::new(ExploreConfig {
        max_depth: 22,
        max_states: 150_000,
        ..ExploreConfig::default()
    })
    .check(ArbiterConfig::basic(), 3, &[1, 2])
    .expect("arbiter must be safe under every interleaving");
    assert!(stats.states_explored > 1_000);
}

#[test]
fn starvation_free_variant_survives_exhaustive_interleaving_check() {
    let stats = Explorer::new(ExploreConfig {
        max_depth: 18,
        max_states: 150_000,
        ..ExploreConfig::default()
    })
    .check(ArbiterConfig::starvation_free(), 3, &[1, 2])
    .expect("starvation-free variant must be safe under every interleaving");
    assert!(stats.states_explored > 1_000);
}

#[test]
fn tuned_forwarding_reduces_drops() {
    // Eq. 7's engineering intent: a forwarding window that covers the
    // NEW-ARBITER broadcast plus a request flight (T_fwd ≥ 2·T_msg)
    // catches the stragglers a short window drops.
    let short = Algo::Arbiter(ArbiterConfig::basic().with_t_forward(TimeDelta::from_millis(10)))
        .run(sim(10, 78), Workload::poisson(0.2), 5_000);
    let tuned = Algo::Arbiter(ArbiterConfig::basic().with_t_forward(TimeDelta::from_millis(250)))
        .run(sim(10, 78), Workload::poisson(0.2), 5_000);
    assert!(
        tuned.note_count("request_dropped") < short.note_count("request_dropped"),
        "tuned window must drop fewer: {} vs {}",
        tuned.note_count("request_dropped"),
        short.note_count("request_dropped")
    );
}

#[test]
fn bursty_traffic_is_handled_and_batches_grow_in_bursts() {
    let r = Algo::Arbiter(ArbiterConfig::basic()).run(
        sim(10, 79),
        Workload::bursty(5.0, 0.05, TimeDelta::from_secs(3)),
        6_000,
    );
    assert!(r.cs_measured >= 6_000, "bursty load broke liveness");
    // During bursts the Q-list batches like the heavy-load regime, pushing
    // messages/CS well below the light-load ≈N cost.
    assert!(
        r.messages_per_cs() < 8.0,
        "bursts should batch: {:.2} msgs/CS",
        r.messages_per_cs()
    );
}
