//! End-to-end tests of the stateful model checker: reduction soundness,
//! the ≥10× reduction claim, fault branching, counterexample shrinking on
//! a deliberately broken arbiter, and the record/replay workflow through
//! the flight recorder.

use tokq::obs::{Level, Obs, Source, TraceFilter};
use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::maekawa::MaekawaConfig;
use tokq::protocol::ricart_agrawala::RaConfig;
use tokq::protocol::suzuki_kasami::SkConfig;
use tokq::simnet::{
    random_schedule, replay, ExploreConfig, Explorer, FaultBudget, Schedule, Violation,
    ViolationKind,
};

/// The §6-sabotaged arbiter: sealing a Q-list without broadcasting
/// NEW-ARBITER silently loses every request addressed to the stale
/// arbiter, and with the retry timeout disabled nothing ever recovers it.
fn broken_arbiter() -> ArbiterConfig {
    ArbiterConfig {
        suppress_new_arbiter: true,
        request_retry: None,
        ..ArbiterConfig::basic()
    }
}

#[test]
fn reduced_search_covers_the_same_states_as_naive() {
    // Reduction soundness, differentially: the naive enumerator and the
    // dedup+sleep-set search must visit the *same set* of protocol-state
    // fingerprints when both run unbounded within the depth limit. The
    // arbiter is the regression case for the depth-unaware visited cache:
    // its timer-rich state graph reaches states near the depth bound first
    // and revisits them shallower, so a cache that ignores the remaining
    // depth budget silently misses coverage at depths 6–9.
    let depth = |d| ExploreConfig {
        max_depth: d,
        check_deadlock: false,
        ..ExploreConfig::default()
    };
    for (label, d) in [
        ("arbiter", 8),
        ("ricart-agrawala", 12),
        ("suzuki-kasami", 12),
    ] {
        let naive_cfg = ExploreConfig {
            shrink: false,
            ..ExploreConfig::naive()
        };
        let naive_cfg = ExploreConfig {
            max_depth: d,
            ..naive_cfg
        };
        let (naive, reduced) = match label {
            "arbiter" => (
                Explorer::new(naive_cfg).check_with_fingerprints(
                    &ArbiterConfig::basic(),
                    3,
                    &[1, 2],
                ),
                Explorer::new(depth(d)).check_with_fingerprints(
                    &ArbiterConfig::basic(),
                    3,
                    &[1, 2],
                ),
            ),
            "ricart-agrawala" => (
                Explorer::new(naive_cfg).check_with_fingerprints(&RaConfig, 3, &[0, 1]),
                Explorer::new(depth(d)).check_with_fingerprints(&RaConfig, 3, &[0, 1]),
            ),
            _ => (
                Explorer::new(naive_cfg).check_with_fingerprints(&SkConfig::default(), 3, &[1, 2]),
                Explorer::new(depth(d)).check_with_fingerprints(&SkConfig::default(), 3, &[1, 2]),
            ),
        };
        let (naive_result, naive_fps) = naive;
        let (reduced_result, reduced_fps) = reduced;
        let naive_stats = naive_result.unwrap_or_else(|v| panic!("{label} naive: {v}"));
        let reduced_stats = reduced_result.unwrap_or_else(|v| panic!("{label} reduced: {v}"));
        assert!(
            !naive_stats.truncated,
            "{label}: naive run must be exhaustive"
        );
        assert!(!reduced_stats.truncated);
        assert_eq!(
            naive_fps, reduced_fps,
            "{label}: reduction changed the set of reachable protocol states"
        );
        assert!(
            reduced_stats.states_explored <= naive_stats.states_explored,
            "{label}: reduction explored more states than naive"
        );
    }
}

#[test]
fn reduction_is_at_least_10x_on_the_arbiter() {
    // The acceptance benchmark, as a loose assertion: on the 3-node
    // arbiter the naive enumerator needs ≥10× the states the reduced
    // search needs for the same depth bound. (The naive run is truncated
    // by its state budget — which only *understates* the true ratio.)
    let naive = Explorer::new(ExploreConfig {
        max_depth: 12,
        max_states: 2_000_000,
        ..ExploreConfig::naive()
    })
    .check(ArbiterConfig::basic(), 3, &[1, 2])
    .expect("arbiter is safe");
    let reduced = Explorer::new(ExploreConfig {
        max_depth: 12,
        max_states: 1_000_000,
        check_deadlock: false,
        ..ExploreConfig::default()
    })
    .check(ArbiterConfig::basic(), 3, &[1, 2])
    .expect("arbiter is safe");
    assert!(
        !reduced.truncated,
        "reduced search must finish exhaustively"
    );
    assert!(
        naive.states_explored >= 10 * reduced.states_explored,
        "expected ≥10x reduction, got naive={} reduced={}",
        naive.states_explored,
        reduced.states_explored
    );
    assert!(reduced.dedup_hits > 0);
    assert!(reduced.sleep_pruned > 0);
}

#[test]
fn healthy_arbiter_has_no_deadlock_in_bounded_space() {
    // Same bounds as the broken-arbiter test below: the deadlock must be
    // attributable to the sabotage, not to the detector.
    Explorer::new(ExploreConfig {
        max_depth: 20,
        max_states: 500_000,
        ..ExploreConfig::default()
    })
    .check(ArbiterConfig::basic(), 3, &[1, 2])
    .expect("the real algorithm must not deadlock");
}

#[test]
fn broken_arbiter_is_caught_with_a_shrunk_replayable_counterexample() {
    let violation = Explorer::new(ExploreConfig {
        max_depth: 20,
        max_states: 500_000,
        ..ExploreConfig::default()
    })
    .check(broken_arbiter(), 3, &[1, 2])
    .expect_err("suppressing NEW-ARBITER must starve a requester");

    let ViolationKind::Deadlock { starving } = &violation.kind else {
        panic!("expected a deadlock, got {violation}");
    };
    assert!(!starving.is_empty());

    // The shrunk counterexample is locally minimal — and concretely small:
    // collect-timer seal between the two request deliveries, a forward
    // phase that expires before the second request lands, done in 7 steps.
    assert!(
        violation.schedule.steps.len() <= 10,
        "shrunk schedule still has {} steps: {:?}",
        violation.schedule.steps.len(),
        violation.schedule.steps
    );

    // Deterministic replay reproduces it exactly, with every step
    // applicable, and removing any single step breaks the reproduction
    // (local minimality).
    let rep = replay(&broken_arbiter(), &violation.schedule);
    assert!(rep.reproduces(&violation.kind));
    assert!(
        rep.skipped.is_empty(),
        "shrunk schedule must replay cleanly"
    );
    for i in 0..violation.schedule.steps.len() {
        let mut cand = violation.schedule.clone();
        cand.steps.remove(i);
        assert!(
            !replay(&broken_arbiter(), &cand).reproduces(&violation.kind),
            "schedule not minimal: step {i} is removable"
        );
    }
}

#[test]
fn replay_is_deterministic_bit_for_bit() {
    let violation = Explorer::new(ExploreConfig {
        max_depth: 20,
        max_states: 500_000,
        ..ExploreConfig::default()
    })
    .check(broken_arbiter(), 3, &[1, 2])
    .expect_err("broken arbiter deadlocks");
    let a = replay(&broken_arbiter(), &violation.schedule);
    let b = replay(&broken_arbiter(), &violation.schedule);
    assert_eq!(a, b, "two replays of one schedule must be identical");
    assert!(a
        .steps
        .iter()
        .all(|s| !s.events.is_empty() || s.step.is_fault()));
}

#[test]
fn violation_schedule_round_trips_through_the_flight_recorder() {
    // The record/replay workflow end to end: explorer emits through obs →
    // flight recorder → JSONL dump → Schedule::from_jsonl → replay.
    let obs = Obs::with_filter(Source::Sim, TraceFilter::with_default(Level::Debug));
    let recorder = obs.attach_flight_recorder(256, Level::Debug);

    let violation = Explorer::new(ExploreConfig {
        max_depth: 20,
        max_states: 500_000,
        ..ExploreConfig::default()
    })
    .with_obs(obs)
    .check(broken_arbiter(), 3, &[1, 2])
    .expect_err("broken arbiter deadlocks");

    // From the snapshot...
    let from_events = Schedule::from_events(&recorder.snapshot())
        .expect("schedule reconstructs from recorder snapshot");
    assert_eq!(from_events, violation.schedule);

    // ...and from the raw JSONL dump, unfiltered.
    let dump = recorder.dump_jsonl();
    let from_jsonl = Schedule::from_jsonl(&dump).expect("schedule reconstructs from JSONL");
    assert_eq!(from_jsonl, violation.schedule);

    // The reconstructed schedule drives a faithful replay.
    let rep = replay(&broken_arbiter(), &from_jsonl);
    assert!(rep.reproduces(&violation.kind));
    assert!(rep.skipped.is_empty());
}

#[test]
fn fault_branching_finds_no_safety_violation_in_token_algorithms() {
    // One crash + one recovery + one token drop (and duplication of
    // non-token messages): safety must hold for the fault-tolerant
    // arbiter and Suzuki–Kasami in the explored envelope. Liveness is
    // deliberately out of scope on faulty paths.
    let budget = FaultBudget {
        crashes: 1,
        recoveries: 1,
        drops: 1,
        duplicates: 1,
        drop_any: false,
    };
    let cfg = ExploreConfig {
        max_depth: 10,
        max_states: 60_000,
        check_deadlock: false,
        ..ExploreConfig::default()
    }
    .with_faults(budget);

    let stats = Explorer::new(cfg)
        .check(ArbiterConfig::fault_tolerant(), 3, &[1, 2])
        .expect("fault-tolerant arbiter must stay safe under injected faults");
    assert!(stats.fault_branches > 0, "no fault branches were explored");

    let stats = Explorer::new(cfg)
        .check(SkConfig::default(), 3, &[1, 2])
        .expect("Suzuki–Kasami must stay safe under injected faults");
    assert!(stats.fault_branches > 0);
}

#[test]
fn duplication_budget_is_inert_for_duplication_intolerant_protocols() {
    // The no-duplication channel assumption is not specific to tokens:
    // Ricart–Agrawala counts REPLYs and Maekawa counts LOCKED votes with
    // plain counters, so delivering a second copy would let a node enter
    // the CS early — a violation of the channel model these algorithms
    // are specified under, not of the algorithms. The checker therefore
    // only duplicates messages whose handlers declare idempotence
    // (`ProtocolMessage::duplication_tolerant`); for these two protocols
    // no message qualifies, so a duplication-only budget must explore
    // zero fault branches and report no violation.
    let cfg = ExploreConfig {
        max_depth: 10,
        max_states: 200_000,
        check_deadlock: false,
        ..ExploreConfig::default()
    }
    .with_faults(FaultBudget {
        duplicates: 2,
        ..FaultBudget::NONE
    });
    let stats = Explorer::new(cfg)
        .check(RaConfig, 3, &[0, 1])
        .expect("Ricart–Agrawala must not be failed for duplicates its channel model forbids");
    assert_eq!(
        stats.fault_branches, 0,
        "no RA message is duplication-tolerant"
    );
    let stats = Explorer::new(cfg)
        .check(MaekawaConfig, 3, &[0, 1])
        .expect("Maekawa must not be failed for duplicates its channel model forbids");
    assert_eq!(
        stats.fault_branches, 0,
        "no Maekawa message is duplication-tolerant"
    );
}

#[test]
fn random_schedules_replay_without_skips() {
    // `random_schedule` only ever picks enabled steps, so its output must
    // replay cleanly — the precondition the shrinker's tolerance relies
    // on being the *exception*, not the rule.
    let choices: Vec<u16> = (0..40u16).map(|i| i.wrapping_mul(7919)).collect();
    for faults in [
        FaultBudget::NONE,
        FaultBudget {
            crashes: 1,
            ..FaultBudget::NONE
        },
    ] {
        let schedule = random_schedule(&ArbiterConfig::basic(), 3, &[1, 2], faults, &choices);
        let rep = replay(&ArbiterConfig::basic(), &schedule);
        assert!(rep.skipped.is_empty(), "skipped: {:?}", rep.skipped);
        assert!(
            rep.violation.is_none(),
            "arbiter violated safety in a replay"
        );
    }
}

#[test]
fn violation_display_names_the_failure() {
    let violation: Violation = Explorer::new(ExploreConfig {
        max_depth: 20,
        max_states: 500_000,
        ..ExploreConfig::default()
    })
    .check(broken_arbiter(), 3, &[1, 2])
    .expect_err("broken arbiter deadlocks");
    let msg = violation.to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("starve"), "{msg}");
}
