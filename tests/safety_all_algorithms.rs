//! Safety and liveness across every implemented algorithm.
//!
//! The simulator asserts the mutual-exclusion invariant online — any
//! overlapping critical sections panic the run — so completing a run *is*
//! the safety check; reaching the target count is the liveness check.

use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::centralized::CentralConfig;
use tokq::protocol::maekawa::MaekawaConfig;
use tokq::protocol::raymond::RaymondConfig;
use tokq::protocol::ricart_agrawala::RaConfig;
use tokq::protocol::singhal::SinghalConfig;
use tokq::protocol::suzuki_kasami::SkConfig;
use tokq::protocol::types::TimeDelta;
use tokq::simnet::{DelayModel, ExploreConfig, Explorer, SimConfig, Simulation};
use tokq::workload::Workload;
use tokq_bench::Algo;

fn all_algorithms() -> Vec<Algo> {
    vec![
        Algo::Arbiter(ArbiterConfig::basic()),
        Algo::Arbiter(ArbiterConfig::starvation_free()),
        Algo::Arbiter(ArbiterConfig::fault_tolerant()),
        Algo::RicartAgrawala,
        Algo::Singhal,
        Algo::SuzukiKasami,
        Algo::Raymond,
        Algo::Maekawa,
        Algo::Centralized,
    ]
}

fn sim(n: usize, seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(n).with_seed(seed);
    c.warmup_cs = 50;
    c
}

#[test]
fn every_algorithm_is_safe_and_live_under_poisson_load() {
    for algo in all_algorithms() {
        for seed in [1u64, 42, 0xDEAD] {
            let r = algo.run(sim(8, seed), Workload::poisson(1.5), 1_000);
            assert!(
                r.cs_measured >= 1_000,
                "{} (seed {seed}) completed only {}",
                algo.name(),
                r.cs_measured
            );
        }
    }
}

#[test]
fn every_algorithm_survives_saturation() {
    for algo in all_algorithms() {
        let r = algo.run(sim(6, 7), Workload::saturating(), 2_000);
        assert!(r.cs_measured >= 2_000, "{} starved", algo.name());
        // Saturated fairness: nobody is starved outright.
        assert!(
            r.per_node_cs.iter().all(|&c| c > 0),
            "{} starved a node: {:?}",
            algo.name(),
            r.per_node_cs
        );
    }
}

#[test]
fn every_algorithm_is_safe_under_random_delays() {
    // Uniform and heavy-tailed delays reorder messages aggressively.
    let models = [
        DelayModel::Uniform {
            lo: TimeDelta::from_millis(10),
            hi: TimeDelta::from_millis(300),
        },
        DelayModel::ExponentialTail {
            base: TimeDelta::from_millis(5),
            mean_tail: TimeDelta::from_millis(120),
        },
    ];
    for algo in all_algorithms() {
        for (i, model) in models.iter().enumerate() {
            let mut cfg = sim(6, 100 + i as u64);
            cfg.delay = *model;
            let r = algo.run(cfg, Workload::poisson(1.0), 800);
            assert!(
                r.cs_measured >= 800,
                "{} stalled under {:?}",
                algo.name(),
                model
            );
        }
    }
}

#[test]
fn single_node_degenerate_system_works() {
    for algo in all_algorithms() {
        let r = algo.run(sim(1, 3), Workload::poisson(5.0), 200);
        assert!(r.cs_measured >= 200, "{} failed with n=1", algo.name());
        // A single node needs no messages at all.
        assert_eq!(
            r.messages_total,
            0,
            "{} sent messages in a single-node system",
            algo.name()
        );
    }
}

#[test]
fn two_node_systems_alternate_correctly() {
    for algo in all_algorithms() {
        let r = algo.run(sim(2, 9), Workload::saturating(), 1_000);
        assert!(r.cs_measured >= 1_000, "{} failed with n=2", algo.name());
        let min = *r.per_node_cs.iter().min().unwrap();
        let max = *r.per_node_cs.iter().max().unwrap();
        assert!(
            min * 3 >= max,
            "{} unfair at n=2: {:?}",
            algo.name(),
            r.per_node_cs
        );
    }
}

#[test]
fn every_algorithm_survives_bounded_model_checking() {
    // The stateful explorer enumerates *every* delivery/timer/CS-completion
    // interleaving (up to the bounds) rather than sampling one schedule per
    // seed, checking mutual exclusion in each reachable state and flagging
    // quiescent starvation on the way. Timer-driven protocols (the arbiter
    // family) have much larger spaces, so they get a tighter state budget;
    // truncated coverage is still a real safety check of everything visited.
    let cfg = |max_states| ExploreConfig {
        max_depth: 14,
        max_states,
        ..ExploreConfig::default()
    };
    let explore =
        |label: &str, result: Result<tokq::simnet::ExploreStats, tokq::simnet::Violation>| {
            let stats = result.unwrap_or_else(|v| panic!("{label}: {v}"));
            // Some spaces are genuinely tiny (Singhal's staircase sends one
            // message here), so the floor is low; what matters is that the
            // search ran to quiescence or its state budget.
            assert!(stats.states_explored > 5, "{label} explored too little");
            assert!(
                stats.quiescent_paths > 0 || stats.truncated,
                "{label} neither quiesced nor exhausted its budget"
            );
        };
    explore(
        "arbiter/basic",
        Explorer::new(cfg(40_000)).check(ArbiterConfig::basic(), 3, &[1, 2]),
    );
    explore(
        "arbiter/starvation-free",
        Explorer::new(cfg(40_000)).check(ArbiterConfig::starvation_free(), 3, &[1, 2]),
    );
    explore(
        "arbiter/fault-tolerant",
        Explorer::new(cfg(40_000)).check(ArbiterConfig::fault_tolerant(), 3, &[1, 2]),
    );
    explore(
        "ricart-agrawala",
        Explorer::new(cfg(200_000)).check(RaConfig, 3, &[0, 1]),
    );
    explore(
        "singhal",
        Explorer::new(cfg(200_000)).check(SinghalConfig, 3, &[0, 1]),
    );
    explore(
        "suzuki-kasami",
        Explorer::new(cfg(200_000)).check(SkConfig::default(), 3, &[1, 2]),
    );
    explore(
        "raymond",
        Explorer::new(cfg(200_000)).check(RaymondConfig::default(), 3, &[1, 2]),
    );
    explore(
        "maekawa",
        Explorer::new(cfg(200_000)).check(MaekawaConfig, 3, &[0, 1]),
    );
    explore(
        "centralized",
        Explorer::new(cfg(200_000)).check(CentralConfig::default(), 3, &[1, 2]),
    );
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        Simulation::build(
            sim(10, 0xFEED),
            ArbiterConfig::basic(),
            Workload::poisson(0.7),
        )
        .run_until_cs(2_000)
    };
    let a = run();
    let b = run();
    assert_eq!(a.messages_total, b.messages_total);
    assert_eq!(a.cs_total, b.cs_total);
    assert_eq!(a.per_node_cs, b.per_node_cs);
    assert_eq!(a.messages_by_kind, b.messages_by_kind);
    assert_eq!(a.sim_end_secs, b.sim_end_secs);
}

#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        Simulation::build(
            sim(10, seed),
            ArbiterConfig::basic(),
            Workload::poisson(0.7),
        )
        .run_until_cs(2_000)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(
        a.sim_end_secs, b.sim_end_secs,
        "independent seeds should produce different trajectories"
    );
}
