//! Failure recovery (paper §6) under deterministic and stochastic faults.
//!
//! All runs use the fault-tolerant configuration; the simulator's online
//! safety check guarantees that surviving a run means mutual exclusion
//! held throughout it.

use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::NodeId;
use tokq::simnet::{FaultPlan, SimConfig, SimTime, Simulation, Unreliability};
use tokq::workload::Workload;

fn ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig::default()),
        ..ArbiterConfig::basic()
    }
}

fn sim(seed: u64) -> SimConfig {
    let mut c = SimConfig::paper_defaults(10).with_seed(seed);
    c.warmup_cs = 50;
    c.max_sim_time = Some(SimTime::from_secs_f64(500_000.0));
    c
}

#[test]
fn token_drop_is_detected_and_regenerated() {
    let r = Simulation::build(sim(1), ft(), Workload::poisson(0.5))
        .with_faults(FaultPlan::none().drop_token(SimTime::from_secs_f64(20.0), 1))
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000, "run stalled after token drop");
    assert_eq!(
        r.note_count("token_regenerated"),
        1,
        "exactly one regeneration expected: {:?}",
        r.notes
    );
    assert!(r.note_count("invalidation_started") >= 1);
}

#[test]
fn repeated_token_drops_each_recover() {
    let plan = FaultPlan::none()
        .drop_token(SimTime::from_secs_f64(20.0), 1)
        .drop_token(SimTime::from_secs_f64(60.0), 1)
        .drop_token(SimTime::from_secs_f64(100.0), 1)
        .drop_token(SimTime::from_secs_f64(140.0), 1);
    let r = Simulation::build(sim(2), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000);
    assert_eq!(r.note_count("token_regenerated"), 4, "{:?}", r.notes);
}

#[test]
fn non_token_holder_crash_is_harmless() {
    // Paper §6: "The failure of nodes that are not scheduled to receive
    // the token does not impede the successful execution".
    let plan = FaultPlan::none()
        .crash(NodeId(7), SimTime::from_secs_f64(15.0))
        .recover(NodeId(7), SimTime::from_secs_f64(600.0));
    let r = Simulation::build(sim(3), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000);
}

#[test]
fn crashed_arbiter_is_taken_over_or_token_regenerated() {
    // Crash the initial arbiter before it ever hands over (t = 50 ms, no
    // request has been serviced yet): nobody is watching it, so the
    // requesters' silent-retry escalation must probe it, take over, and
    // regenerate the token.
    let plan = FaultPlan::none()
        .crash(NodeId(0), SimTime::from_secs_f64(0.05))
        .recover(NodeId(0), SimTime::from_secs_f64(120.0));
    let r = Simulation::build(sim(4), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000, "deadlocked after arbiter crash");
    assert!(
        r.note_count("arbiter_takeover") >= 1,
        "a takeover must have fired: {:?}",
        r.notes
    );
    assert!(
        r.note_count("token_regenerated") >= 1,
        "the crashed token must be regenerated: {:?}",
        r.notes
    );
}

#[test]
fn crash_of_current_token_holder_recovers() {
    // Crash a node likely to hold the token (the system is saturated, so
    // every instant someone holds it); its in-flight critical section dies
    // with it and the token must be regenerated.
    let plan = FaultPlan::none().crash(NodeId(5), SimTime::from_secs_f64(30.1234));
    let r = Simulation::build(sim(5), ft(), Workload::saturating())
        .with_faults(plan)
        .run_until_cs(3_000);
    assert!(r.cs_measured >= 3_000);
}

#[test]
fn survives_sustained_message_loss_with_recovery() {
    // 2% of every message silently dropped, forever. Recovery timeouts and
    // retransmissions must keep grinding forward.
    let mut cfg = sim(6);
    cfg.unreliability = Unreliability::lossy(0.02);
    let r = Simulation::build(cfg, ft(), Workload::poisson(0.5)).run_until_cs(1_500);
    assert!(
        r.cs_measured >= 1_500,
        "stalled under 2% loss: only {} CS",
        r.cs_measured
    );
}

#[test]
fn survives_loss_burst_window() {
    use tokq::simnet::Fault;
    // A 10-second window where 40% of messages vanish.
    let plan = FaultPlan::none().with(Fault::LossWindow {
        from: SimTime::from_secs_f64(20.0),
        until: SimTime::from_secs_f64(30.0),
        prob: 0.4,
    });
    let r = Simulation::build(sim(7), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000);
}

#[test]
fn triple_fault_crash_drop_and_loss() {
    use tokq::simnet::Fault;
    let plan = FaultPlan::none()
        .crash(NodeId(2), SimTime::from_secs_f64(25.0))
        .recover(NodeId(2), SimTime::from_secs_f64(70.0))
        .drop_token(SimTime::from_secs_f64(40.0), 1)
        .with(Fault::LossWindow {
            from: SimTime::from_secs_f64(50.0),
            until: SimTime::from_secs_f64(55.0),
            prob: 0.3,
        });
    let r = Simulation::build(sim(8), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(1_500);
    assert!(r.cs_measured >= 1_500, "triple fault broke liveness");
}

#[test]
fn recovered_node_rejoins_and_gets_served() {
    let plan = FaultPlan::none()
        .crash(NodeId(4), SimTime::from_secs_f64(10.0))
        .recover(NodeId(4), SimTime::from_secs_f64(40.0));
    let r = Simulation::build(sim(9), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(4_000);
    // Node 4 keeps generating load after recovery and must be served.
    assert!(
        r.per_node_cs[4] > 0,
        "recovered node never completed a CS: {:?}",
        r.per_node_cs
    );
}

#[test]
fn starvation_free_variant_also_recovers() {
    let cfg = ArbiterConfig::fault_tolerant();
    let plan = FaultPlan::none().drop_token(SimTime::from_secs_f64(20.0), 1);
    let r = Simulation::build(sim(10), cfg, Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000);
    assert_eq!(r.note_count("token_regenerated"), 1);
}

#[test]
fn basic_algorithm_without_recovery_stalls_on_token_loss() {
    // Negative control: the *basic* configuration has no token-loss
    // detection, so a dropped token must halt all progress.
    let mut cfg = sim(11);
    cfg.max_sim_time = Some(SimTime::from_secs_f64(2_000.0));
    let r = Simulation::build(cfg, ArbiterConfig::basic(), Workload::poisson(0.5))
        .with_faults(FaultPlan::none().drop_token(SimTime::from_secs_f64(20.0), 1))
        .run_until_cs(100_000);
    assert!(
        r.cs_measured < 100_000,
        "the basic algorithm should not survive token loss"
    );
}

#[test]
fn majority_side_survives_a_partition_and_heals() {
    // Nodes 8 and 9 are cut off for 40 seconds. The majority side keeps
    // granting (the token circulates among believers it can reach, and
    // recovery regenerates it if it was stranded on the island); after the
    // heal, the islanders get served again.
    let plan = FaultPlan::none().partition(
        vec![NodeId(8), NodeId(9)],
        SimTime::from_secs_f64(20.0),
        SimTime::from_secs_f64(60.0),
    );
    let r = Simulation::build(sim(12), ft(), Workload::poisson(0.5))
        .with_faults(plan)
        .run_until_cs(4_000);
    assert!(r.cs_measured >= 4_000, "partition broke liveness");
    assert!(
        r.per_node_cs[8] > 0 && r.per_node_cs[9] > 0,
        "islanders must be served after the heal: {:?}",
        r.per_node_cs
    );
}

#[test]
fn token_stranded_on_island_is_regenerated() {
    // Partition the initial arbiter (which holds the token at t=1) away:
    // the majority must detect the loss and regenerate. The islander stays
    // quiet — the paper's §6 fault model is crash-stop ("nodes that do not
    // respond are assumed to have failed"), so a *live and locking* token
    // holder behind a partition is outside the algorithm's guarantees
    // (DESIGN.md documents this limitation; it applies equally to the
    // paper's original protocol).
    let plan = FaultPlan::none().partition(
        vec![NodeId(0)],
        SimTime::from_secs_f64(0.05),
        SimTime::from_secs_f64(400.0),
    );
    let r = Simulation::build(sim(13), ft(), Workload::only_nodes((1..10).collect(), 0.5))
        .with_faults(plan)
        .run_until_cs(2_000);
    assert!(r.cs_measured >= 2_000, "stranded token never replaced");
    assert!(r.note_count("token_regenerated") >= 1, "{:?}", r.notes);
}

#[test]
fn handover_repair_survives_crash_of_the_elected_arbiter() {
    // Wedge found by the chaos soak harness (replay: chaos seed 2000): a
    // node elected by NEW-ARBITER round R crashes before sealing its own
    // first broadcast, then recovers. `on_crash` keeps `last_round`, so a
    // watcher's point-to-point re-send of the *same* round-R broadcast
    // (paper §6 lost-handover repair) was discarded as stale — while the
    // recovered node kept answering probes, so the probe-timeout takeover
    // never fired either. Every requester then looped PROBE -> PROBE-ACK
    // -> NEW-ARBITER forever. Drive the state machine through that exact
    // sequence and require the repair to be accepted.
    use tokq::protocol::arbiter::{ArbiterMsg, ArbiterNode};
    use tokq::protocol::qlist::QList;
    use tokq::protocol::{Action, Input, Note, Protocol};

    let mut node = ArbiterNode::new(NodeId(1), 3, ft());
    node.step(Input::Start);

    let election = ArbiterMsg::NewArbiter {
        arbiter: NodeId(1),
        q: QList::new(),
        prev: NodeId(0),
        round: 5,
        counter: 1,
        epoch: 0,
        monitor: None,
    };
    let out = node.step(Input::Deliver {
        from: NodeId(0),
        msg: election.clone(),
    });
    assert!(
        out.iter()
            .any(|a| matches!(a, Action::Note(Note::BecameArbiter))),
        "the election broadcast must seat the arbiter: {out:?}"
    );

    node.step(Input::Crash);
    node.step(Input::Recover);

    // The recovered node answers probes as a healthy non-arbiter...
    let out = node.step(Input::Deliver {
        from: NodeId(0),
        msg: ArbiterMsg::Probe,
    });
    assert!(
        out.iter().any(|a| matches!(
            a,
            Action::Send {
                msg: ArbiterMsg::ProbeAck { arbiter: false },
                ..
            }
        )),
        "a recovered node must report it lost the arbiter role: {out:?}"
    );

    // ...so the watcher re-sends the round-5 election verbatim. The node
    // must accept the repair instead of discarding it as a stale round.
    let out = node.step(Input::Deliver {
        from: NodeId(0),
        msg: election,
    });
    assert!(
        out.iter()
            .any(|a| matches!(a, Action::Note(Note::BecameArbiter))),
        "the lost-handover repair must re-seat the arbiter: {out:?}"
    );
}
