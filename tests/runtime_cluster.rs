//! End-to-end tests of the threaded runtime (`tokq-core`): real threads,
//! real timers, encoded frames, delayed/lossy transport, RAII guards.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokq::core::{Cluster, LockError, NetOptions};
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::TimeDelta;

fn quick() -> ArbiterConfig {
    ArbiterConfig::basic()
        .with_t_collect(TimeDelta::from_millis(1))
        .with_t_forward(TimeDelta::from_millis(1))
}

fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        ..quick()
    }
}

/// Asserts no two guards coexist by counting concurrent holders.
fn hammer(cluster: &Cluster, rounds: u32) -> u64 {
    let inside = Arc::new(AtomicU32::new(0));
    let total = Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for node in 0..cluster.len() {
        let handle = cluster.handle(node).expect("node in range");
        let inside = Arc::clone(&inside);
        let total = Arc::clone(&total);
        joins.push(std::thread::spawn(move || {
            for _ in 0..rounds {
                let guard = handle.lock().expect("granted");
                let was = inside.fetch_add(1, Ordering::SeqCst);
                assert_eq!(was, 0, "mutual exclusion violated on the runtime");
                std::thread::sleep(Duration::from_micros(100));
                inside.fetch_sub(1, Ordering::SeqCst);
                total.fetch_add(1, Ordering::SeqCst);
                drop(guard);
            }
        }));
    }
    for j in joins {
        j.join().expect("worker panicked");
    }
    total.load(Ordering::SeqCst)
}

#[test]
fn mutual_exclusion_on_instant_network() {
    let cluster = Cluster::builder(5).config(quick()).build();
    let metrics = cluster.metrics_handle();
    assert_eq!(hammer(&cluster, 20), 100);
    cluster.shutdown(); // joins node threads: all releases processed
    assert_eq!(metrics.cs_completed_total(), 100);
}

#[test]
fn mutual_exclusion_with_delay_and_jitter() {
    let cluster = Cluster::builder(4)
        .config(quick())
        .net(NetOptions::delayed(
            Duration::from_millis(1),
            Duration::from_millis(1),
        ))
        .build();
    assert_eq!(hammer(&cluster, 10), 40);
    cluster.shutdown();
}

#[test]
fn mutual_exclusion_with_lossy_network_and_recovery() {
    let cluster = Cluster::builder(4)
        .config(quick_ft())
        .net(
            NetOptions::delayed(Duration::from_micros(300), Duration::from_micros(200)).lossy(0.01),
        )
        .build();
    assert_eq!(hammer(&cluster, 10), 40);
    cluster.shutdown();
}

#[test]
fn reentrant_sequential_locking_from_one_handle() {
    let cluster = Cluster::builder(3).config(quick()).build();
    let metrics = cluster.metrics_handle();
    let h = cluster.handle(2).expect("node in range");
    for _ in 0..50 {
        let g = h.lock().expect("granted");
        drop(g);
    }
    cluster.shutdown();
    assert_eq!(metrics.cs_completed_total(), 50);
}

#[test]
fn competing_threads_on_the_same_node_queue_up() {
    let cluster = Arc::new(Cluster::builder(2).config(quick()).build());
    let inside = Arc::new(AtomicU32::new(0));
    let mut joins = Vec::new();
    for _ in 0..4 {
        let handle = cluster.handle(0).expect("node in range");
        let inside = Arc::clone(&inside);
        joins.push(std::thread::spawn(move || {
            for _ in 0..10 {
                let _g = handle.lock().expect("granted");
                let was = inside.fetch_add(1, Ordering::SeqCst);
                assert_eq!(was, 0);
                inside.fetch_sub(1, Ordering::SeqCst);
            }
        }));
    }
    for j in joins {
        j.join().expect("worker");
    }
    let cluster = Arc::try_unwrap(cluster).expect("workers joined");
    let metrics = cluster.metrics_handle();
    cluster.shutdown();
    assert_eq!(metrics.cs_completed_total(), 40);
}

#[test]
fn try_lock_for_times_out_while_lock_is_held() {
    let cluster = Cluster::builder(2).config(quick()).build();
    let a = cluster.handle(0).expect("node in range");
    let b = cluster.handle(1).expect("node in range");
    let g = a.lock().expect("granted");
    let start = std::time::Instant::now();
    assert_eq!(
        b.try_lock_for(Duration::from_millis(80)).err(),
        Some(LockError::Timeout)
    );
    assert!(start.elapsed() >= Duration::from_millis(75));
    drop(g);
    assert!(b.try_lock_for(Duration::from_secs(10)).is_ok());
    cluster.shutdown();
}

#[test]
fn crash_and_recovery_on_the_runtime() {
    let cluster = Arc::new(Cluster::builder(4).config(quick_ft()).build());
    // Warm up: everybody locks once.
    for node in 0..4 {
        let g = cluster
            .handle(node)
            .expect("in range")
            .lock()
            .expect("granted");
        drop(g);
    }
    // Crash node 0 (initial arbiter); the others must still acquire.
    cluster.crash(0).expect("crash node 0");
    let h = cluster.handle(2).expect("node in range");
    let got = h.try_lock_for(Duration::from_secs(20));
    assert!(got.is_ok(), "lock unavailable after crashing node 0");
    drop(got);
    // Recover node 0 and let it lock again.
    cluster.recover(0).expect("recover node 0");
    let g = cluster
        .handle(0)
        .expect("node in range")
        .try_lock_for(Duration::from_secs(20))
        .expect("recovered node must reacquire");
    drop(g);
    match Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("outstanding refs"),
    }
}

#[test]
fn metrics_reflect_protocol_traffic() {
    let cluster = Cluster::builder(3).config(quick()).build();
    let metrics = cluster.metrics_handle();
    for node in 0..3 {
        let g = cluster
            .handle(node)
            .expect("in range")
            .lock()
            .expect("granted");
        drop(g);
    }
    cluster.shutdown();
    assert_eq!(metrics.cs_completed_total(), 3);
    let kinds = metrics.by_kind();
    assert!(kinds.contains_key("PRIVILEGE"), "kinds: {kinds:?}");
    assert!(kinds.contains_key("NEW-ARBITER"), "kinds: {kinds:?}");
}

#[test]
fn guard_drop_after_cluster_shutdown_is_harmless() {
    let cluster = Cluster::builder(2).config(quick()).build();
    let g = cluster
        .handle(0)
        .expect("in range")
        .lock()
        .expect("granted");
    cluster.shutdown();
    drop(g); // must not panic
}

#[test]
fn mutual_exclusion_over_real_tcp_sockets() {
    let cluster = Cluster::builder(4).config(quick_ft()).tcp().build();
    let metrics = cluster.metrics_handle();
    assert_eq!(hammer(&cluster, 10), 40);
    cluster.shutdown();
    assert_eq!(metrics.cs_completed_total(), 40);
    // Real frames moved: the PRIVILEGE counter is non-zero.
    assert!(metrics.by_kind().contains_key("PRIVILEGE"));
}

#[test]
fn tcp_cluster_survives_crash_and_recovery() {
    let cluster = Cluster::builder(3).config(quick_ft()).tcp().build();
    let g = cluster
        .handle(1)
        .expect("in range")
        .lock()
        .expect("granted");
    drop(g);
    cluster.crash(0).expect("crash node 0");
    let got = cluster
        .handle(2)
        .expect("in range")
        .try_lock_for(Duration::from_secs(20));
    assert!(got.is_ok(), "lock unavailable after crash over TCP");
    drop(got);
    cluster.recover(0).expect("recover node 0");
    let g = cluster
        .handle(0)
        .expect("in range")
        .try_lock_for(Duration::from_secs(20))
        .expect("recovered node reacquires over TCP");
    drop(g);
    cluster.shutdown();
}
