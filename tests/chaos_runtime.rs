//! Chaos soaking of the live runtime: seeded randomized fault schedules
//! (crash/recover, partition/heal, loss bursts) against real clusters,
//! with the online epoch-tagged safety checker asserting mutual exclusion
//! throughout. A failed soak prints its seed — re-running with that seed
//! replays the identical fault schedule.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use proptest::prelude::*;
use tokq::core::chaos::{schedule, soak, ChaosOp, SoakOptions};
use tokq::core::{Cluster, FaultError, LockError, NetOptions, ResourceId};
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::TimeDelta;

fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        request_retry: Some(TimeDelta::from_millis(250)),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(1))
            .with_t_forward(TimeDelta::from_millis(1))
    }
}

/// First seed at or after `start` whose schedule mixes all three fault
/// kinds (crash + partition + loss), so every soak below is a genuine
/// combined-fault run, not whatever one seed happens to roll.
fn full_mix_seed(start: u64) -> u64 {
    (start..start + 1_000)
        .find(|&s| {
            let plan = schedule(s, 5, 40);
            plan.iter().any(|o| matches!(o, ChaosOp::Crash(_)))
                && plan.iter().any(|o| matches!(o, ChaosOp::Partition(_)))
                && plan.iter().any(|o| matches!(o, ChaosOp::LossBurst(_)))
        })
        .expect("a crash+partition+loss seed within 1000 tries")
}

/// Soak runs are wall-clock budgeted (a target entry count under a time
/// limit), so two soaks racing for the same cores starve each other into
/// spurious liveness failures. Serialize them within this binary; the
/// cheap tests still run in parallel around them.
fn soak_slot() -> MutexGuard<'static, ()> {
    static SLOT: Mutex<()> = Mutex::new(());
    SLOT.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn run_soak(seed: u64, tcp: bool) {
    let _slot = soak_slot();
    let mut opts = SoakOptions::quick(5, seed);
    opts.tcp = tcp;
    let report = soak(&opts);
    assert!(
        report.violations.is_empty(),
        "mutual exclusion violated — replay with seed {}: {:?}\nschedule: {:?}",
        report.seed,
        report.violations,
        report.ops_applied,
    );
    assert!(
        !report.timed_out && report.entries >= 500,
        "soak stalled — replay with seed {}: {}",
        report.seed,
        report.summary(),
    );
    assert!(
        report.crashes >= 1,
        "schedule had no crash: {}",
        report.summary()
    );
    assert!(
        report.partitions >= 1,
        "schedule had no partition: {}",
        report.summary()
    );
    assert!(
        report.loss_bursts >= 1,
        "schedule had no loss burst: {}",
        report.summary()
    );
    assert_eq!(
        report.final_outbox_depth,
        0,
        "a healed mesh must drain every parked frame: {}",
        report.summary()
    );
}

#[test]
fn chaos_soak_channel_schedule_a() {
    run_soak(full_mix_seed(1), false);
}

#[test]
fn chaos_soak_channel_schedule_b() {
    run_soak(full_mix_seed(1_000), false);
}

#[test]
fn chaos_soak_tcp_schedule_c() {
    run_soak(full_mix_seed(2_000), true);
}

#[test]
fn healed_tcp_partition_drains_retry_queue() {
    let cluster = Cluster::builder(3).config(quick_ft()).tcp().build();
    let metrics = cluster.metrics_handle();
    // Healthy baseline: the lock works over TCP.
    drop(
        cluster
            .handle(0)
            .expect("in range")
            .lock()
            .expect("granted"),
    );

    // Cut node 2 off. Its REQUESTs to the arbiter (and anything sent back)
    // park in the senders' retry queues instead of being abandoned.
    cluster
        .partition(&[&[0, 1], &[2]])
        .expect("valid partition groups");
    let h2 = cluster.handle(2).expect("in range");
    assert_eq!(
        h2.try_lock_for(Duration::from_millis(300)).err(),
        Some(LockError::Timeout),
        "a partitioned node must not acquire the lock"
    );
    // The majority keeps working through the partition.
    drop(
        cluster
            .handle(1)
            .expect("in range")
            .lock()
            .expect("granted"),
    );

    cluster.heal();
    // After the heal the parked frames drain and the minority node's
    // (re-tried) request goes through.
    let guard = h2
        .try_lock_for(Duration::from_secs(10))
        .expect("healed node must acquire the lock");
    drop(guard);

    assert!(
        metrics.frames_requeued() > 0,
        "partition should have parked frames for retry"
    );
    assert_eq!(
        metrics.frames_abandoned(),
        0,
        "no frame may be abandoned: the retry queue must absorb the partition"
    );
    // The healed mesh must also flush the outboxes themselves: poll the
    // depth gauge down to zero (the writers drain asynchronously).
    let drain_deadline = std::time::Instant::now() + Duration::from_secs(5);
    while metrics.outbox_depth() > 0 && std::time::Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(
        metrics.outbox_depth(),
        0,
        "healed outboxes must drain to empty"
    );
    cluster.shutdown();
}

#[test]
fn crash_recover_out_of_range_are_typed_errors() {
    let cluster = Cluster::builder(2).config(quick_ft()).build();
    assert_eq!(
        cluster.crash(7),
        Err(FaultError::NoSuchNode { node: 7, nodes: 2 }),
        "out-of-range crash must refuse"
    );
    assert_eq!(
        cluster.recover(7),
        Err(FaultError::NoSuchNode { node: 7, nodes: 2 }),
        "out-of-range recover must refuse"
    );
    assert!(cluster.crash(1).is_ok());
    assert!(cluster.recover(1).is_ok());
    // The cluster is still functional after all of the above.
    drop(
        cluster
            .handle(0)
            .expect("in range")
            .lock()
            .expect("granted"),
    );
    cluster.shutdown();
}

#[test]
fn waiter_survives_crash_and_rerequests_on_recovery() {
    let cluster = Cluster::builder(2).config(quick_ft()).build();
    let metrics = cluster.metrics_handle();
    // Node 1 holds the lock so node 0's request stays pending.
    let g1 = cluster
        .handle(1)
        .expect("in range")
        .lock()
        .expect("granted");
    let h0 = cluster.handle(0).expect("in range");
    let waiter = std::thread::spawn(move || h0.try_lock_for(Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(100)); // request reaches node 0
    cluster.crash(0).expect("crash node 0");
    std::thread::sleep(Duration::from_millis(50));
    // re-requests on behalf of the surviving waiter
    cluster.recover(0).expect("recover node 0");
    std::thread::sleep(Duration::from_millis(100));
    drop(g1);
    let g0 = waiter.join().expect("waiter thread");
    assert!(g0.is_ok(), "crash-surviving waiter must eventually acquire");
    drop(g0);
    cluster.shutdown();
    assert!(
        metrics.cs_rerequests_total() >= 1,
        "recovery re-request must be counted separately (got {})",
        metrics.cs_rerequests_total()
    );
    assert_eq!(
        metrics.cs_requests_total(),
        2,
        "only the two fresh requests count as fresh demand"
    );
}

#[test]
fn stale_release_after_crash_is_ignored() {
    let cluster = Cluster::builder(2).config(quick_ft()).build();
    let metrics = cluster.metrics_handle();
    let guard = cluster
        .handle(0)
        .expect("in range")
        .lock()
        .expect("granted");
    // The guard's critical section dies with the node.
    cluster.crash(0).expect("crash node 0");
    std::thread::sleep(Duration::from_millis(50));
    cluster.recover(0).expect("recover node 0");
    std::thread::sleep(Duration::from_millis(50));
    drop(guard); // generation-tagged: must NOT complete anybody's CS
    std::thread::sleep(Duration::from_millis(100));
    cluster.shutdown();
    assert_eq!(
        metrics.notes().get("stale_release_ignored").copied(),
        Some(1),
        "the pre-crash guard's release must be recognized as stale"
    );
    assert_eq!(
        metrics.cs_completed_total(),
        0,
        "a stale release must not count as a completed critical section"
    );
}

/// Resource names guaranteed to land on `count` distinct shards of a
/// `shards`-shard cluster (the stable FNV mapping makes this search
/// deterministic).
fn resources_on_distinct_shards(shards: u16, count: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for i in 0u64.. {
        let name = format!("res/{i}");
        if seen.insert(ResourceId::new(name.as_str()).shard(shards)) {
            names.push(name);
            if names.len() == count {
                break;
            }
        }
    }
    names
}

/// Tentpole soak: 5 nodes x 4 resources on 4 distinct shards, one
/// `SafetyChecker` per shard, full crash+partition+loss schedule.
#[test]
fn chaos_soak_sharded_five_nodes_four_resources() {
    let _slot = soak_slot();
    let opts = SoakOptions::sharded(
        5,
        full_mix_seed(3_000),
        4,
        resources_on_distinct_shards(4, 4),
    );
    let report = soak(&opts);
    assert!(
        report.violations.is_empty(),
        "per-shard mutual exclusion violated — replay with seed {}: {:?}\nschedule: {:?}",
        report.seed,
        report.violations,
        report.ops_applied,
    );
    assert!(
        !report.timed_out && report.entries >= 500,
        "sharded soak stalled — replay with seed {}: {}",
        report.seed,
        report.summary(),
    );
    assert_eq!(report.entries_by_shard.len(), 4);
    for (shard, &entries) in report.entries_by_shard.iter().enumerate() {
        assert!(
            entries > 0,
            "shard {shard} made no clean entries: {:?}",
            report.entries_by_shard
        );
    }
}

/// Shard independence: a partition stranding shard A's token must not
/// block shard B, and shard A recovers once healed.
#[test]
fn partition_stalling_one_shard_does_not_block_another() {
    let _slot = soak_slot();
    // Retried requests but no token regeneration: a stranded token stays
    // stranded for the duration of the partition, making the stall
    // deterministic.
    let config = ArbiterConfig {
        request_retry: Some(TimeDelta::from_millis(100)),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(1))
            .with_t_forward(TimeDelta::from_millis(1))
    };
    let cluster = Cluster::builder(5).shards(4).config(config).build();
    let names = resources_on_distinct_shards(4, 2);
    let (res_a, res_b) = (names[0].as_str(), names[1].as_str());

    // Node 4 takes shard A's token and keeps it...
    let a4 = cluster.resource_on(4, res_a).expect("in range");
    let ga = a4.lock().expect("granted");
    // ...then gets cut off with the token stranded on the minority side.
    cluster
        .partition(&[&[0, 1, 2], &[3, 4]])
        .expect("valid groups");

    // Shard B keeps granting to the majority throughout the partition.
    let b0 = cluster.resource_on(0, res_b).expect("in range");
    for _ in 0..5 {
        drop(
            b0.try_lock_for(Duration::from_secs(10))
                .expect("shard B must progress while shard A is stranded"),
        );
    }
    // Shard A, meanwhile, is stalled for the majority.
    let a0 = cluster.resource_on(0, res_a).expect("in range");
    assert_eq!(
        a0.try_lock_for(Duration::from_millis(300)).err(),
        Some(LockError::Timeout),
        "shard A's token is stranded behind the partition"
    );

    cluster.heal();
    drop(ga);
    // Healed, shard A grants again (the retried request goes through).
    drop(
        a0.try_lock_for(Duration::from_secs(20))
            .expect("shard A must recover once healed"),
    );
    cluster.shutdown();
}

proptest! {
    // Whole live clusters per case: keep the case count low and the runs
    // short — the three dedicated soaks above carry the volume.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite: configured network loss + partition/heal schedules never
    /// violate the online safety checker on a 3-node in-process cluster.
    /// Ambient `NetOptions` loss persists for the whole run (heal clears
    /// only injected panel faults), so the progress bar is deliberately
    /// modest — safety is the property under test.
    #[test]
    fn lossy_partition_heal_schedules_stay_safe(
        seed in 0u64..1_000,
        loss in 0.0f64..0.10,
    ) {
        let mut opts = SoakOptions::quick(3, seed);
        opts.ops = 12;
        opts.target_entries = 40;
        opts.time_limit = Duration::from_secs(30);
        opts.net = NetOptions::delayed(
            Duration::from_micros(200),
            Duration::from_micros(100),
        )
        .lossy(loss);
        // Ambient loss makes token handoffs genuinely slow, so double the
        // §6 recovery timeouts: the quick() calibration assumes a clean
        // network, and under loss it falsely suspects live holders and
        // burns the run in recovery churn (same synchrony-assumption
        // scaling that `SoakOptions::sharded` documents).
        if let Some(rec) = opts.config.recovery.as_mut() {
            rec.token_wait_base = TimeDelta::from_millis(200);
            rec.token_wait_per_position = TimeDelta::from_millis(50);
            rec.enquiry_timeout = TimeDelta::from_millis(100);
            rec.handover_watch = TimeDelta::from_millis(400);
            rec.probe_timeout = TimeDelta::from_millis(100);
        }
        let _slot = soak_slot();
        let report = soak(&opts);
        prop_assert!(
            report.violations.is_empty(),
            "violation at seed {} loss {loss}: {:?}",
            report.seed,
            report.violations
        );
        prop_assert!(
            report.entries >= 20,
            "no meaningful progress at seed {} loss {loss}: {}",
            report.seed,
            report.summary()
        );
    }
}
