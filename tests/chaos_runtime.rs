//! Chaos soaking of the live runtime: seeded randomized fault schedules
//! (crash/recover, partition/heal, loss bursts) against real clusters,
//! with the online epoch-tagged safety checker asserting mutual exclusion
//! throughout. A failed soak prints its seed — re-running with that seed
//! replays the identical fault schedule.

use std::time::Duration;

use proptest::prelude::*;
use tokq::core::chaos::{schedule, soak, ChaosOp, SoakOptions};
use tokq::core::{Cluster, NetOptions};
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::TimeDelta;

fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        request_retry: Some(TimeDelta::from_millis(250)),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(1))
            .with_t_forward(TimeDelta::from_millis(1))
    }
}

/// First seed at or after `start` whose schedule mixes all three fault
/// kinds (crash + partition + loss), so every soak below is a genuine
/// combined-fault run, not whatever one seed happens to roll.
fn full_mix_seed(start: u64) -> u64 {
    (start..start + 1_000)
        .find(|&s| {
            let plan = schedule(s, 5, 40);
            plan.iter().any(|o| matches!(o, ChaosOp::Crash(_)))
                && plan.iter().any(|o| matches!(o, ChaosOp::Partition(_)))
                && plan.iter().any(|o| matches!(o, ChaosOp::LossBurst(_)))
        })
        .expect("a crash+partition+loss seed within 1000 tries")
}

fn run_soak(seed: u64, tcp: bool) {
    let mut opts = SoakOptions::quick(5, seed);
    opts.tcp = tcp;
    let report = soak(&opts);
    assert!(
        report.violations.is_empty(),
        "mutual exclusion violated — replay with seed {}: {:?}\nschedule: {:?}",
        report.seed,
        report.violations,
        report.ops_applied,
    );
    assert!(
        !report.timed_out && report.entries >= 500,
        "soak stalled — replay with seed {}: {}",
        report.seed,
        report.summary(),
    );
    assert!(
        report.crashes >= 1,
        "schedule had no crash: {}",
        report.summary()
    );
    assert!(
        report.partitions >= 1,
        "schedule had no partition: {}",
        report.summary()
    );
    assert!(
        report.loss_bursts >= 1,
        "schedule had no loss burst: {}",
        report.summary()
    );
}

#[test]
fn chaos_soak_channel_schedule_a() {
    run_soak(full_mix_seed(1), false);
}

#[test]
fn chaos_soak_channel_schedule_b() {
    run_soak(full_mix_seed(1_000), false);
}

#[test]
fn chaos_soak_tcp_schedule_c() {
    run_soak(full_mix_seed(2_000), true);
}

#[test]
fn healed_tcp_partition_drains_retry_queue() {
    let cluster = Cluster::builder(3).config(quick_ft()).tcp().build();
    let metrics = cluster.metrics_handle();
    // Healthy baseline: the lock works over TCP.
    drop(cluster.handle(0).lock());

    // Cut node 2 off. Its REQUESTs to the arbiter (and anything sent back)
    // park in the senders' retry queues instead of being abandoned.
    cluster.partition(&[&[0, 1], &[2]]);
    let h2 = cluster.handle(2);
    assert!(
        h2.try_lock_for(Duration::from_millis(300)).is_none(),
        "a partitioned node must not acquire the lock"
    );
    // The majority keeps working through the partition.
    drop(cluster.handle(1).lock());

    cluster.heal();
    // After the heal the parked frames drain and the minority node's
    // (re-tried) request goes through.
    let guard = h2
        .try_lock_for(Duration::from_secs(10))
        .expect("healed node must acquire the lock");
    drop(guard);

    assert!(
        metrics.frames_requeued() > 0,
        "partition should have parked frames for retry"
    );
    assert_eq!(
        metrics.frames_abandoned(),
        0,
        "no frame may be abandoned: the retry queue must absorb the partition"
    );
    cluster.shutdown();
}

#[test]
fn crash_recover_out_of_range_are_noops() {
    let cluster = Cluster::builder(2).config(quick_ft()).build();
    assert!(!cluster.crash(7), "out-of-range crash must refuse");
    assert!(!cluster.recover(7), "out-of-range recover must refuse");
    assert!(cluster.crash(1));
    assert!(cluster.recover(1));
    // The cluster is still functional after all of the above.
    drop(cluster.handle(0).lock());
    cluster.shutdown();
}

#[test]
fn waiter_survives_crash_and_rerequests_on_recovery() {
    let cluster = Cluster::builder(2).config(quick_ft()).build();
    let metrics = cluster.metrics_handle();
    // Node 1 holds the lock so node 0's request stays pending.
    let g1 = cluster.handle(1).lock();
    let h0 = cluster.handle(0);
    let waiter = std::thread::spawn(move || h0.try_lock_for(Duration::from_secs(30)));
    std::thread::sleep(Duration::from_millis(100)); // request reaches node 0
    cluster.crash(0);
    std::thread::sleep(Duration::from_millis(50));
    cluster.recover(0); // re-requests on behalf of the surviving waiter
    std::thread::sleep(Duration::from_millis(100));
    drop(g1);
    let g0 = waiter.join().expect("waiter thread");
    assert!(
        g0.is_some(),
        "crash-surviving waiter must eventually acquire"
    );
    drop(g0);
    cluster.shutdown();
    assert!(
        metrics.cs_rerequests_total() >= 1,
        "recovery re-request must be counted separately (got {})",
        metrics.cs_rerequests_total()
    );
    assert_eq!(
        metrics.cs_requests_total(),
        2,
        "only the two fresh requests count as fresh demand"
    );
}

#[test]
fn stale_release_after_crash_is_ignored() {
    let cluster = Cluster::builder(2).config(quick_ft()).build();
    let metrics = cluster.metrics_handle();
    let guard = cluster.handle(0).lock();
    cluster.crash(0); // the guard's critical section dies with the node
    std::thread::sleep(Duration::from_millis(50));
    cluster.recover(0);
    std::thread::sleep(Duration::from_millis(50));
    drop(guard); // generation-tagged: must NOT complete anybody's CS
    std::thread::sleep(Duration::from_millis(100));
    cluster.shutdown();
    assert_eq!(
        metrics.notes().get("stale_release_ignored").copied(),
        Some(1),
        "the pre-crash guard's release must be recognized as stale"
    );
    assert_eq!(
        metrics.cs_completed_total(),
        0,
        "a stale release must not count as a completed critical section"
    );
}

proptest! {
    // Whole live clusters per case: keep the case count low and the runs
    // short — the three dedicated soaks above carry the volume.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Satellite: configured network loss + partition/heal schedules never
    /// violate the online safety checker on a 3-node in-process cluster.
    /// Ambient `NetOptions` loss persists for the whole run (heal clears
    /// only injected panel faults), so the progress bar is deliberately
    /// modest — safety is the property under test.
    #[test]
    fn lossy_partition_heal_schedules_stay_safe(
        seed in 0u64..1_000,
        loss in 0.0f64..0.10,
    ) {
        let mut opts = SoakOptions::quick(3, seed);
        opts.ops = 12;
        opts.target_entries = 40;
        opts.time_limit = Duration::from_secs(15);
        opts.net = NetOptions::delayed(
            Duration::from_micros(200),
            Duration::from_micros(100),
        )
        .lossy(loss);
        let report = soak(&opts);
        prop_assert!(
            report.violations.is_empty(),
            "violation at seed {} loss {loss}: {:?}",
            report.seed,
            report.violations
        );
        prop_assert!(
            report.entries >= 20,
            "no meaningful progress at seed {} loss {loss}: {}",
            report.seed,
            report.summary()
        );
    }
}
