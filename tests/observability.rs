//! The unified observability layer end to end: flight-recorder dumps
//! after induced recovery, span/event sequences, and the JSONL schema
//! shared by the simulator and the threaded runtime.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tokq::obs::{CollectSink, Event, Level, Obs, Source, TraceFilter};
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::TimeDelta;
use tokq::simnet::{FaultPlan, SimConfig, SimTime, Simulation};
use tokq::workload::Workload;

fn ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig::default()),
        ..ArbiterConfig::basic()
    }
}

/// Fault-tolerant config with millisecond-scale phases and recovery
/// timeouts so runtime crash/recovery completes quickly.
fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(2))
            .with_t_forward(TimeDelta::from_millis(2))
    }
}

/// Index of the first event with `name` (panics when absent).
fn first_index(events: &[Event], name: &str) -> usize {
    events
        .iter()
        .position(|e| e.name == name)
        .unwrap_or_else(|| panic!("no `{name}` event in {} records", events.len()))
}

#[test]
fn sim_flight_recorder_captures_recovery_sequence() {
    // Drop the token mid-run: the fault-tolerant protocol must notice
    // (token_warning), run the two-phase invalidation, and regenerate.
    let mut cfg = SimConfig::paper_defaults(10).with_seed(1);
    cfg.warmup_cs = 0;
    cfg.max_sim_time = Some(SimTime::from_secs_f64(500_000.0));

    let obs = Obs::disabled(Source::Sim);
    let recorder = obs.attach_flight_recorder(262_144, Level::Debug);

    let report = Simulation::build(cfg, ft(), Workload::poisson(0.5))
        .with_obs(obs.clone())
        .with_faults(FaultPlan::none().drop_token(SimTime::from_secs_f64(20.0), 1))
        .run_until_cs(500);

    assert!(report.cs_measured >= 500, "run stalled after token drop");
    assert_eq!(
        report.note_count("token_regenerated"),
        1,
        "{:?}",
        report.notes
    );

    // The recorder held every Debug-level event; the recovery transition
    // must appear in causal order: a waiter warns, the arbiter starts the
    // invalidation, then the token is regenerated and a fresh Q-list is
    // sealed so normal operation resumes.
    let events = recorder.snapshot();
    let warning = first_index(&events, "token_warning");
    let invalidation = first_index(&events, "invalidation_started");
    let regenerated = first_index(&events, "token_regenerated");
    assert!(warning < invalidation, "warning after invalidation");
    assert!(
        invalidation < regenerated,
        "invalidation after regeneration"
    );
    assert!(
        events[regenerated..]
            .iter()
            .any(|e| e.name == "qlist_sealed"),
        "no seal after regeneration: operation did not resume"
    );

    // Virtual timestamps are monotone and in the sim clock domain.
    assert!(events.windows(2).all(|w| w[0].ts <= w[1].ts));
    assert!(events.iter().all(|e| e.src == Source::Sim));

    // Every dumped line reparses losslessly (the JSONL schema is total).
    let dump = recorder.dump_jsonl();
    for line in dump.lines() {
        let back = Event::from_jsonl(line).expect("reparse");
        assert_eq!(back.to_jsonl(), line);
    }

    // The sim mirrored grant waits into the same histogram the runtime
    // uses, so latency tables are comparable across the two drivers.
    let grants = obs.registry().snapshot().histograms["span_ns/cs_grant"].count;
    assert!(grants >= report.cs_total, "{grants} < {}", report.cs_total);
}

#[test]
fn runtime_flight_recorder_captures_crash_recover_and_spans() {
    let cluster = tokq::core::Cluster::builder(4)
        .config(quick_ft())
        .flight_recorder(8192, Level::Debug)
        .build();

    let wait = Duration::from_secs(30);
    // Warm up: everybody locks once so every node has joined the rotation
    // before the fault is injected.
    for node in 0..4 {
        let h = cluster.handle(node).expect("in range");
        drop(h.try_lock_for(wait).expect("warmup"));
    }
    let h0 = cluster.handle(0).expect("in range");
    let h1 = cluster.handle(1).expect("in range");
    for _ in 0..3 {
        drop(h0.try_lock_for(wait).expect("h0 grant"));
        drop(h1.try_lock_for(wait).expect("h1 grant"));
    }
    // Induce the recovery path: node 2 crashes, the others keep working,
    // node 2 comes back and locks again.
    cluster.crash(2).expect("crash node 2");
    for _ in 0..3 {
        drop(h0.try_lock_for(wait).expect("grant while node 2 down"));
    }
    cluster.recover(2).expect("recover node 2");
    // Keep lock traffic flowing while node 2 rejoins: the recovered node
    // re-learns the current arbiter from NEW-ARBITER broadcasts, which only
    // happen while critical sections are being granted.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = Arc::clone(&stop);
        let h = cluster.handle(0).expect("in range");
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                drop(h.try_lock_for(Duration::from_secs(5)).ok());
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };
    let h2 = cluster.handle(2).expect("in range");
    let got = h2.try_lock_for(wait);
    stop.store(true, Ordering::Relaxed);
    if got.is_err() {
        let dump = cluster.flight_recorder().expect("recorder").dump_jsonl();
        let tail: Vec<&str> = dump.lines().rev().take(60).collect();
        panic!("grant after recovery timed out; last events:\n{}", {
            let mut t = tail;
            t.reverse();
            t.join("\n")
        });
    }
    drop(got);
    traffic.join().expect("traffic thread");

    let recorder = cluster.flight_recorder().expect("recorder attached");
    cluster.shutdown();

    let events = recorder.snapshot();
    let crashed = first_index(&events, "crashed");
    let recovered = first_index(&events, "recovered");
    assert!(crashed < recovered, "crash must precede recovery");
    assert_eq!(events[crashed].node, Some(2));
    assert_eq!(events[recovered].node, Some(2));
    // Work continued between the two: grants happened in the gap.
    assert!(
        events[crashed..recovered]
            .iter()
            .any(|e| e.name == "cs_granted"),
        "no grants while node 2 was down"
    );
    assert!(
        events[recovered..]
            .iter()
            .any(|e| e.name == "cs_granted" && e.node == Some(2)),
        "node 2 never got the lock after recovering"
    );

    // The arbiter phases show up as spans: every close pairs with an
    // earlier open naming the same span.
    let opens = events.iter().filter(|e| e.name == "span_open").count();
    let closes = events.iter().filter(|e| e.name == "span_close").count();
    assert!(opens > 0, "no spans recorded");
    assert!(closes <= opens);
    assert!(
        events.iter().any(|e| e.name == "span_open"
            && e.fields
                .iter()
                .any(|(k, v)| k == "span" && v.as_str() == Some("request_collection"))),
        "request_collection span missing"
    );
}

#[test]
fn sim_and_runtime_jsonl_schemas_are_compatible() {
    // Simulator side: stream everything at Debug into a collecting sink.
    let obs = Obs::with_filter(Source::Sim, TraceFilter::with_default(Level::Debug));
    let sink = CollectSink::new();
    obs.add_sink(sink.clone());
    let mut cfg = SimConfig::paper_defaults(3).with_seed(7);
    cfg.warmup_cs = 0;
    let _ = Simulation::build(cfg, ft(), Workload::poisson(1.0))
        .with_obs(obs)
        .run_until_cs(30);
    let sim_events = sink.events();
    assert!(!sim_events.is_empty());

    // Runtime side: the same schema out of a real threaded cluster.
    let cluster = tokq::core::Cluster::builder(3)
        .config(quick_ft())
        .flight_recorder(4096, Level::Debug)
        .build();
    for node in 0..3 {
        let h = cluster.handle(node).expect("in range");
        drop(h.try_lock_for(Duration::from_secs(30)).expect("granted"));
    }
    let recorder = cluster.flight_recorder().expect("recorder");
    cluster.shutdown();
    let rt_events = recorder.snapshot();
    assert!(!rt_events.is_empty());

    // Both sides must speak the same vocabulary for the shared lifecycle
    // events, distinguished only by the src stamp.
    for name in ["cs_granted", "cs_released"] {
        assert!(
            sim_events.iter().any(|e| e.name == name),
            "sim lacks {name}"
        );
        assert!(
            rt_events.iter().any(|e| e.name == name),
            "runtime lacks {name}"
        );
    }
    assert!(sim_events.iter().all(|e| e.src == Source::Sim));
    assert!(rt_events.iter().all(|e| e.src == Source::Runtime));

    // Every line from either driver reparses through the shared schema.
    for e in sim_events.iter().chain(rt_events.iter()) {
        let back = Event::from_jsonl(&e.to_jsonl()).expect("schema");
        assert_eq!(&back, e);
    }
}
