//! Regression coverage for the TCP send pipeline: the protocol thread
//! must never touch a socket, so a dead, unreachable, or saturated peer
//! cannot head-of-line-block traffic to the healthy majority. Also fuzzes
//! the wire codec with corrupt frames (`decode` must fail cleanly, never
//! panic, and never allocate more than the frame itself could hold).

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::Bytes;
use proptest::prelude::*;
use tokq::core::tcp::TcpSender;
use tokq::core::transport::{Envelope, Wire};
use tokq::core::wire::WIRE_VERSION;
use tokq::core::{decode, encode, Cluster, ShardId, WireError};
use tokq::protocol::arbiter::{ArbiterConfig, ArbiterMsg, RecoveryConfig, Token};
use tokq::protocol::qlist::{Entry, QList};
use tokq::protocol::types::{NodeId, Priority, SeqNum, TimeDelta};

/// A listener that accepts nothing, with its kernel accept backlog
/// pre-filled: further connection attempts neither succeed nor fail fast,
/// which is exactly the peer state that used to stall `Wire::send` in a
/// 500 ms inline `connect_timeout` on the protocol thread.
///
/// The parked streams (and the listener) must stay alive for the duration
/// of the test, so they are returned to the caller.
fn black_hole() -> (TcpListener, Vec<TcpStream>, SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut parked = Vec::new();
    for _ in 0..512 {
        match TcpStream::connect_timeout(&addr, Duration::from_millis(50)) {
            Ok(s) => parked.push(s),
            Err(_) => break, // backlog full: the black hole is armed
        }
    }
    (listener, parked, addr)
}

fn frame_payloads(conn: &mut TcpStream, count: usize) -> Vec<Vec<u8>> {
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut header = [0u8; 8];
        conn.read_exact(&mut header).expect("frame header");
        let len = u32::from_be_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let mut payload = vec![0u8; len];
        conn.read_exact(&mut payload).expect("frame payload");
        out.push(payload);
    }
    out
}

/// The head-of-line regression the writer pipeline exists to fix: with
/// one peer a connect black hole, sends to it AND to a healthy peer must
/// all return immediately (enqueue-only), and the healthy peer's frames
/// must flow while the black-hole writer is stuck connecting. The old
/// inline send path ran `connect_timeout` (500 ms) on the calling thread
/// for the first black-hole frame, so the loop below took > 500 ms and
/// this test failed.
#[test]
fn send_path_never_blocks_on_a_black_hole_peer() {
    let (_bh_listener, _parked, bh_addr) = black_hole();
    let healthy_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let healthy_addr = healthy_listener.local_addr().expect("addr");
    let sender = TcpSender::new(vec![healthy_addr, bh_addr]);

    let started = Instant::now();
    for i in 0..20u8 {
        // Black hole first: the old code stalled right here.
        sender.send(Envelope {
            from: NodeId(0),
            to: NodeId(1),
            frame: Bytes::copy_from_slice(&[b'b', i]),
        });
        sender.send(Envelope {
            from: NodeId(0),
            to: NodeId(0),
            frame: Bytes::copy_from_slice(&[b'h', i]),
        });
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_millis(400),
        "40 sends took {elapsed:?}: the send path blocked on the black-hole peer"
    );

    // The healthy link is unaffected: all 20 frames arrive, in order.
    let (mut conn, _) = healthy_listener.accept().expect("healthy accept");
    let payloads = frame_payloads(&mut conn, 20);
    for (i, p) in payloads.iter().enumerate() {
        assert_eq!(p.as_slice(), &[b'h', i as u8], "healthy frames in order");
    }
    // The black-hole frames are parked (queued or in-flight), not lost.
    assert!(
        sender.pending_frames() >= 1,
        "black-hole frames should be pending retry"
    );
    sender.shutdown();
}

fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        request_retry: Some(TimeDelta::from_millis(250)),
        ..ArbiterConfig::basic()
            .with_t_collect(TimeDelta::from_millis(1))
            .with_t_forward(TimeDelta::from_millis(1))
    }
}

/// Grant latency on the healthy majority stays bounded while one cluster
/// member is dead: rotation through the crashed node costs only the
/// protocol's own recovery timeouts (hundreds of milliseconds), never a
/// transport-level stall compounding on the protocol threads.
#[test]
fn healthy_majority_grant_latency_bounded_with_one_peer_crashed() {
    let cluster = Cluster::builder(5).config(quick_ft()).tcp().build();
    cluster.crash(4).expect("crash node 4");
    std::thread::sleep(Duration::from_millis(300)); // let recovery settle

    let mut latencies = Vec::new();
    for _round in 0..30 {
        for node in 0..4 {
            let handle = cluster.handle(node).expect("in range");
            let t0 = Instant::now();
            let guard = handle
                .try_lock_for(Duration::from_secs(10))
                .expect("healthy majority must keep acquiring");
            latencies.push(t0.elapsed());
            drop(guard);
        }
    }
    cluster.shutdown();

    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    let p50 = latencies[latencies.len() / 2];
    assert!(
        p99 < Duration::from_secs(2),
        "grant p99 {p99:?} (p50 {p50:?}) with one peer dead: head-of-line blocking"
    );
}

fn sample_messages() -> Vec<ArbiterMsg> {
    let mut token = Token::initial(4);
    token
        .q
        .push_back(Entry::with_priority(NodeId(2), SeqNum(7), Priority(3)));
    token.last_granted = vec![SeqNum(1), SeqNum(0), SeqNum(6), SeqNum(2)];
    token.round = 42;
    let mut q = QList::new();
    q.push_back(Entry::new(NodeId(1), SeqNum(9)));
    vec![
        ArbiterMsg::Request {
            requester: NodeId(9),
            seq: SeqNum(17),
            priority: Priority(5),
            hops: 2,
        },
        ArbiterMsg::Privilege(token),
        ArbiterMsg::NewArbiter {
            arbiter: NodeId(1),
            q,
            prev: NodeId(0),
            round: 100,
            counter: 7,
            epoch: 2,
            monitor: Some(NodeId(3)),
        },
        ArbiterMsg::Warning { round: 77 },
    ]
}

/// The ~32 GiB allocation bug, pinned: a 12-byte Privilege frame claiming
/// `u32::MAX` token entries must fail as truncated — immediately, without
/// attempting an allocation beyond what the frame could hold. (Before the
/// length clamp this test aborted the process on the allocation attempt.)
#[test]
fn corrupt_length_prefix_fails_fast_without_giant_allocation() {
    let mut frame = vec![WIRE_VERSION, 0, 0, 1]; // shard 0, Privilege
    frame.extend_from_slice(&0u32.to_be_bytes()); // empty qlist
    frame.extend_from_slice(&u32::MAX.to_be_bytes()); // last_granted count
    let started = Instant::now();
    assert_eq!(decode(&frame), Err(WireError::Truncated));
    assert!(
        started.elapsed() < Duration::from_secs(1),
        "corrupt frame must be rejected immediately"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes through `decode`: errors allowed, panics (and
    /// allocations beyond the frame, which would abort under length-bomb
    /// inputs) are not.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = decode(&bytes);
    }

    /// Same, but with a valid version byte so the fuzz reaches the tag
    /// and length-prefix parsing paths instead of bouncing off the
    /// version check.
    #[test]
    fn decode_never_panics_on_versioned_garbage(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let mut frame = vec![WIRE_VERSION];
        frame.extend_from_slice(&bytes);
        let _ = decode(&frame);
    }

    /// Single-byte corruption of well-formed frames: every mutation must
    /// decode cleanly or fail cleanly.
    #[test]
    fn decode_never_panics_on_mutated_valid_frames(
        which in 0usize..4,
        pos in 0usize..512,
        xor in 1usize..256,
    ) {
        let msg = &sample_messages()[which];
        let mut frame = encode(ShardId(3), msg).to_vec();
        let pos = pos % frame.len();
        frame[pos] ^= xor as u8;
        let _ = decode(&frame);
    }
}
