//! Property-based tests over the core data structures and whole-system
//! behaviour.

use proptest::prelude::*;
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::qlist::{Entry, QList};
use tokq::protocol::types::{NodeId, Priority, SeqNum, TimeDelta};
use tokq::simnet::{DelayModel, SimConfig, Simulation, Unreliability};
use tokq::workload::Workload;
use tokq_bench::Algo;

// ---------------------------------------------------------------------
// Q-list: model-based testing against a plain Vec.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum QOp {
    PushBack(u32, u64),
    PushFront(u32, u64),
    PopHead,
    Remove(u32),
}

fn qop_strategy() -> impl Strategy<Value = QOp> {
    prop_oneof![
        (0u32..20, 1u64..50).prop_map(|(n, s)| QOp::PushBack(n, s)),
        (0u32..20, 1u64..50).prop_map(|(n, s)| QOp::PushFront(n, s)),
        Just(QOp::PopHead),
        (0u32..20).prop_map(QOp::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn qlist_matches_vec_model(ops in proptest::collection::vec(qop_strategy(), 0..120)) {
        let mut q = QList::new();
        let mut model: Vec<(u32, u64)> = Vec::new();
        for op in ops {
            match op {
                QOp::PushBack(n, s) => {
                    let added = q.push_back(Entry::new(NodeId(n), SeqNum(s)));
                    let model_has = model.iter().any(|(m, _)| *m == n);
                    prop_assert_eq!(added, !model_has);
                    if !model_has {
                        model.push((n, s));
                    }
                }
                QOp::PushFront(n, s) => {
                    let added = q.push_front(Entry::new(NodeId(n), SeqNum(s)));
                    let model_has = model.iter().any(|(m, _)| *m == n);
                    prop_assert_eq!(added, !model_has);
                    if !model_has {
                        model.insert(0, (n, s));
                    }
                }
                QOp::PopHead => {
                    let got = q.pop_head().map(|e| (e.node.0, e.seq.0));
                    let want = if model.is_empty() { None } else { Some(model.remove(0)) };
                    prop_assert_eq!(got, want);
                }
                QOp::Remove(n) => {
                    let got = q.remove(NodeId(n));
                    let before = model.len();
                    model.retain(|(m, _)| *m != n);
                    prop_assert_eq!(got, before - model.len());
                }
            }
            prop_assert!(q.invariant_holds());
            prop_assert_eq!(q.len(), model.len());
            prop_assert_eq!(q.head().map(|n| n.0), model.first().map(|(n, _)| *n));
            prop_assert_eq!(q.tail().map(|n| n.0), model.last().map(|(n, _)| *n));
        }
    }

    #[test]
    fn qlist_priority_sort_is_a_permutation(
        entries in proptest::collection::vec((0u32..64, 0u32..8), 0..40)
    ) {
        let mut q = QList::new();
        for (n, p) in &entries {
            q.push_back(Entry::with_priority(NodeId(*n), SeqNum(1), Priority(*p)));
        }
        let before: Vec<u32> = q.nodes().map(|n| n.0).collect();
        q.sort_by_priority();
        let mut after: Vec<u32> = q.nodes().map(|n| n.0).collect();
        prop_assert!(q.invariant_holds());
        // Same multiset of nodes.
        let mut b = before.clone();
        b.sort_unstable();
        after.sort_unstable();
        prop_assert_eq!(b, after);
        // Priorities descending.
        let ps: Vec<u32> = q.iter().map(|e| e.priority.0).collect();
        prop_assert!(ps.windows(2).all(|w| w[0] >= w[1]));
    }
}

// ---------------------------------------------------------------------
// Whole-system properties: every seed is a fresh adversarial schedule.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The arbiter algorithm stays safe (checked online by the simulator)
    /// and live for arbitrary seeds, loads, and system sizes.
    #[test]
    fn arbiter_safe_live_any_seed(
        seed in any::<u64>(),
        n in 2usize..12,
        lambda in 0.05f64..5.0,
    ) {
        let mut cfg = SimConfig::paper_defaults(n).with_seed(seed);
        cfg.warmup_cs = 20;
        let r = Simulation::build(cfg, ArbiterConfig::basic(), Workload::poisson(lambda))
            .run_until_cs(300);
        prop_assert!(r.cs_measured >= 300);
    }

    /// Random delay distributions reorder messages arbitrarily; safety and
    /// liveness must be untouched.
    #[test]
    fn arbiter_safe_under_random_jitter(
        seed in any::<u64>(),
        lo_ms in 1u64..50,
        spread_ms in 1u64..200,
    ) {
        let mut cfg = SimConfig::paper_defaults(6).with_seed(seed);
        cfg.warmup_cs = 20;
        cfg.delay = DelayModel::Uniform {
            lo: TimeDelta::from_millis(lo_ms),
            hi: TimeDelta::from_millis(lo_ms + spread_ms),
        };
        let r = Simulation::build(cfg, ArbiterConfig::basic(), Workload::poisson(1.0))
            .run_until_cs(250);
        prop_assert!(r.cs_measured >= 250);
    }

    /// With recovery enabled, random (mild) message loss never wedges the
    /// system.
    #[test]
    fn fault_tolerant_survives_random_loss(
        seed in any::<u64>(),
        loss in 0.0f64..0.05,
    ) {
        let cfg_proto = ArbiterConfig {
            recovery: Some(RecoveryConfig::default()),
            ..ArbiterConfig::basic()
        };
        let mut cfg = SimConfig::paper_defaults(6).with_seed(seed);
        cfg.warmup_cs = 10;
        cfg.unreliability = Unreliability::lossy(loss);
        cfg.max_sim_time = Some(tokq::simnet::SimTime::from_secs_f64(1_000_000.0));
        let r = Simulation::build(cfg, cfg_proto, Workload::poisson(0.8))
            .run_until_cs(200);
        prop_assert!(r.cs_measured >= 200, "stalled at {} CS", r.cs_measured);
    }

    /// The baselines stay safe and live across random seeds too.
    #[test]
    fn baselines_safe_live_any_seed(seed in any::<u64>(), pick in 0usize..4) {
        let algo = match pick {
            0 => Algo::RicartAgrawala,
            1 => Algo::Singhal,
            2 => Algo::SuzukiKasami,
            _ => Algo::Raymond,
        };
        let mut cfg = SimConfig::paper_defaults(5).with_seed(seed);
        cfg.warmup_cs = 10;
        let r = algo.run(cfg, Workload::poisson(1.0), 200);
        prop_assert!(r.cs_measured >= 200, "{} stalled", algo.name());
    }
}

// ---------------------------------------------------------------------
// Model-checker schedules: any valid schedule survives the JSONL
// round-trip and replays deterministically.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A schedule generated by a random valid walk, serialized to the
    /// flight-recorder JSONL schema and parsed back, is the identical
    /// schedule — and both copies replay to bit-identical traces.
    #[test]
    fn schedule_jsonl_roundtrip_replays_identically(
        choices in proptest::collection::vec(any::<u16>(), 0..48),
        crashes in 0u32..2,
        drops in 0u32..2,
    ) {
        use tokq::simnet::{random_schedule, replay, FaultBudget, Schedule};
        let faults = FaultBudget { crashes, drops, ..FaultBudget::NONE };
        let factory = ArbiterConfig::basic();
        let schedule = random_schedule(&factory, 3, &[1, 2], faults, &choices);

        let parsed = Schedule::from_jsonl(&schedule.to_jsonl());
        prop_assert!(parsed.is_ok(), "reparse failed: {:?}", parsed);
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &schedule);

        let a = replay(&factory, &schedule);
        let b = replay(&factory, &parsed);
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------
// Wire codec: random messages roundtrip, random bytes never panic.
// ---------------------------------------------------------------------

fn entry_strategy() -> impl Strategy<Value = Entry> {
    (0u32..32, 1u64..1_000, 0u32..16)
        .prop_map(|(n, s, p)| Entry::with_priority(NodeId(n), SeqNum(s), Priority(p)))
}

fn qlist_strategy() -> impl Strategy<Value = QList> {
    proptest::collection::vec(entry_strategy(), 0..20)
        .prop_map(|v| v.into_iter().collect::<QList>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn wire_roundtrip_new_arbiter(
        q in qlist_strategy(),
        arbiter in 0u32..32,
        prev in 0u32..32,
        round in any::<u64>(),
        counter in any::<u32>(),
        epoch in any::<u64>(),
        monitor in proptest::option::of(0u32..32),
        shard in any::<u16>(),
    ) {
        use tokq::protocol::arbiter::ArbiterMsg;
        let msg = ArbiterMsg::NewArbiter {
            arbiter: NodeId(arbiter),
            q,
            prev: NodeId(prev),
            round,
            counter,
            epoch,
            monitor: monitor.map(NodeId),
        };
        let frame = tokq::core::encode(tokq::core::ShardId(shard), &msg);
        let (back_shard, back) = tokq::core::decode(&frame).unwrap();
        prop_assert_eq!(back_shard, tokq::core::ShardId(shard));
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn wire_decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = tokq::core::decode(&bytes); // must return Err, not panic
    }
}

// ---------------------------------------------------------------------
// Chaos fuzzing: arbitrary (even nonsensical) message sequences must
// never panic a node — a malicious or confused peer cannot crash us.
// ---------------------------------------------------------------------

fn arbiter_msg_strategy(n: u32) -> impl Strategy<Value = tokq::protocol::arbiter::ArbiterMsg> {
    use tokq::protocol::arbiter::{ArbiterMsg, Token, TokenStatus};
    let node = move || (0..n).prop_map(NodeId);
    let token = (qlist_strategy(), any::<u64>(), 0u64..4, any::<bool>()).prop_map(
        move |(q, round, epoch, via_monitor)| Token {
            q,
            last_granted: vec![SeqNum(0); n as usize],
            round,
            epoch,
            via_monitor,
        },
    );
    prop_oneof![
        (node(), 1u64..50, 0u32..4, 0u32..6).prop_map(|(r, s, p, h)| ArbiterMsg::Request {
            requester: r,
            seq: SeqNum(s),
            priority: Priority(p),
            hops: h,
        }),
        token.prop_map(ArbiterMsg::Privilege),
        (
            node(),
            qlist_strategy(),
            node(),
            any::<u64>(),
            any::<u32>(),
            0u64..4,
            proptest::option::of(node())
        )
            .prop_map(|(a, q, prev, round, counter, epoch, monitor)| {
                ArbiterMsg::NewArbiter {
                    arbiter: a,
                    q,
                    prev,
                    round,
                    counter,
                    epoch,
                    monitor,
                }
            }),
        (node(), 1u64..50).prop_map(|(r, s)| ArbiterMsg::MonitorSubmit {
            requester: r,
            seq: SeqNum(s),
            priority: Priority(0),
        }),
        any::<u64>().prop_map(|round| ArbiterMsg::Warning { round }),
        (0u64..4).prop_map(|epoch| ArbiterMsg::Enquiry { epoch }),
        prop_oneof![
            Just(TokenStatus::HadToken),
            Just(TokenStatus::HaveToken),
            Just(TokenStatus::Waiting),
            Just(TokenStatus::Idle)
        ]
        .prop_map(|status| ArbiterMsg::EnquiryReply { status }),
        Just(ArbiterMsg::Resume),
        (0u64..4).prop_map(|epoch| ArbiterMsg::Invalidate { epoch }),
        Just(ArbiterMsg::Probe),
        any::<bool>().prop_map(|arbiter| ArbiterMsg::ProbeAck { arbiter }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A fault-tolerant node fed arbitrary message salvos from arbitrary
    /// peers never panics (it may emit any actions; we only require it to
    /// stay standing). Requests and completions are interleaved to reach
    /// the in-CS states too.
    #[test]
    fn arbiter_node_survives_arbitrary_message_chaos(
        msgs in proptest::collection::vec(
            ((0u32..5), arbiter_msg_strategy(5)),
            0..60
        ),
    ) {
        use tokq::protocol::api::{Protocol, ProtocolFactory};
        use tokq::protocol::event::{Action, Input};
        let mut node = ArbiterConfig::fault_tolerant().build(NodeId(0), 5);
        node.step(Input::Start);
        let mut in_cs = false;
        let mut want = false;
        for (from, msg) in msgs {
            if from == 0 {
                // Interleave app activity at a contract-respecting cadence.
                if in_cs {
                    node.step(Input::CsDone);
                    in_cs = false;
                    want = false;
                } else if !want {
                    want = true;
                    let acts = node.step(Input::RequestCs);
                    in_cs |= acts.iter().any(|a| matches!(a, Action::EnterCs));
                }
                continue;
            }
            let acts = node.step(Input::Deliver { from: NodeId(from), msg });
            if acts.iter().any(|a| matches!(a, Action::EnterCs)) {
                in_cs = true;
            }
        }
    }

    /// The same chaos against the basic configuration (no recovery state
    /// machinery to absorb oddities).
    #[test]
    fn basic_arbiter_survives_arbitrary_message_chaos(
        msgs in proptest::collection::vec(
            ((1u32..5), arbiter_msg_strategy(5)),
            0..60
        ),
    ) {
        use tokq::protocol::api::{Protocol, ProtocolFactory};
        use tokq::protocol::event::Input;
        let mut node = ArbiterConfig::basic().build(NodeId(0), 5);
        node.step(Input::Start);
        for (from, msg) in msgs {
            let _ = node.step(Input::Deliver { from: NodeId(from), msg });
        }
    }
}
