//! The redesigned typed client API end to end: per-resource guards across
//! shards, typed error paths (timeout, crashed node, shutdown), and the
//! release-exactly-once-per-generation guarantee of [`LockGuard`]'s Drop.

use std::time::Duration;

use tokq::core::{Cluster, LockError, ResourceId};
use tokq::protocol::arbiter::{ArbiterConfig, RecoveryConfig};
use tokq::protocol::types::TimeDelta;

fn quick() -> ArbiterConfig {
    ArbiterConfig::basic()
        .with_t_collect(TimeDelta::from_millis(1))
        .with_t_forward(TimeDelta::from_millis(1))
}

fn quick_ft() -> ArbiterConfig {
    ArbiterConfig {
        recovery: Some(RecoveryConfig {
            token_wait_base: TimeDelta::from_millis(100),
            token_wait_per_position: TimeDelta::from_millis(25),
            enquiry_timeout: TimeDelta::from_millis(50),
            handover_watch: TimeDelta::from_millis(200),
            probe_timeout: TimeDelta::from_millis(50),
        }),
        request_retry: Some(TimeDelta::from_millis(250)),
        ..quick()
    }
}

/// The same name maps to the same shard and home node on every client:
/// two handles to one resource obtained on different nodes contend for
/// the same lock.
#[test]
fn one_resource_is_one_lock_from_every_node() {
    let cluster = Cluster::builder(3).shards(4).config(quick()).build();
    let a = cluster.resource_on(0, "invoices").expect("in range");
    let b = cluster.resource_on(2, "invoices").expect("in range");
    assert_eq!(a.shard(), b.shard());
    assert_eq!(
        a.shard(),
        ResourceId::new("invoices").shard(cluster.shards())
    );
    let g = a.lock().expect("granted");
    assert_eq!(
        b.try_lock_for(Duration::from_millis(200)).err(),
        Some(LockError::Timeout),
        "the same resource must be one lock cluster-wide"
    );
    drop(g);
    drop(b.try_lock_for(Duration::from_secs(10)).expect("granted"));
    cluster.shutdown();
}

/// Locking through a crashed node fails fast with `NodeDown` rather than
/// hanging until a timeout.
#[test]
fn lock_through_crashed_node_is_node_down() {
    let cluster = Cluster::builder(3).config(quick_ft()).build();
    let h = cluster.handle(1).expect("in range");
    cluster.crash(1).expect("crash node 1");
    assert_eq!(h.lock().err(), Some(LockError::NodeDown));
    assert_eq!(h.try_lock().err(), Some(LockError::NodeDown));
    // The rest of the cluster still works, and so does node 1 once back.
    drop(
        cluster
            .handle(0)
            .expect("in range")
            .lock()
            .expect("granted"),
    );
    cluster.recover(1).expect("recover node 1");
    drop(
        h.try_lock_for(Duration::from_secs(20))
            .expect("recovered node locks again"),
    );
    cluster.shutdown();
}

/// Every client operation on a shut-down cluster reports `ShuttingDown`.
#[test]
fn operations_after_shutdown_are_shutting_down() {
    let cluster = Cluster::builder(2).config(quick()).build();
    let handle = cluster.handle(0).expect("in range");
    let resource = cluster.resource("accounts/7");
    cluster.shutdown();
    assert_eq!(handle.lock().err(), Some(LockError::ShuttingDown));
    assert_eq!(handle.try_lock().err(), Some(LockError::ShuttingDown));
    assert_eq!(
        resource.try_lock_for(Duration::from_secs(1)).err(),
        Some(LockError::ShuttingDown)
    );
}

/// A guard that is dropped without ever being used still releases the
/// lock — exactly once — and a guard whose generation died with a crash
/// is ignored rather than releasing someone else's critical section.
#[test]
fn guard_drop_releases_exactly_once_per_generation() {
    let cluster = Cluster::builder(3).config(quick_ft()).build();
    let metrics = cluster.metrics_handle();
    let h0 = cluster.handle(0).expect("in range");

    // Dropped immediately, never used: the release must still happen,
    // otherwise the next lock() would deadlock.
    let _ = h0.lock().expect("granted");
    let g = h0.lock().expect("first drop released the lock");

    // Crash bumps the generation: the surviving guard is now stale.
    cluster.crash(0).expect("crash node 0");
    std::thread::sleep(Duration::from_millis(50));
    cluster.recover(0).expect("recover node 0");
    std::thread::sleep(Duration::from_millis(50));
    drop(g); // must be ignored, not double-release

    // Another node still acquires (token regenerated, stale release
    // discarded rather than completing someone else's critical section).
    drop(
        cluster
            .handle(1)
            .expect("in range")
            .try_lock_for(Duration::from_secs(20))
            .expect("cluster must keep granting after the stale release"),
    );
    cluster.shutdown();
    assert_eq!(
        metrics.notes().get("stale_release_ignored").copied(),
        Some(1),
        "stale-generation release must be discarded: {:?}",
        metrics.notes()
    );
    assert_eq!(
        metrics.cs_completed_total(),
        2,
        "exactly the two clean critical sections complete"
    );
}

/// Shard-tagged frames demultiplex correctly over real TCP connections:
/// resources on different shards lock concurrently across the socket mesh
/// and the per-shard counters see traffic from more than one shard.
#[test]
fn tcp_mesh_demultiplexes_shards() {
    let cluster = Cluster::builder(2).shards(4).config(quick()).tcp().build();
    // Find two resources on different shards.
    let names: Vec<String> = (0u64..)
        .map(|i| format!("res/{i}"))
        .scan(std::collections::BTreeSet::new(), |seen, name| {
            Some(
                seen.insert(ResourceId::new(name.as_str()).shard(4))
                    .then_some(name),
            )
        })
        .flatten()
        .take(2)
        .collect();
    let a = cluster.resource_on(0, names[0].as_str()).expect("in range");
    let b = cluster.resource_on(1, names[1].as_str()).expect("in range");
    assert_ne!(a.shard(), b.shard());
    {
        let _ga = a.try_lock_for(Duration::from_secs(20)).expect("shard A");
        let _gb = b.try_lock_for(Duration::from_secs(20)).expect("shard B");
    }
    let metrics = cluster.metrics_handle();
    cluster.shutdown();
    let by_shard = metrics.messages_by_shard();
    let active = by_shard.values().filter(|&&v| v > 0).count();
    assert!(
        active >= 2,
        "both shards must have sent frames over TCP: {by_shard:?}"
    );
    assert!(metrics.cs_completed_on(a.shard()) >= 1);
    assert!(metrics.cs_completed_on(b.shard()) >= 1);
}
