//! Bounded model-checker smoke run: explores the paper's arbiter (basic
//! and starvation-free) plus two baselines under reduction, prints the
//! search statistics, and compares against the naive enumerator.
//!
//! Run with: `cargo run --release --example explore_smoke`
//!
//! Exits non-zero if any exploration reports a violation — `scripts/check.sh`
//! uses this as its explorer smoke stage.

use tokq::protocol::arbiter::ArbiterConfig;
use tokq::protocol::ricart_agrawala::RaConfig;
use tokq::protocol::suzuki_kasami::SkConfig;
use tokq::simnet::{ExploreConfig, ExploreStats, Explorer};

fn show(label: &str, stats: &ExploreStats) {
    println!(
        "{label:<24} states={:<8} dedup_hits={:<8} sleep_pruned={:<8} \
         quiescent={:<5} max_depth={:<3} cs_entries={} truncated={}",
        stats.states_explored,
        stats.dedup_hits,
        stats.sleep_pruned,
        stats.quiescent_paths,
        stats.max_depth_reached,
        stats.cs_entries,
        stats.truncated,
    );
}

fn main() {
    let cfg = ExploreConfig {
        max_depth: 16,
        max_states: 300_000,
        ..ExploreConfig::default()
    };

    let runs: Vec<(&str, Result<ExploreStats, _>)> = vec![
        (
            "arbiter/basic",
            Explorer::new(cfg).check(ArbiterConfig::basic(), 3, &[1, 2]),
        ),
        (
            "arbiter/starvation-free",
            Explorer::new(cfg).check(ArbiterConfig::starvation_free(), 3, &[1, 2]),
        ),
        (
            "ricart-agrawala",
            Explorer::new(cfg).check(RaConfig, 3, &[0, 1]),
        ),
        (
            "suzuki-kasami",
            Explorer::new(cfg).check(SkConfig::default(), 3, &[1, 2]),
        ),
    ];

    let mut failed = false;
    for (label, result) in &runs {
        match result {
            Ok(stats) => show(label, stats),
            Err(violation) => {
                failed = true;
                println!("{label:<24} VIOLATION: {violation}");
            }
        }
    }

    // Reduction demonstration: the naive enumerator on the same model.
    let naive_cfg = ExploreConfig {
        max_depth: 12,
        max_states: 2_000_000,
        ..ExploreConfig::naive()
    };
    let reduced_cfg = ExploreConfig {
        max_depth: 12,
        max_states: 2_000_000,
        ..ExploreConfig::default()
    };
    let naive = Explorer::new(naive_cfg)
        .check(ArbiterConfig::basic(), 3, &[1, 2])
        .expect("arbiter is safe");
    let reduced = Explorer::new(reduced_cfg)
        .check(ArbiterConfig::basic(), 3, &[1, 2])
        .expect("arbiter is safe");
    show("naive (depth 12)", &naive);
    show("reduced (depth 12)", &reduced);
    println!(
        "reduction: {:.1}x fewer states",
        naive.states_explored as f64 / reduced.states_explored as f64
    );

    if failed {
        std::process::exit(1);
    }
}
